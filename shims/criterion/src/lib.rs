//! Offline shim of the `criterion` benchmarking crate.
//!
//! The workspace's benches use a small slice of criterion's API: groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, sample-size /
//! timing-budget knobs and the `criterion_group!` / `criterion_main!` macros.
//! This shim implements that surface with plain wall-clock timing and prints
//! one `name: median ns/iter` line per benchmark — enough to compare kernels
//! locally without the statistical machinery (or the crates.io dependency).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group (`name/parameter`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs and times it.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, recording per-iteration wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std::hint::black_box(f());
        }
        let measure_until = Instant::now() + self.measurement;
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
            if Instant::now() > measure_until {
                break;
            }
        }
    }

    fn median_ns(&self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(|d| d.as_nanos()).collect();
        ns.sort_unstable();
        ns[ns.len() / 2]
    }
}

/// A named collection of related benchmarks sharing timing knobs.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
        };
        f(&mut b);
        println!("{}/{}: {} ns/iter (median)", self.name, id, b.median_ns());
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        self.run(name, f);
    }

    /// Benchmarks `f` with an input value under a parameterised id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
    }

    /// Ends the group (printing happens eagerly, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) CLI configuration, mirroring criterion's API.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        self.benchmark_group("bench").bench_function(name, f);
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples_and_median() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut ran = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran >= 5, "closure should run at least sample_size times");
    }

    #[test]
    fn benchmark_id_renders_name_and_parameter() {
        assert_eq!(BenchmarkId::new("sort", 128).to_string(), "sort/128");
    }
}
