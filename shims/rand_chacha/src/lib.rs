//! Offline shim of the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`] with the same construction API (`seed_from_u64`)
//! and statistical behaviour the workspace needs: a deterministic, well-mixed,
//! seedable stream. Internally this is xoshiro256++ seeded through SplitMix64
//! rather than a real ChaCha keystream — every consumer in this workspace
//! only relies on determinism and uniformity, not on the ChaCha cipher.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (drop-in for `rand_chacha::ChaCha8Rng`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut state);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn mean_of_unit_floats_is_centred() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
