//! Offline shim of the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors a
//! minimal re-implementation of the exact API surface it uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits with `gen`, `gen_range` and `gen_bool`
//! over the primitive types that appear in the codebase. Uniformity and
//! determinism are what the experiments rely on; cryptographic quality is not.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over an interval. The single generic
/// [`SampleRange`] impl below ties a range's element type to the sampled type,
/// which is what lets unsuffixed float literals in `gen_range(-0.3..0.3)`
/// unify with the surrounding expression (mirroring real rand's inference).
pub trait SampleUniform: Copy {
    /// Draws a value in `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % span as u128;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, _inclusive: bool) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the low bits are well mixed.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Counter(2);
        for _ in 0..1000 {
            let a = r.gen_range(3usize..10);
            assert!((3..10).contains(&a));
            let b = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&b));
            let c = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&c));
        }
    }

    #[test]
    fn range_sampling_covers_extremes() {
        let mut r = Counter(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Counter(4);
        let _ = r.gen_range(5usize..5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
