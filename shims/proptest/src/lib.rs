//! Offline shim of the `proptest` property-testing crate.
//!
//! Implements the subset the workspace's property tests use: the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range and
//! collection strategies, and `Strategy::prop_map`. Unlike real proptest there
//! is no shrinking — a failing case panics with the seed index so it can be
//! reproduced deterministically (the per-test RNG is derived from the test
//! name and case number only).

/// Run-time configuration of a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    //! Deterministic per-case random source.

    /// SplitMix64-based generator seeded from the test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a generator for one (test, case) pair.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in [lo, hi).
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty size range");
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+)),*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_strategy!(f32, f64);
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Generates `true` and `false` with equal probability (mirrors
    /// `proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any;

    /// The canonical instance of [`Any`].
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Number of elements a collection strategy may produce.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.usize_in(self.size.lo, self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-importable surface mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let run = move || $body;
                run();
            }
        }
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 0usize..10, y in -2i32..=2, z in -1.0f32..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((-1.0..1.0).contains(&z));
        }

        #[test]
        fn vec_sizes_hold(v in prop::collection::vec(0u64..100, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn prop_map_transforms(n in prop::collection::vec(1usize..4, 6).prop_map(|v| v.len())) {
            prop_assert_eq!(n, 6);
        }

        #[test]
        fn assume_skips(x in 0usize..4) {
            prop_assume!(x != 0);
            prop_assert!(x > 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
