//! Lightweight plain-text table reporting used by every experiment binary.

/// A simple column-aligned table with a title.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Table title (printed as a header line).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header count"
        );
        self.rows.push(row);
    }

    /// Convenience: appends a row of displayable values.
    pub fn push<I, T>(&mut self, row: I)
    where
        I: IntoIterator<Item = T>,
        T: std::fmt::Display,
    {
        self.add_row(row.into_iter().map(|v| v.to_string()).collect());
    }

    /// Renders the table as column-aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Serialises the table as a JSON object
    /// (`{"title": …, "headers": […], "rows": [[…], …]}`) — the machine-
    /// readable artifact format the CI bench-smoke job uploads per PR.
    pub fn to_json(&self) -> String {
        let row_json = |cells: &[String]| {
            format!(
                "[{}]",
                cells
                    .iter()
                    .map(|c| json_string(c))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        format!(
            "{{\"title\":{},\"headers\":{},\"rows\":[{}]}}",
            json_string(&self.title),
            row_json(&self.headers),
            self.rows
                .iter()
                .map(|r| row_json(r))
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

/// Escapes `s` as a JSON string literal (shared with the `sofa-harness`
/// results writer).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialises several tables as one JSON array.
pub fn tables_to_json(tables: &[Table]) -> String {
    format!(
        "[{}]",
        tables
            .iter()
            .map(|t| t.to_json())
            .collect::<Vec<_>>()
            .join(",")
    )
}

/// If the process arguments contain `--json <path>`, writes `tables` there
/// (creating parent directories) and returns the path. Every experiment
/// binary calls this after printing, so CI can collect artifacts without
/// parsing stdout.
///
/// # Panics
///
/// Panics if `--json` is given without a path or the file cannot be written.
pub fn write_json_artifact_from_args(tables: &[Table]) -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            let path =
                std::path::PathBuf::from(args.next().expect("--json requires an output path"));
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).expect("create artifact directory");
                }
            }
            std::fs::write(&path, tables_to_json(tables)).expect("write JSON artifact");
            return Some(path);
        }
    }
    None
}

/// Writes `text` to `path`, creating parent directories, and echoes the
/// path on stderr — the same artifact convention as
/// [`write_json_artifact_from_args`], for binaries whose artifacts are not
/// tables (the `serve_trace` trace and metrics files).
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_text_artifact(path: &std::path::Path, text: &str) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create artifact directory");
        }
    }
    std::fs::write(path, text).expect("write artifact");
    eprintln!("wrote {}", path.display());
}

/// The tail every experiment binary shares: prints `tables` to stdout
/// (blank-line separated) and, when the process arguments contain
/// `--json <path>`, also writes them there via
/// [`write_json_artifact_from_args`], echoing the path on stderr so CI
/// logs show where the artifact landed.
///
/// # Panics
///
/// Panics if `--json` is given without a path or the file cannot be
/// written.
pub fn print_and_write(tables: &[Table]) {
    for t in tables {
        t.print();
        println!();
    }
    if let Some(path) = write_json_artifact_from_args(tables) {
        eprintln!("wrote {}", path.display());
    }
}

/// Formats a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speed-up factor.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_includes_title() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push(["alpha", "1"]);
        t.push(["b", "123456"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha"));
        assert!(s.contains("123456"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(vec!["only one".to_string()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(times(9.5), "9.50x");
    }

    #[test]
    fn json_round_trips_structure_and_escapes() {
        let mut t = Table::new("Latency \"p99\"", &["a", "b"]);
        t.push(["x\n", "1"]);
        let j = t.to_json();
        assert_eq!(
            j,
            "{\"title\":\"Latency \\\"p99\\\"\",\"headers\":[\"a\",\"b\"],\
             \"rows\":[[\"x\\n\",\"1\"]]}"
        );
        let arr = tables_to_json(&[t.clone(), t]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
        assert_eq!(arr.matches("\"headers\"").count(), 2);
    }
}
