//! Regenerates the paper artefact `fig17_complexity_ablation` (see docs/EXPERIMENTS.md for the
//! mapping; `--json <path>` writes the table as a JSON artifact).
fn main() {
    sofa_bench::registry::run_bin("fig17_complexity_ablation");
}
