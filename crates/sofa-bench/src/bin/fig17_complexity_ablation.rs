//! Regenerates the paper artefact `fig17_complexity_ablation` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::fig17_complexity_ablation().print();
}
