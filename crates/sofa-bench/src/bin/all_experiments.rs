//! Runs every experiment in sequence (the full evaluation section).
fn main() {
    use sofa_bench::experiments as e;
    for table in [
        e::fig01_breakdown(),
        e::fig03_mat(),
        e::fig04_oi(),
        e::fig05_fa2_overhead(),
        e::fig08_distribution(),
        e::fig16_latency_breakdown(),
        e::fig17_complexity_ablation(),
        e::fig18_lp_reduction(),
        e::fig19_throughput(),
        e::fig20_memory_energy(),
        e::fig21_gain_breakdown(),
        e::table1_summary(),
        e::table2_comparison(),
        e::table3_area_power(),
        e::table4_power(),
        e::ablation_dse(),
        e::ablation_sufa_order(),
        e::ablation_rass(),
        e::sim_cycle_vs_analytic(),
        e::sim_stall_breakdown(),
    ] {
        table.print();
    }
}
