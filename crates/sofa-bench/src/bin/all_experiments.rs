//! Runs every experiment (the full evaluation section), fanning the
//! independent experiments out across CPU cores (`sofa_par::par_map`,
//! worker count from `SOFA_THREADS`) and printing the tables in their
//! canonical order. The parallel-engine scaling study runs afterwards on
//! the main thread: inside a parallel region `sofa-par` degrades to
//! sequential execution, which would flatten its speedup column.
fn main() {
    use sofa_bench::experiments as e;
    use sofa_bench::Table;
    let experiments: Vec<fn() -> Table> = vec![
        e::fig01_breakdown,
        e::fig03_mat,
        e::fig04_oi,
        e::fig05_fa2_overhead,
        e::fig08_distribution,
        e::fig16_latency_breakdown,
        e::fig17_complexity_ablation,
        e::fig18_lp_reduction,
        e::fig19_throughput,
        e::fig20_memory_energy,
        e::fig21_gain_breakdown,
        e::table1_summary,
        e::table2_comparison,
        e::table3_area_power,
        e::table4_power,
        e::ablation_dse,
        e::ablation_sufa_order,
        e::ablation_rass,
        e::sim_cycle_vs_analytic,
        e::sim_stall_breakdown,
        e::dse_pareto,
        e::dse_serve_ab,
        e::serve_routed,
    ];
    for table in sofa_par::par_map(&experiments, |run| run()) {
        table.print();
    }
    e::par_scaling().print();
}
