//! Runs every registry experiment marked `in_all` (the full evaluation
//! section), fanning the independent experiments out across CPU cores
//! (`sofa_par::par_map`, worker count from `SOFA_THREADS`) and printing the
//! tables in their canonical registry order. Entries marked `main_thread`
//! (the parallel-engine scaling study) run afterwards on the main thread:
//! inside a parallel region `sofa-par` degrades to sequential execution,
//! which would flatten the speedup column.
fn main() {
    let reg = sofa_bench::registry::registry();
    let (serial, fanout): (Vec<_>, Vec<_>) = reg
        .into_iter()
        .filter(|e| e.in_all)
        .partition(|e| e.main_thread);
    for out in sofa_par::par_map(&fanout, |e| (e.run)()) {
        for table in &out.tables {
            table.print();
        }
    }
    for e in serial {
        for table in (e.run)().tables {
            table.print();
        }
    }
}
