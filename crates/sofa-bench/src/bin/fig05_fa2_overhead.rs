//! Regenerates the paper artefact `fig05_fa2_overhead` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::fig05_fa2_overhead().print();
}
