//! Regenerates the paper artefact `fig05_fa2_overhead` (see docs/EXPERIMENTS.md for the
//! mapping; `--json <path>` writes the table as a JSON artifact).
fn main() {
    sofa_bench::registry::run_bin("fig05_fa2_overhead");
}
