//! Regenerates the paper artefact `fig18_lp_reduction` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::fig18_lp_reduction().print();
}
