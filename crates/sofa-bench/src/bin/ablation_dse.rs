//! Regenerates the paper artefact `ablation_dse` (see DESIGN.md for the mapping).
fn main() {
    sofa_bench::experiments::ablation_dse().print();
}
