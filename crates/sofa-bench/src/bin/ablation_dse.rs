//! Regenerates the paper artefact `ablation_dse` (see docs/EXPERIMENTS.md for the
//! mapping; `--json <path>` writes the table as a JSON artifact).
fn main() {
    sofa_bench::registry::run_bin("ablation_dse");
}
