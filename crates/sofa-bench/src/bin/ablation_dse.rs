//! Regenerates the paper artefact `ablation_dse` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::ablation_dse().print();
}
