//! Prints the adaptive-serving experiment — the overload trace served under
//! static budgeted Pareto routing and under the closed-loop controller
//! (decay of over-waited requests, measured-state feedback routing,
//! client-side shed/retry) — and optionally writes it as a JSON artifact
//! (`--json <path>`), which the CI bench-smoke job uploads per PR and the
//! `adaptive` gate spec re-checks.
fn main() {
    sofa_bench::registry::run_bin("serve_adaptive");
}
