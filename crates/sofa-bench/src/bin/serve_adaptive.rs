//! Prints the adaptive-serving experiment — the overload trace served under
//! static budgeted Pareto routing and under the closed-loop controller
//! (decay of over-waited requests, measured-state feedback routing,
//! client-side shed/retry) — and optionally writes it as a JSON artifact
//! (`--json <path>`), which the CI bench-smoke job uploads per PR and
//! regression gate 7 re-checks.

use sofa_bench::report::print_and_write;

fn main() {
    print_and_write(&[sofa_bench::experiments::serve_adaptive()]);
}
