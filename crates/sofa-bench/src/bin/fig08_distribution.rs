//! Regenerates the paper artefact `fig08_distribution` (see DESIGN.md for the mapping).
fn main() {
    sofa_bench::experiments::fig08_distribution().print();
}
