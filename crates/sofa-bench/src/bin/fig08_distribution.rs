//! Regenerates the paper artefact `fig08_distribution` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::fig08_distribution().print();
}
