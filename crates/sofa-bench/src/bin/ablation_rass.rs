//! Regenerates the paper artefact `ablation_rass` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::ablation_rass().print();
}
