//! Regenerates the paper artefact `fig04_oi` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::fig04_oi().print();
}
