//! CI benchmark-regression gate.
//!
//! Fails the bench-smoke job when any gate trips:
//!
//! 1. `cycle-sim` — the cycle-level simulator diverges more than 25 % from
//!    the analytic model on any *compute-bound* configuration of the
//!    standard grid — the two share engine throughput models and traffic
//!    volumes, so divergence there means a simulator or model regression,
//!    not a modelling choice (memory-bound configurations are expected to
//!    diverge and are skipped);
//! 2. `smoke` — any smoke experiment panics or produces an empty table;
//! 3. `dse` — the hardware-aware DSE regresses: the Pareto front comes back
//!    empty, no tuned configuration strictly dominates the paper-default
//!    operating point on (cycles, energy) at equal-or-better loss, or two
//!    runs of the pinned search disagree (the search must be deterministic —
//!    it is what the golden `dse_pareto.json` snapshot and the serving A/B
//!    consume);
//! 4. `routing` — routed serving regresses: per-request Pareto routing must
//!    strictly dominate the paper-default operating point on (p95 latency,
//!    J/req), must not regress p95 against the single-point tuned run, and
//!    the budgeted run must bound every served request's projected energy;
//! 5. `trace` — the exported `serve_trace` artifacts (enabled by
//!    `--trace <path>` and `--metrics <path>`, which CI points at the
//!    bench-smoke outputs) fail the validity checker: schema violations,
//!    non-monotonic per-track timestamps, or unbalanced begin/end pairs;
//! 6. `fleet` — fleet serving regresses: at 1 node × 1 instance the fleet
//!    path's p95 drifts more than 15 % from the single-node scheduler on
//!    the same trace (they share lowering and admission policy; only the
//!    epoch quantization and fabric serialization may differ), the served
//!    counts disagree, or two runs of the pinned multi-node scenario
//!    produce different tables (the fleet simulation must be deterministic
//!    — it is what the golden `serve_fleet.json` snapshot and the CI
//!    thread-matrix byte-identity check consume);
//! 7. `adaptive` — closed-loop serving regresses: on the overload trace the
//!    adaptive controller (decay + measured-state feedback + shed/retry)
//!    must strictly beat static budgeted Pareto routing on (p95, shed
//!    count) with J/req within 5 %, shed-after-retry must not exceed
//!    static shedding, and two runs of the pinned study must agree (it is
//!    what the golden `serve_adaptive.json` snapshot consumes).
//!
//! Exit codes distinguish *what* went wrong: `0` all gates passed, `1` a
//! gate failed (a genuine regression), `2` an artifact was missing or
//! unparseable (an infrastructure problem — fix the pipeline, not the
//! code). Every failure line names the gate that produced it.
//!
//! Run locally with `cargo run -p sofa-bench --bin check_regression`.

use sofa_bench::experiments;
use sofa_bench::Table;
use sofa_hw::config::HwConfig;
use sofa_sim::CycleSim;
use std::panic::catch_unwind;
use std::process::ExitCode;

/// Maximum |relative error| tolerated between cycle simulation and the
/// analytic model on compute-bound configurations.
const TOLERANCE: f64 = 0.25;

/// Maximum p95 drift tolerated between the fleet path at 1 node × 1
/// instance and the single-node scheduler on the same trace.
const FLEET_TOLERANCE: f64 = 0.15;

/// A tripped gate: which gate, and what it saw.
struct Failure {
    gate: &'static str,
    msg: String,
}

fn main() -> ExitCode {
    let mut failures: Vec<Failure> = Vec::new();
    // Artifact problems (missing / unreadable / unparseable inputs) are
    // tracked separately: they mean the pipeline is broken, not the code,
    // and map to exit code 2.
    let mut artifact_errors: Vec<String> = Vec::new();
    let fail = |gate: &'static str, msg: String, sink: &mut Vec<Failure>| {
        sink.push(Failure { gate, msg });
    };

    // Gate 1 — cycle-sim fidelity on the standard grid.
    let sim = CycleSim::new(HwConfig::paper_default());
    let mut compute_bound = 0;
    for task in experiments::cycle_sim_tasks() {
        match catch_unwind(|| sim.validate(&task).1) {
            Ok(cmp) if !cmp.analytic_memory_bound => {
                compute_bound += 1;
                if !cmp.agrees_within(TOLERANCE) {
                    fail(
                        "cycle-sim",
                        format!(
                            "diverged {:+.1}% (> {:.0}%) from the analytic model on \
                             compute-bound T={} S={} keep={} Bc={}",
                            100.0 * cmp.relative_error,
                            100.0 * TOLERANCE,
                            task.queries,
                            task.seq_len,
                            task.keep_ratio,
                            task.tile_size,
                        ),
                        &mut failures,
                    );
                }
            }
            Ok(_) => {}
            Err(_) => fail(
                "cycle-sim",
                format!("panicked on T={} S={}", task.queries, task.seq_len),
                &mut failures,
            ),
        }
    }
    if compute_bound == 0 {
        fail(
            "cycle-sim",
            "grid contains no compute-bound configuration to check".into(),
            &mut failures,
        );
    }

    // Gate 2 — the smoke experiments run to completion and produce rows.
    type Check = (&'static str, fn() -> Table);
    let checks: [Check; 4] = [
        ("sim_cycle_vs_analytic", experiments::sim_cycle_vs_analytic),
        ("sim_stall_breakdown", experiments::sim_stall_breakdown),
        (
            "serve_throughput_latency",
            experiments::serve_throughput_latency,
        ),
        ("serve_scaling", experiments::serve_scaling),
    ];
    for (name, run) in checks {
        match catch_unwind(run) {
            Ok(table) if table.rows.is_empty() => fail(
                "smoke",
                format!("{name} produced an empty table"),
                &mut failures,
            ),
            Ok(_) => println!("ok: {name}"),
            Err(_) => fail("smoke", format!("{name} panicked"), &mut failures),
        }
    }

    // Gate 3 — the hardware-aware DSE must produce a non-empty Pareto front
    // that beats the paper default, deterministically across runs. The
    // first report is kept for gate 4 so the (expensive) search is not run
    // a third time.
    let mut dse_report = None;
    match catch_unwind(|| {
        (
            experiments::dse_pareto_report_fresh(),
            experiments::dse_pareto_report_fresh(),
        )
    }) {
        Ok((first, second)) => {
            if first != second {
                fail(
                    "dse",
                    "dse_pareto is non-deterministic across two runs".into(),
                    &mut failures,
                );
            }
            if first.pareto.is_empty() {
                fail(
                    "dse",
                    "dse_pareto produced an empty Pareto front".into(),
                    &mut failures,
                );
            } else if first.dominating().is_empty() {
                fail(
                    "dse",
                    "dse_pareto front is dominated by the paper default: no tuned config \
                     beats it on (cycles, energy) at equal-or-better loss"
                        .into(),
                    &mut failures,
                );
            } else {
                println!(
                    "ok: dse_pareto ({} Pareto points, {} strictly dominate the default)",
                    first.pareto.len(),
                    first.dominating().len()
                );
            }
            dse_report = Some(first);
        }
        Err(_) => fail("dse", "dse_pareto panicked".into(), &mut failures),
    }

    // Gate 4 — routed serving must beat the paper default on both axes and
    // hold the line against the single tuned point. Reuses gate 3's report
    // when it produced one (it is deterministic, so this changes nothing).
    let before_gate4 = failures.len();
    match catch_unwind(|| match &dse_report {
        Some(report) => experiments::serve_routed_study_from(report),
        None => experiments::serve_routed_study(),
    }) {
        Ok(study) => {
            if !study.routed_dominates_default() {
                fail(
                    "routing",
                    format!(
                        "routing (p95 {}, {:.2} uJ/req) does not strictly dominate the \
                         paper default (p95 {}, {:.2} uJ/req)",
                        study.routed.p95(),
                        study.routed.energy_pj_per_request() / 1e6,
                        study.paper_default.p95(),
                        study.paper_default.energy_pj_per_request() / 1e6,
                    ),
                    &mut failures,
                );
            }
            if study.routed.p95() > study.tuned.p95() {
                fail(
                    "routing",
                    format!(
                        "routing regresses p95 vs the single tuned point ({} vs {})",
                        study.routed.p95(),
                        study.tuned.p95(),
                    ),
                    &mut failures,
                );
            }
            if study
                .budgeted
                .records
                .iter()
                .any(|r| r.energy_pj > study.budget_pj)
            {
                fail(
                    "routing",
                    "budgeted run admitted an over-budget request".into(),
                    &mut failures,
                );
            }
            if failures.len() == before_gate4 {
                println!(
                    "ok: serve_routed (p95 {} vs default {}, {:.2} vs {:.2} uJ/req, \
                     budgeted rerouted {} shed {})",
                    study.routed.p95(),
                    study.paper_default.p95(),
                    study.routed.energy_pj_per_request() / 1e6,
                    study.paper_default.energy_pj_per_request() / 1e6,
                    study.budgeted.rerouted_requests(),
                    study.budgeted.shed.len(),
                );
            }
        }
        Err(_) => fail("routing", "serve_routed panicked".into(), &mut failures),
    }

    // Gate 7 — adaptive serving must strictly dominate static routing on
    // the overload trace, deterministically. Reuses gate 3's DSE report
    // (the search is deterministic, so this changes nothing).
    match catch_unwind(|| match &dse_report {
        Some(report) => (
            experiments::serve_adaptive_study_from(report),
            experiments::serve_adaptive_study_from(report),
        ),
        None => (
            experiments::serve_adaptive_study(),
            experiments::serve_adaptive_study(),
        ),
    }) {
        Ok((first, second)) => {
            if first != second {
                fail(
                    "adaptive",
                    "serve_adaptive is non-deterministic across two runs".into(),
                    &mut failures,
                );
            }
            if first.adaptive.shed.len() > first.static_routed.shed.len() {
                fail(
                    "adaptive",
                    format!(
                        "retry sheds more than static routing ({} vs {})",
                        first.adaptive.shed.len(),
                        first.static_routed.shed.len(),
                    ),
                    &mut failures,
                );
            }
            if !first.adaptive_dominates_static() {
                fail(
                    "adaptive",
                    format!(
                        "adaptive (p95 {}, shed {}, {:.2} uJ/req) does not strictly \
                         dominate static routing (p95 {}, shed {}, {:.2} uJ/req)",
                        first.adaptive.p95(),
                        first.adaptive.shed.len(),
                        first.adaptive.energy_pj_per_request() / 1e6,
                        first.static_routed.p95(),
                        first.static_routed.shed.len(),
                        first.static_routed.energy_pj_per_request() / 1e6,
                    ),
                    &mut failures,
                );
            } else {
                println!(
                    "ok: serve_adaptive (p95 {} vs static {}, shed {} vs {}, \
                     decayed {} retried {})",
                    first.adaptive.p95(),
                    first.static_routed.p95(),
                    first.adaptive.shed.len(),
                    first.static_routed.shed.len(),
                    first.adaptive.decayed_requests(),
                    first.adaptive.retried,
                );
            }
        }
        Err(_) => fail("adaptive", "serve_adaptive panicked".into(), &mut failures),
    }

    // Gate 6 — fleet serving consistency and determinism. (Runs before the
    // artifact gate so a missing artifact cannot mask a fleet regression.)
    match catch_unwind(experiments::serve_fleet_consistency) {
        Ok((fleet, single)) => {
            let drift = sofa_serve::fleet::p95_drift(&fleet, &single);
            if fleet.served as usize != single.records.len() {
                fail(
                    "fleet",
                    format!(
                        "fleet 1x1 served {} requests, the single-node scheduler {}",
                        fleet.served,
                        single.records.len(),
                    ),
                    &mut failures,
                );
            } else if drift > FLEET_TOLERANCE {
                fail(
                    "fleet",
                    format!(
                        "fleet 1x1 p95 {} drifts {:.1}% (> {:.0}%) from the single-node \
                         scheduler's {}",
                        fleet.p95(),
                        100.0 * drift,
                        100.0 * FLEET_TOLERANCE,
                        single.p95(),
                    ),
                    &mut failures,
                );
            } else {
                println!(
                    "ok: serve_fleet 1x1 (p95 {} vs single-node {}, drift {:.1}%)",
                    fleet.p95(),
                    single.p95(),
                    100.0 * drift,
                );
            }
        }
        Err(_) => fail(
            "fleet",
            "serve_fleet_consistency panicked".into(),
            &mut failures,
        ),
    }
    match catch_unwind(|| (experiments::serve_fleet(), experiments::serve_fleet())) {
        Ok((first, second)) => {
            if first.to_json() != second.to_json() {
                fail(
                    "fleet",
                    "serve_fleet is non-deterministic across two runs".into(),
                    &mut failures,
                );
            } else if first.rows.is_empty() {
                fail(
                    "fleet",
                    "serve_fleet produced an empty table".into(),
                    &mut failures,
                );
            } else {
                println!("ok: serve_fleet deterministic ({} rows)", first.rows.len());
            }
        }
        Err(_) => fail("fleet", "serve_fleet panicked".into(), &mut failures),
    }

    // Gate 5 — the exported serve_trace artifacts are valid. `--trace` must
    // parse as JSON (else exit 2) and pass the Chrome-trace checker (else a
    // gate failure); `--metrics` must parse as a metrics snapshot.
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => {
                let path = args.next().expect("--trace requires a path");
                match std::fs::read_to_string(&path) {
                    Err(e) => artifact_errors.push(format!("trace artifact {path}: {e}")),
                    Ok(text) => match sofa_obs::json::parse(&text) {
                        Err(e) => artifact_errors
                            .push(format!("trace artifact {path} is not valid JSON: {e}")),
                        Ok(_) => match sofa_obs::validate_chrome_trace(&text) {
                            Ok(stats) => println!(
                                "ok: trace {path} ({} events, {} tracks, {} spans, max ts {})",
                                stats.events, stats.tracks, stats.spans, stats.max_ts
                            ),
                            Err(e) => fail("trace", format!("{path}: {e}"), &mut failures),
                        },
                    },
                }
            }
            "--metrics" => {
                let path = args.next().expect("--metrics requires a path");
                match std::fs::read_to_string(&path) {
                    Err(e) => artifact_errors.push(format!("metrics artifact {path}: {e}")),
                    Ok(text) => match sofa_obs::json::parse(text.trim_end()) {
                        Err(e) => artifact_errors
                            .push(format!("metrics artifact {path} is not valid JSON: {e}")),
                        Ok(doc) => {
                            let complete = ["counters", "gauges", "histograms"]
                                .iter()
                                .all(|k| doc.get(k).is_some());
                            if complete {
                                println!("ok: metrics {path}");
                            } else {
                                fail(
                                    "trace",
                                    format!(
                                        "{path} is missing a counters/gauges/histograms section"
                                    ),
                                    &mut failures,
                                );
                            }
                        }
                    },
                }
            }
            other => {
                eprintln!("unknown argument {other:?} (expected --trace / --metrics)");
                return ExitCode::from(2);
            }
        }
    }

    for e in &artifact_errors {
        eprintln!("artifact error: {e}");
    }
    if !failures.is_empty() {
        eprintln!("regression gate FAILED:");
        for f in &failures {
            eprintln!("  - [gate {}] {}", f.gate, f.msg);
        }
    }
    if !artifact_errors.is_empty() {
        // Artifact problems dominate: the gates cannot be trusted when
        // their inputs never materialised.
        ExitCode::from(2)
    } else if !failures.is_empty() {
        ExitCode::from(1)
    } else {
        println!(
            "regression gate passed: {compute_bound} compute-bound configs within {:.0}%",
            100.0 * TOLERANCE
        );
        ExitCode::SUCCESS
    }
}
