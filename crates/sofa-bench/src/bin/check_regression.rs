//! CI benchmark-regression gate.
//!
//! Exits non-zero (failing the bench-smoke job) when either
//!
//! 1. the cycle-level simulator diverges more than 25 % from the analytic
//!    model on any *compute-bound* configuration of the standard grid — the
//!    two share engine throughput models and traffic volumes, so divergence
//!    there means a simulator or model regression, not a modelling choice
//!    (memory-bound configurations are expected to diverge and are skipped);
//! 2. any smoke experiment panics or produces an empty table;
//! 3. the hardware-aware DSE regresses: the Pareto front comes back empty,
//!    no tuned configuration strictly dominates the paper-default operating
//!    point on (cycles, energy) at equal-or-better loss, or two runs of the
//!    pinned search disagree (the search must be deterministic — it is what
//!    the golden `dse_pareto.json` snapshot and the serving A/B consume);
//! 4. routed serving regresses: per-request Pareto routing must strictly
//!    dominate the paper-default operating point on (p95 latency, J/req),
//!    must not regress p95 against the single-point tuned run, and the
//!    budgeted run must bound every served request's projected energy.
//!
//! Run locally with `cargo run -p sofa-bench --bin check_regression`.

use sofa_bench::experiments;
use sofa_bench::Table;
use sofa_hw::config::HwConfig;
use sofa_sim::CycleSim;
use std::panic::catch_unwind;
use std::process::ExitCode;

/// Maximum |relative error| tolerated between cycle simulation and the
/// analytic model on compute-bound configurations.
const TOLERANCE: f64 = 0.25;

fn main() -> ExitCode {
    let mut failures: Vec<String> = Vec::new();

    // Gate 1 — cycle-sim fidelity on the standard grid.
    let sim = CycleSim::new(HwConfig::paper_default());
    let mut compute_bound = 0;
    for task in experiments::cycle_sim_tasks() {
        match catch_unwind(|| sim.validate(&task).1) {
            Ok(cmp) if !cmp.analytic_memory_bound => {
                compute_bound += 1;
                if !cmp.agrees_within(TOLERANCE) {
                    failures.push(format!(
                        "cycle sim diverged {:+.1}% (> {:.0}%) from the analytic model on \
                         compute-bound T={} S={} keep={} Bc={}",
                        100.0 * cmp.relative_error,
                        100.0 * TOLERANCE,
                        task.queries,
                        task.seq_len,
                        task.keep_ratio,
                        task.tile_size,
                    ));
                }
            }
            Ok(_) => {}
            Err(_) => failures.push(format!(
                "cycle sim panicked on T={} S={}",
                task.queries, task.seq_len
            )),
        }
    }
    if compute_bound == 0 {
        failures.push("grid contains no compute-bound configuration to check".into());
    }

    // Gate 2 — the smoke experiments run to completion and produce rows.
    type Check = (&'static str, fn() -> Table);
    let checks: [Check; 4] = [
        ("sim_cycle_vs_analytic", experiments::sim_cycle_vs_analytic),
        ("sim_stall_breakdown", experiments::sim_stall_breakdown),
        (
            "serve_throughput_latency",
            experiments::serve_throughput_latency,
        ),
        ("serve_scaling", experiments::serve_scaling),
    ];
    for (name, run) in checks {
        match catch_unwind(run) {
            Ok(table) if table.rows.is_empty() => {
                failures.push(format!("{name} produced an empty table"))
            }
            Ok(_) => println!("ok: {name}"),
            Err(_) => failures.push(format!("{name} panicked")),
        }
    }

    // Gate 3 — the hardware-aware DSE must produce a non-empty Pareto front
    // that beats the paper default, deterministically across runs. The
    // first report is kept for gate 4 so the (expensive) search is not run
    // a third time.
    let mut dse_report = None;
    match catch_unwind(|| {
        (
            experiments::dse_pareto_report_fresh(),
            experiments::dse_pareto_report_fresh(),
        )
    }) {
        Ok((first, second)) => {
            if first != second {
                failures.push("dse_pareto is non-deterministic across two runs".into());
            }
            if first.pareto.is_empty() {
                failures.push("dse_pareto produced an empty Pareto front".into());
            } else if first.dominating().is_empty() {
                failures.push(
                    "dse_pareto front is dominated by the paper default: no tuned config \
                     beats it on (cycles, energy) at equal-or-better loss"
                        .into(),
                );
            } else {
                println!(
                    "ok: dse_pareto ({} Pareto points, {} strictly dominate the default)",
                    first.pareto.len(),
                    first.dominating().len()
                );
            }
            dse_report = Some(first);
        }
        Err(_) => failures.push("dse_pareto panicked".into()),
    }

    // Gate 4 — routed serving must beat the paper default on both axes and
    // hold the line against the single tuned point. Reuses gate 3's report
    // when it produced one (it is deterministic, so this changes nothing).
    let before_gate4 = failures.len();
    match catch_unwind(|| match &dse_report {
        Some(report) => experiments::serve_routed_study_from(report),
        None => experiments::serve_routed_study(),
    }) {
        Ok(study) => {
            if !study.routed_dominates_default() {
                failures.push(format!(
                    "serve_routed: routing (p95 {}, {:.2} uJ/req) does not strictly \
                     dominate the paper default (p95 {}, {:.2} uJ/req)",
                    study.routed.p95(),
                    study.routed.energy_pj_per_request() / 1e6,
                    study.paper_default.p95(),
                    study.paper_default.energy_pj_per_request() / 1e6,
                ));
            }
            if study.routed.p95() > study.tuned.p95() {
                failures.push(format!(
                    "serve_routed: routing regresses p95 vs the single tuned point \
                     ({} vs {})",
                    study.routed.p95(),
                    study.tuned.p95(),
                ));
            }
            if study
                .budgeted
                .records
                .iter()
                .any(|r| r.energy_pj > study.budget_pj)
            {
                failures.push("serve_routed: budgeted run admitted an over-budget request".into());
            }
            if failures.len() == before_gate4 {
                println!(
                    "ok: serve_routed (p95 {} vs default {}, {:.2} vs {:.2} uJ/req, \
                     budgeted rerouted {} shed {})",
                    study.routed.p95(),
                    study.paper_default.p95(),
                    study.routed.energy_pj_per_request() / 1e6,
                    study.paper_default.energy_pj_per_request() / 1e6,
                    study.budgeted.rerouted_requests(),
                    study.budgeted.shed.len(),
                );
            }
        }
        Err(_) => failures.push("serve_routed panicked".into()),
    }

    if failures.is_empty() {
        println!(
            "regression gate passed: {compute_bound} compute-bound configs within {:.0}%",
            100.0 * TOLERANCE
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("regression gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}
