//! Prints the routed-serving experiment — the same mixed prefill/decode
//! trace served at the paper-default operating point, the single DSE-tuned
//! point, per-request Pareto routing, and budget-constrained routing — and
//! optionally writes it as a JSON artifact (`--json <path>`), which the CI
//! bench-smoke job uploads per PR and regression gate 4 re-checks.

use sofa_bench::report::print_and_write;

fn main() {
    print_and_write(&[sofa_bench::experiments::serve_routed()]);
}
