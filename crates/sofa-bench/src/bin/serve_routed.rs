//! Prints the routed-serving experiment — the same mixed prefill/decode
//! trace served at the paper-default operating point, the single DSE-tuned
//! point, per-request Pareto routing, and budget-constrained routing — and
//! optionally writes it as a JSON artifact (`--json <path>`), which the CI
//! bench-smoke job uploads per PR and regression gate 4 re-checks.

use sofa_bench::report::write_json_artifact_from_args;

fn main() {
    let tables = [sofa_bench::experiments::serve_routed()];
    for t in &tables {
        t.print();
        println!();
    }
    if let Some(path) = write_json_artifact_from_args(&tables) {
        eprintln!("wrote {}", path.display());
    }
}
