//! Prints the routed-serving experiment — the same mixed prefill/decode
//! trace served at the paper-default operating point, the single DSE-tuned
//! point, per-request Pareto routing, and budget-constrained routing — and
//! optionally writes it as a JSON artifact (`--json <path>`), which the CI
//! bench-smoke job uploads per PR and the `routing` gate spec re-checks.
fn main() {
    sofa_bench::registry::run_bin("serve_routed");
}
