//! Prints the serving experiments — continuous-batching latency percentiles
//! and multi-instance strong scaling — and optionally writes them as a JSON
//! artifact (`--json <path>`), which the CI bench-smoke job uploads per PR.
//! The registry entry runs the two studies sequentially on purpose: each one
//! fans its own (instances, load) grid out across the cores internally,
//! which beats pitting the two whole studies against each other on a shared
//! pool.
fn main() {
    sofa_bench::registry::run_bin("serve_sweep");
}
