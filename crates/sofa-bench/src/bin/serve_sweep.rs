//! Prints the serving experiments — continuous-batching latency percentiles
//! and multi-instance strong scaling — and optionally writes them as a JSON
//! artifact (`--json <path>`), which the CI bench-smoke job uploads per PR.
//! The experiments are called sequentially on purpose: each one fans its
//! own (instances, load) grid out across the cores internally, which beats
//! pitting the two whole studies against each other on a shared pool.

use sofa_bench::report::print_and_write;

fn main() {
    print_and_write(&[
        sofa_bench::experiments::serve_throughput_latency(),
        sofa_bench::experiments::serve_scaling(),
    ]);
}
