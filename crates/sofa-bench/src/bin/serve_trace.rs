//! Runs the pinned observability serving scenario (Pareto-routed requests
//! under a ¾-of-default energy budget, traced end to end in simulated
//! cycles) and writes its artifacts: `--trace <path>` the Chrome
//! trace-event JSON — open it in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing` — and `--metrics <path>` the metrics-registry
//! snapshot. Prints the serving summary. The output is byte-identical at
//! any `SOFA_THREADS`; CI's bench-smoke step uploads the trace and
//! regression gate 5 validates it.

use sofa_bench::report::write_text_artifact;

fn main() {
    let (report, obs, metrics) = sofa_bench::experiments::serve_trace_observed();
    print!("{}", report.summary());
    println!("trace: {} events", obs.len());
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => {
                let path =
                    std::path::PathBuf::from(args.next().expect("--trace requires an output path"));
                write_text_artifact(&path, &obs.to_chrome_json());
            }
            "--metrics" => {
                let path = std::path::PathBuf::from(
                    args.next().expect("--metrics requires an output path"),
                );
                write_text_artifact(&path, &format!("{}\n", metrics.to_json()));
            }
            other => panic!("unknown argument {other:?} (expected --trace / --metrics)"),
        }
    }
}
