//! Runs the pinned observability serving scenario (Pareto-routed requests
//! under a ¾-of-default energy budget, traced end to end in simulated
//! cycles) and writes its artifacts: `--trace <path>` the Chrome
//! trace-event JSON — open it in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing` — and `--metrics <path>` the metrics-registry
//! snapshot. Prints the serving summary. The output is byte-identical at
//! any `SOFA_THREADS`; CI's bench-smoke step uploads the trace and the
//! `trace` gate spec validates it.

use sofa_bench::report::write_text_artifact;

fn main() {
    let entry = sofa_bench::registry::find("serve_trace").expect("serve_trace is registered");
    let out = (entry.run)();
    print!("{}", out.texts["summary"]);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => {
                let path =
                    std::path::PathBuf::from(args.next().expect("--trace requires an output path"));
                write_text_artifact(&path, &out.texts["trace"]);
            }
            "--metrics" => {
                let path = std::path::PathBuf::from(
                    args.next().expect("--metrics requires an output path"),
                );
                write_text_artifact(&path, &out.texts["metrics"]);
            }
            other => panic!("unknown argument {other:?} (expected --trace / --metrics)"),
        }
    }
}
