//! Regenerates the paper artefact `fig16_latency_breakdown` (see docs/EXPERIMENTS.md for the
//! mapping; `--json <path>` writes the table as a JSON artifact).
fn main() {
    sofa_bench::registry::run_bin("fig16_latency_breakdown");
}
