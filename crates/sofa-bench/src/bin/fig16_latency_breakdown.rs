//! Regenerates the paper artefact `fig16_latency_breakdown` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::fig16_latency_breakdown().print();
}
