//! Regenerates the paper artefact `fig03_mat` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::fig03_mat().print();
}
