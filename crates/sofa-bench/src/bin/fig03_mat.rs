//! Regenerates the paper artefact `fig03_mat` (see DESIGN.md for the mapping).
fn main() {
    sofa_bench::experiments::fig03_mat().print();
}
