//! Regenerates the paper artefact `table3_area_power` (see docs/EXPERIMENTS.md for the
//! mapping; `--json <path>` writes the table as a JSON artifact).
fn main() {
    sofa_bench::registry::run_bin("table3_area_power");
}
