//! Regenerates the paper artefact `table3_area_power` (see DESIGN.md for the mapping).
fn main() {
    sofa_bench::experiments::table3_area_power().print();
}
