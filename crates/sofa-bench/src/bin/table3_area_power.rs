//! Regenerates the paper artefact `table3_area_power` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::table3_area_power().print();
}
