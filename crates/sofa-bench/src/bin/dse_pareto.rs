//! Prints the hardware-aware DSE Pareto front and the tuned-vs-default
//! serving A/B study, and optionally writes them as a JSON artifact
//! (`--json <path>`) for the CI bench-smoke job.

use sofa_bench::report::print_and_write;

fn main() {
    print_and_write(&[
        sofa_bench::experiments::dse_pareto(),
        sofa_bench::experiments::dse_serve_ab(),
    ]);
}
