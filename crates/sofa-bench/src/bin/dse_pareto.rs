//! Prints the hardware-aware DSE Pareto front and the tuned-vs-default
//! serving A/B study, and optionally writes them as a JSON artifact
//! (`--json <path>`) for the CI bench-smoke job.

use sofa_bench::report::write_json_artifact_from_args;

fn main() {
    let tables = [
        sofa_bench::experiments::dse_pareto(),
        sofa_bench::experiments::dse_serve_ab(),
    ];
    for t in &tables {
        t.print();
        println!();
    }
    if let Some(path) = write_json_artifact_from_args(&tables) {
        eprintln!("wrote {}", path.display());
    }
}
