//! Prints the hardware-aware DSE Pareto front and the tuned-vs-default
//! serving A/B study, and optionally writes them as a JSON artifact
//! (`--json <path>`) for the CI bench-smoke job.
fn main() {
    sofa_bench::registry::run_bin("dse_pareto");
}
