//! Regenerates the paper artefact `ablation_sufa_order` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::ablation_sufa_order().print();
}
