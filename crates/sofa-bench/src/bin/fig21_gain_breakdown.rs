//! Regenerates the paper artefact `fig21_gain_breakdown` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::fig21_gain_breakdown().print();
}
