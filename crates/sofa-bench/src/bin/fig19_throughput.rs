//! Regenerates the paper artefact `fig19_throughput` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::fig19_throughput().print();
}
