//! Regenerates the paper artefact `fig19_throughput` (see DESIGN.md for the mapping).
fn main() {
    sofa_bench::experiments::fig19_throughput().print();
}
