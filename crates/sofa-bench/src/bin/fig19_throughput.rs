//! Regenerates the paper artefact `fig19_throughput` (see docs/EXPERIMENTS.md for the
//! mapping; `--json <path>` writes the table as a JSON artifact).
fn main() {
    sofa_bench::registry::run_bin("fig19_throughput");
}
