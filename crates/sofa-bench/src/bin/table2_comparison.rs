//! Regenerates the paper artefact `table2_comparison` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::table2_comparison().print();
}
