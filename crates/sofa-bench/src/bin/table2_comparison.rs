//! Regenerates the paper artefact `table2_comparison` (see DESIGN.md for the mapping).
fn main() {
    sofa_bench::experiments::table2_comparison().print();
}
