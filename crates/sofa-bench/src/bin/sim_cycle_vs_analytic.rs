//! Prints the analytic-vs-cycle-level comparison and the per-stage
//! busy/stall breakdown of the event-driven simulator (`sofa-sim`), and
//! optionally writes them as a JSON artifact (`--json <path>`) for the CI
//! bench-smoke job.

use sofa_bench::report::print_and_write;

fn main() {
    print_and_write(&[
        sofa_bench::experiments::sim_cycle_vs_analytic(),
        sofa_bench::experiments::sim_stall_breakdown(),
    ]);
}
