//! Prints the analytic-vs-cycle-level comparison and the per-stage
//! busy/stall breakdown of the event-driven simulator (`sofa-sim`), and
//! optionally writes them as a JSON artifact (`--json <path>`) for the CI
//! bench-smoke job.

use sofa_bench::report::write_json_artifact_from_args;

fn main() {
    let tables = [
        sofa_bench::experiments::sim_cycle_vs_analytic(),
        sofa_bench::experiments::sim_stall_breakdown(),
    ];
    for t in &tables {
        t.print();
        println!();
    }
    if let Some(path) = write_json_artifact_from_args(&tables) {
        eprintln!("wrote {}", path.display());
    }
}
