//! Prints the analytic-vs-cycle-level comparison and the per-stage
//! busy/stall breakdown of the event-driven simulator (`sofa-sim`).
fn main() {
    sofa_bench::experiments::sim_cycle_vs_analytic().print();
    println!();
    sofa_bench::experiments::sim_stall_breakdown().print();
}
