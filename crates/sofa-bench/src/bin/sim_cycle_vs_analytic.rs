//! Prints the analytic-vs-cycle-level comparison and the per-stage
//! busy/stall breakdown of the event-driven simulator (`sofa-sim`), and
//! optionally writes them as a JSON artifact (`--json <path>`) for the CI
//! bench-smoke job.
fn main() {
    sofa_bench::registry::run_bin("sim_cycle_vs_analytic");
}
