//! Regenerates the paper artefact `fig20_memory_energy` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::fig20_memory_energy().print();
}
