//! Prints the parallel-engine scaling experiment — `run_batch` wall-time at
//! 1/2/4/8 worker threads with a per-sweep bit-identity re-check — and
//! optionally writes it as a JSON artifact (`--json <path>`), which the CI
//! bench-smoke job uploads per PR as the performance trajectory of the
//! threading work.

use sofa_bench::report::print_and_write;

fn main() {
    print_and_write(&[sofa_bench::experiments::par_scaling()]);
}
