//! Prints the parallel-engine scaling experiment — `run_batch` wall-time at
//! 1/2/4/8 worker threads with a per-sweep bit-identity re-check — and
//! optionally writes it as a JSON artifact (`--json <path>`), which the CI
//! bench-smoke job uploads per PR as the performance trajectory of the
//! threading work. Wall-times are host-dependent, so the table is reported
//! but never gated or snapshotted.
fn main() {
    sofa_bench::registry::run_bin("par_scaling");
}
