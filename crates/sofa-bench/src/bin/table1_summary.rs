//! Regenerates the paper artefact `table1_summary` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::table1_summary().print();
}
