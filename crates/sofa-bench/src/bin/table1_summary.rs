//! Regenerates the paper artefact `table1_summary` (see docs/EXPERIMENTS.md for the
//! mapping; `--json <path>` writes the table as a JSON artifact).
fn main() {
    sofa_bench::registry::run_bin("table1_summary");
}
