//! Regenerates the paper artefact `table4_power` (see DESIGN.md for the mapping).
fn main() {
    sofa_bench::experiments::table4_power().print();
}
