//! Regenerates the paper artefact `table4_power` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::table4_power().print();
}
