//! Regenerates the paper artefact `table4_power` (see docs/EXPERIMENTS.md for the
//! mapping; `--json <path>` writes the table as a JSON artifact).
fn main() {
    sofa_bench::registry::run_bin("table4_power");
}
