//! Regenerates the paper artefact `fig01_breakdown` (see docs/EXPERIMENTS.md for the mapping).
fn main() {
    sofa_bench::experiments::fig01_breakdown().print();
}
