//! Prints the fleet-scale sharded-serving experiment and optionally writes
//! it as a JSON artifact (`--json <path>`).
//!
//! Two modes:
//!
//! * no scale flags — the pinned multi-node scenario behind the
//!   `serve_fleet` golden snapshot and CI regression gate 6;
//! * `--requests N [--nodes N] [--instances-per-node N] [--rate F]
//!   [--disaggregate]` — one run at explicit scale. The CI bench-smoke job
//!   uses this to push a million requests through 64 simulated instances
//!   and byte-compares the artifact across `SOFA_THREADS` settings (the
//!   fleet simulation is bit-identical at any thread count).

use sofa_bench::report::print_and_write;

fn main() {
    let mut requests: Option<usize> = None;
    let mut nodes = 8usize;
    let mut instances_per_node = 8usize;
    let mut rate = 1500.0f64;
    let mut disaggregate = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match a.as_str() {
            "--requests" => requests = Some(value("--requests").parse().expect("--requests")),
            "--nodes" => nodes = value("--nodes").parse().expect("--nodes"),
            "--instances-per-node" => {
                instances_per_node = value("--instances-per-node")
                    .parse()
                    .expect("--instances-per-node");
            }
            "--rate" => rate = value("--rate").parse().expect("--rate"),
            "--disaggregate" => disaggregate = true,
            "--json" => {
                let _ = value("--json"); // consumed again by print_and_write
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    match requests {
        Some(n) => print_and_write(&[sofa_bench::experiments::serve_fleet_scaled(
            n,
            rate,
            nodes,
            instances_per_node,
            disaggregate,
        )]),
        None => sofa_bench::registry::run_bin("serve_fleet"),
    }
}
