//! The typed experiment registry: one entry per runnable experiment, with
//! everything the consumers need to stay in sync — the `all_experiments`
//! fan-out, the thin per-experiment binaries ([`run_bin`]), the spec-driven
//! `sofa-harness` runner (which looks experiments up by name), and the
//! generated `docs/EXPERIMENTS.md` catalogue (`harness list --markdown`).
//!
//! An experiment run produces an [`ExperimentOutput`]: the tables it
//! renders, named scalar/series *metrics* for gate predicates (tolerance,
//! dominance, count equality), and named *texts* for non-tabular artifacts
//! (the Chrome trace and metrics snapshot). Keeping the gate inputs in the
//! output — instead of recomputing them in a bespoke gate binary — is what
//! lets a spec file express a regression gate declaratively.

use crate::experiments;
use crate::report::{print_and_write, Table};
use sofa_hw::config::HwConfig;
use sofa_sim::CycleSim;
use std::collections::BTreeMap;

/// A named gate-input value exported by an experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// One number (a percentile, a count, a budget).
    Scalar(f64),
    /// One number per grid point (the per-config relative errors).
    Series(Vec<f64>),
}

/// Everything one experiment run produced.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExperimentOutput {
    /// Human-readable tables, in print order (the `--json` artifact is the
    /// JSON array of these, exactly as `report::tables_to_json` writes it).
    pub tables: Vec<Table>,
    /// Named gate inputs for spec predicates.
    pub metrics: BTreeMap<String, MetricValue>,
    /// Named non-tabular artifacts (`trace`, `metrics`, `summary`).
    pub texts: BTreeMap<String, String>,
}

impl ExperimentOutput {
    /// An output that is just tables (most experiments).
    pub fn of_tables(tables: Vec<Table>) -> Self {
        ExperimentOutput {
            tables,
            ..Default::default()
        }
    }

    /// Adds a scalar metric (builder style).
    pub fn with_scalar(mut self, name: &str, value: f64) -> Self {
        self.metrics
            .insert(name.to_string(), MetricValue::Scalar(value));
        self
    }

    /// Adds a series metric (builder style).
    pub fn with_series(mut self, name: &str, values: Vec<f64>) -> Self {
        self.metrics
            .insert(name.to_string(), MetricValue::Series(values));
        self
    }

    /// Adds a named text artifact (builder style).
    pub fn with_text(mut self, name: &str, text: String) -> Self {
        self.texts.insert(name.to_string(), text);
        self
    }

    /// Looks up a scalar metric.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(MetricValue::Scalar(v)) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a metric as a series (a scalar is a length-1 series).
    pub fn series(&self, name: &str) -> Option<Vec<f64>> {
        match self.metrics.get(name) {
            Some(MetricValue::Scalar(v)) => Some(vec![*v]),
            Some(MetricValue::Series(vs)) => Some(vs.clone()),
            None => None,
        }
    }
}

/// One registered experiment.
pub struct ExperimentEntry {
    /// Registry key — what spec files name in their `experiment` field.
    pub name: &'static str,
    /// The thin binary that runs it, if one exists (`None` for gate-only
    /// experiments that exist to export metrics).
    pub bin: Option<&'static str>,
    /// One-line description (the generated catalogue's prose column).
    pub about: &'static str,
    /// `true` for reproductions of the paper's figures/tables; `false`
    /// for the simulation / serving / DSE studies that go beyond it.
    pub paper: bool,
    /// Run by the `all_experiments` fan-out.
    pub in_all: bool,
    /// Must run on the main thread, after any parallel fan-out (the
    /// `par_scaling` wall-time study — inside a parallel region `sofa-par`
    /// degrades to sequential and the speedup column would read 1.0x).
    pub main_thread: bool,
    /// Runs the experiment.
    pub run: fn() -> ExperimentOutput,
}

/// Maximum |relative error| tolerated between cycle simulation and the
/// analytic model on compute-bound configurations. The `cycle_sim_fidelity`
/// spec repeats the number; the differential test in
/// `tests/harness_specs.rs` keeps the two in agreement.
pub const CYCLE_SIM_TOLERANCE: f64 = 0.25;

/// Maximum p95 drift tolerated between the fleet path at 1 node × 1
/// instance and the single-node scheduler (CI gate `fleet`).
pub const FLEET_TOLERANCE: f64 = 0.15;

/// The cycle-sim fidelity gate input: per-config relative error of the
/// cycle simulator against the analytic model on the *compute-bound*
/// points of the standard grid (memory-bound points are expected to
/// diverge and are exported for reference only).
pub fn cycle_sim_fidelity_output() -> ExperimentOutput {
    let sim = CycleSim::new(HwConfig::paper_default());
    let mut t = Table::new(
        "Gate  Cycle-sim fidelity on the standard grid (compute-bound only)",
        &["T", "S", "keep", "Bc", "bound", "rel err"],
    );
    let mut errors = Vec::new();
    for task in experiments::cycle_sim_tasks() {
        let cmp = sim.validate(&task).1;
        let bound = if cmp.analytic_memory_bound {
            "memory"
        } else {
            "compute"
        };
        if !cmp.analytic_memory_bound {
            errors.push(cmp.relative_error);
        }
        t.push([
            task.queries.to_string(),
            task.seq_len.to_string(),
            format!("{}", task.keep_ratio),
            task.tile_size.to_string(),
            bound.to_string(),
            format!("{:+.1}%", 100.0 * cmp.relative_error),
        ]);
    }
    let n = errors.len() as f64;
    ExperimentOutput::of_tables(vec![t])
        .with_series("compute_bound_rel_err", errors)
        .with_scalar("compute_bound_configs", n)
}

/// The DSE gate output on an already-computed report: the Pareto-front and
/// serving-A/B tables plus the front-size metrics gate `dse` checks.
pub fn dse_output_from(r: &sofa_dse::DseReport) -> ExperimentOutput {
    ExperimentOutput::of_tables(vec![
        experiments::dse_pareto_from(r),
        experiments::dse_serve_ab_from(r),
    ])
    .with_scalar("pareto_points", r.pareto.len() as f64)
    .with_scalar("dominating_points", r.dominating().len() as f64)
}

/// The routed-serving gate output on an already-computed study: the
/// `serve_routed` table plus the (p95, J/req, budget) metrics gate
/// `routing` checks.
pub fn routed_output_from(study: &sofa_serve::RoutedServeStudy) -> ExperimentOutput {
    let max_request_pj = study
        .budgeted
        .records
        .iter()
        .map(|r| r.energy_pj)
        .fold(0.0f64, f64::max);
    ExperimentOutput::of_tables(vec![experiments::serve_routed_table(study)])
        .with_scalar("routed_p95", study.routed.p95() as f64)
        .with_scalar(
            "routed_energy_pj_per_req",
            study.routed.energy_pj_per_request(),
        )
        .with_scalar("default_p95", study.paper_default.p95() as f64)
        .with_scalar(
            "default_energy_pj_per_req",
            study.paper_default.energy_pj_per_request(),
        )
        .with_scalar("tuned_p95", study.tuned.p95() as f64)
        .with_scalar("budgeted_max_request_pj", max_request_pj)
        .with_scalar("budget_pj", study.budget_pj)
}

/// The adaptive-serving gate output on an already-computed study: the
/// `serve_adaptive` table plus the (p95, shed, J/req) metrics gate
/// `adaptive` checks. `decode_op` labels the operating-point column.
pub fn adaptive_output_from(
    study: &sofa_serve::AdaptiveServeStudy,
    decode_op: &sofa_model::OperatingPoint,
) -> ExperimentOutput {
    ExperimentOutput::of_tables(vec![experiments::serve_adaptive_table(study, decode_op)])
        .with_scalar("adaptive_p95", study.adaptive.p95() as f64)
        .with_scalar("static_p95", study.static_routed.p95() as f64)
        .with_scalar("adaptive_shed", study.adaptive.shed.len() as f64)
        .with_scalar("static_shed", study.static_routed.shed.len() as f64)
        .with_scalar(
            "adaptive_energy_pj_per_req",
            study.adaptive.energy_pj_per_request(),
        )
        .with_scalar(
            "static_energy_pj_per_req",
            study.static_routed.energy_pj_per_request(),
        )
}

/// The fleet-consistency gate output on an already-computed pair: served
/// counts and p95 drift between the 1×1 fleet path and the single-node
/// scheduler on the same trace.
pub fn fleet_consistency_output_from(
    fleet: &sofa_serve::FleetReport,
    single: &sofa_serve::ServeReport,
) -> ExperimentOutput {
    let drift = sofa_serve::fleet::p95_drift(fleet, single);
    let mut t = Table::new(
        "Gate  Fleet 1x1 vs single-node scheduler",
        &["path", "served", "p95 kcyc"],
    );
    t.push([
        "fleet 1x1".to_string(),
        fleet.served.to_string(),
        format!("{:.1}", fleet.p95() as f64 / 1e3),
    ]);
    t.push([
        "single-node".to_string(),
        single.records.len().to_string(),
        format!("{:.1}", single.p95() as f64 / 1e3),
    ]);
    ExperimentOutput::of_tables(vec![t])
        .with_scalar("fleet_served", fleet.served as f64)
        .with_scalar("single_served", single.records.len() as f64)
        .with_scalar("p95_drift", drift)
}

/// The observability run as an output: the serving summary plus the Chrome
/// trace and metrics snapshot as named texts, byte-identical to what the
/// `serve_trace` binary writes.
fn serve_trace_output() -> ExperimentOutput {
    let (report, obs, metrics) = experiments::serve_trace_observed();
    let summary = format!("{}trace: {} events\n", report.summary(), obs.len());
    ExperimentOutput::default()
        .with_text("summary", summary)
        .with_text("trace", obs.to_chrome_json())
        .with_text("metrics", format!("{}\n", metrics.to_json()))
}

/// The full registry, in canonical order: the paper artefacts first (the
/// order `all_experiments` prints them), then the studies and gate-only
/// experiments.
pub fn registry() -> Vec<ExperimentEntry> {
    fn paper(
        name: &'static str,
        about: &'static str,
        run: fn() -> ExperimentOutput,
    ) -> ExperimentEntry {
        ExperimentEntry {
            name,
            bin: Some(name),
            about,
            paper: true,
            in_all: true,
            main_thread: false,
            run,
        }
    }
    fn study(
        name: &'static str,
        bin: Option<&'static str>,
        about: &'static str,
        in_all: bool,
        run: fn() -> ExperimentOutput,
    ) -> ExperimentEntry {
        ExperimentEntry {
            name,
            bin,
            about,
            paper: false,
            in_all,
            main_thread: false,
            run,
        }
    }
    fn tables(f: fn() -> Table) -> ExperimentOutput {
        ExperimentOutput::of_tables(vec![f()])
    }
    vec![
        paper(
            "fig01_breakdown",
            "Fig. 1 — memory-footprint and computation breakdown for long sequences",
            || tables(experiments::fig01_breakdown),
        ),
        paper(
            "fig03_mat",
            "Fig. 3 — memory-access-time ratio of whole-row dynamic-sparsity accelerators vs token parallelism",
            || tables(experiments::fig03_mat),
        ),
        paper(
            "fig04_oi",
            "Fig. 4 — operational intensity of QKV / MHA / FFN vs token parallelism",
            || tables(experiments::fig04_oi),
        ),
        paper(
            "fig05_fa2_overhead",
            "Fig. 5 — FlashAttention-2 exp/compare overhead vs the un-tiled softmax",
            || tables(experiments::fig05_fa2_overhead),
        ),
        paper(
            "fig08_distribution",
            "Fig. 8 — proportions of the three attention-score distribution types",
            || tables(experiments::fig08_distribution),
        ),
        paper(
            "fig16_latency_breakdown",
            "Fig. 16 — GPU latency breakdown and attention memory/energy share",
            || tables(experiments::fig16_latency_breakdown),
        ),
        paper(
            "fig17_complexity_ablation",
            "Fig. 17 — normalized complexity of the 4-bit+full-sort+FA-2 → DLZS → +SADS → +SU-FA ablation",
            || tables(experiments::fig17_complexity_ablation),
        ),
        paper(
            "fig18_lp_reduction",
            "Fig. 18 — LP computation reduction on the 20-benchmark suite at 0/1/2 % loss budgets",
            || tables(experiments::fig18_lp_reduction),
        ),
        paper(
            "fig19_throughput",
            "Fig. 19 — SOFA throughput gain over the A100 and over LP / LP+FA variants",
            || tables(experiments::fig19_throughput),
        ),
        paper(
            "fig20_memory_energy",
            "Fig. 20 — memory-access reduction and energy-efficiency gain over the A100",
            || tables(experiments::fig20_memory_energy),
        ),
        paper(
            "fig21_gain_breakdown",
            "Fig. 21 — gain breakdown of SOFA's mechanisms added to the GPU/TPU",
            || tables(experiments::fig21_gain_breakdown),
        ),
        paper(
            "table1_summary",
            "Table I — qualitative optimisation coverage of the SOTA accelerators",
            || tables(experiments::table1_summary),
        ),
        paper(
            "table2_comparison",
            "Table II — quantitative comparison with the SOTA accelerators",
            || tables(experiments::table2_comparison),
        ),
        paper(
            "table3_area_power",
            "Table III — area and power breakdown of the accelerator",
            || tables(experiments::table3_area_power),
        ),
        paper(
            "table4_power",
            "Table IV — system power breakdown (core / memory interface / DRAM)",
            || tables(experiments::table4_power),
        ),
        paper(
            "ablation_dse",
            "DSE convergence: Bayesian optimisation vs random search",
            || tables(experiments::ablation_dse),
        ),
        paper(
            "ablation_sufa_order",
            "SU-FA ascending vs descending updating order (§III-C)",
            || tables(experiments::ablation_sufa_order),
        ),
        paper(
            "ablation_rass",
            "RASS KV-fetch reduction vs the naive schedule",
            || tables(experiments::ablation_rass),
        ),
        study(
            "sim_cycle_vs_analytic",
            Some("sim_cycle_vs_analytic"),
            "cycle simulator vs analytic model across compute- and memory-bound configs, plus the per-stage stall breakdown",
            true,
            || {
                ExperimentOutput::of_tables(vec![
                    experiments::sim_cycle_vs_analytic(),
                    experiments::sim_stall_breakdown(),
                ])
            },
        ),
        study(
            "dse_pareto",
            Some("dse_pareto"),
            "hardware-aware DSE Pareto front + tuned-vs-default serving A/B (process-cached search)",
            true,
            || dse_output_from(&experiments::dse_pareto_report()),
        ),
        study(
            "serve_routed",
            Some("serve_routed"),
            "paper-default vs tuned vs Pareto-routed vs budgeted routing on one mixed trace",
            true,
            || routed_output_from(&experiments::serve_routed_study()),
        ),
        ExperimentEntry {
            name: "par_scaling",
            bin: Some("par_scaling"),
            about: "wall-time vs worker threads with a bit-identity re-check column (host-dependent, never gated)",
            paper: false,
            in_all: true,
            main_thread: true,
            run: || tables(experiments::par_scaling),
        },
        study(
            "serve_sweep",
            Some("serve_sweep"),
            "continuous-batching latency percentiles + multi-instance strong scaling",
            false,
            || {
                ExperimentOutput::of_tables(vec![
                    experiments::serve_throughput_latency(),
                    experiments::serve_scaling(),
                ])
            },
        ),
        study(
            "serve_adaptive",
            Some("serve_adaptive"),
            "closed-loop controller A/B: the overload trace under static budgeted Pareto routing vs decay + measured-state feedback + client shed/retry",
            false,
            || {
                let report = experiments::dse_pareto_report();
                let decode_op = report.route(&sofa_model::trace::RequestClass::Decode);
                adaptive_output_from(&experiments::serve_adaptive_study_from(&report), &decode_op)
            },
        ),
        study(
            "serve_fleet",
            Some("serve_fleet"),
            "fleet-scale sharded serving: the pinned 1/2/4-node grid over the inter-node fabric",
            false,
            || tables(experiments::serve_fleet),
        ),
        study(
            "serve_fleet_mega",
            None,
            "one million requests through 8 nodes x 8 instances — the CI thread-matrix byte-identity scenario",
            false,
            || {
                ExperimentOutput::of_tables(vec![experiments::serve_fleet_scaled(
                    1_000_000, 400.0, 8, 8, false,
                )])
            },
        ),
        study(
            "serve_fleet_consistency",
            None,
            "served counts and p95 drift between the 1x1 fleet path and the single-node scheduler",
            false,
            || {
                let (fleet, single) = experiments::serve_fleet_consistency();
                fleet_consistency_output_from(&fleet, &single)
            },
        ),
        study(
            "serve_trace",
            Some("serve_trace"),
            "the budgeted routed-serving scenario traced end to end in simulated cycles (Chrome trace + metrics snapshot)",
            false,
            serve_trace_output,
        ),
        study(
            "cycle_sim_fidelity",
            None,
            "per-config relative error of the cycle simulator vs the analytic model on the compute-bound grid",
            false,
            cycle_sim_fidelity_output,
        ),
        study(
            "dse_pareto_fresh",
            None,
            "dse_pareto without the process-wide cache: every run performs the full search, so determinism predicates are meaningful",
            false,
            || dse_output_from(&experiments::dse_pareto_report_fresh()),
        ),
        // The wall-time perf trajectory (BENCH_perf): hit rates are hard
        // gates, wall seconds are host-dependent and only budgeted. Like
        // par_scaling these must run on the main thread — inside a parallel
        // region sofa-par degrades to sequential and the timings would
        // measure the degraded path.
        ExperimentEntry {
            name: "perf_lowering",
            bin: None,
            about: "serving lowering-cache wall time + hit rate on the routed and adaptive traces (hit-rate floors gate; wall time budgeted, never snapshotted)",
            paper: false,
            in_all: true,
            main_thread: true,
            run: experiments::perf_lowering,
        },
        ExperimentEntry {
            name: "perf_fleet_mega",
            bin: None,
            about: "1M-request fleet wall time + per-node lowering-cache hit rate (hit-rate floor gates; wall budget advisory)",
            paper: false,
            in_all: false,
            main_thread: true,
            run: experiments::perf_fleet_mega,
        },
        ExperimentEntry {
            name: "perf_dse",
            bin: None,
            about: "fresh DSE search wall time + candidate-dedup counters (dedup liveness gates; wall time budgeted)",
            paper: false,
            in_all: true,
            main_thread: true,
            run: experiments::perf_dse,
        },
    ]
}

/// Looks an experiment up by registry key.
pub fn find(name: &str) -> Option<ExperimentEntry> {
    registry().into_iter().find(|e| e.name == name)
}

/// The shared `main` of every thin experiment binary: looks `name` up,
/// runs it, prints its summary text (if any) and tables, and honours the
/// `--json <path>` artifact convention.
///
/// # Panics
///
/// Panics if `name` is not registered — a bin/registry mismatch is a bug.
pub fn run_bin(name: &str) {
    let entry = find(name).unwrap_or_else(|| panic!("experiment {name:?} is not registered"));
    let out = (entry.run)();
    if let Some(summary) = out.texts.get("summary") {
        print!("{summary}");
    }
    print_and_write(&out.tables);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_bins_match() {
        let reg = registry();
        let mut names: Vec<&str> = reg.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "duplicate registry names");
        for e in &reg {
            if let Some(bin) = e.bin {
                // Every named bin is the experiment itself (the fleet and
                // trace binaries add flag handling on top).
                assert!(
                    bin == e.name,
                    "bin {bin} does not match registry key {}",
                    e.name
                );
            }
        }
    }

    #[test]
    fn paper_entries_are_in_all() {
        for e in registry() {
            if e.paper {
                assert!(e.in_all, "{} is a paper artefact but not in_all", e.name);
            }
        }
    }

    #[test]
    fn scalar_and_series_lookups() {
        let out = ExperimentOutput::default()
            .with_scalar("a", 1.5)
            .with_series("b", vec![1.0, 2.0]);
        assert_eq!(out.scalar("a"), Some(1.5));
        assert_eq!(out.scalar("b"), None);
        assert_eq!(out.series("a"), Some(vec![1.5]));
        assert_eq!(out.series("b"), Some(vec![1.0, 2.0]));
        assert_eq!(out.series("c"), None);
    }

    #[test]
    fn cycle_sim_fidelity_exports_compute_bound_errors() {
        let out = cycle_sim_fidelity_output();
        let errs = out.series("compute_bound_rel_err").unwrap();
        assert!(!errs.is_empty());
        assert_eq!(out.scalar("compute_bound_configs"), Some(errs.len() as f64));
        assert!(!out.tables[0].rows.is_empty());
    }
}
