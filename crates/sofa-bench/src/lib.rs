//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation section.
//!
//! Each experiment is a library function in [`experiments`] that returns a
//! [`Table`]; the typed [`registry`] names every runnable experiment and
//! drives the thin binaries in `src/bin/` (via [`registry::run_bin`]), the
//! `all_experiments` fan-out, the spec-driven `sofa-harness` runner, and
//! the generated `docs/EXPERIMENTS.md` catalogue — so none of them can
//! drift from the code.

pub mod experiments;
pub mod registry;
pub mod report;

pub use registry::{ExperimentEntry, ExperimentOutput, MetricValue};
pub use report::Table;
