//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation section.
//!
//! Each experiment is a library function in [`experiments`] that returns a
//! [`Table`]; one thin binary per paper artefact prints it (see
//! `src/bin/`). The mapping from paper figure/table to binary is catalogued in
//! `DESIGN.md` and the measured-vs-paper comparison lives in
//! `EXPERIMENTS.md`.

pub mod experiments;
pub mod report;

pub use report::Table;
