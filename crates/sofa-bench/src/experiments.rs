//! One function per paper figure/table. Each returns a [`Table`] so the thin
//! binaries in `src/bin/` (and the integration tests) can render or inspect
//! the numbers.
//!
//! Experiments that require the authors' silicon or GPU measurements use the
//! calibration constants documented in `sofa-baselines` (and flagged in
//! `EXPERIMENTS.md`); everything else is simulated or executed from scratch.

use crate::report::{f3, pct, times, Table};
use sofa_baselines::accelerators::sota_accelerators;
use sofa_baselines::gpu::{GpuModel, SoftwareStack};
use sofa_core::accuracy;
use sofa_core::flash::{fa2_extra_ops, flash_attention, FlashConfig, FlashVersion};
use sofa_core::ops::OpCounts;
use sofa_core::pipeline::{PipelineConfig, PredictionScheme, SofaPipeline, SortingScheme};
use sofa_core::sads::{sads_topk, SadsConfig};
use sofa_core::sufa::{sorted_updating_attention, SuFaOrder};
use sofa_core::topk::topk_exact;
use sofa_dse as dse;
use sofa_hw::accel::{AttentionTask, SofaAccelerator, WholeRowAccelerator};
use sofa_hw::area::{AreaModel, Module};
use sofa_hw::config::HwConfig;
use sofa_hw::energy::{module_power_mw, PowerBreakdown};
use sofa_hw::rass;
use sofa_model::config::ModelConfig;
use sofa_model::distribution::measure_mixture;
use sofa_model::profile::{normalized_oi, ComputeBreakdown, LayerProfile, MemoryFootprint};
use sofa_model::suite::benchmark_suite;
use sofa_model::trace::{RequestTrace, TraceConfig};
use sofa_model::workload::{AttentionWorkload, ScoreWorkload};
use sofa_model::{OperatingPoint, ScoreDistribution};
use sofa_serve::{
    AdaptiveServeConfig, AdaptiveServeStudy, FeedbackConfig, FleetConfig, FleetReport,
    FleetServeSim, OpRouter, RetryPolicy, RoutedServeStudy, ServeConfig, ServeReport, ServeSim,
};
use sofa_sim::CycleSim;
use sofa_tensor::seeded_rng;

/// A compact workload used by the algorithm-level experiments: large enough to
/// show the trends, small enough to run in seconds.
fn small_workload(seed: u64) -> AttentionWorkload {
    AttentionWorkload::generate(&ScoreDistribution::bert_like(), 16, 256, 64, 32, seed)
}

// ---------------------------------------------------------------------------
// Motivation figures
// ---------------------------------------------------------------------------

/// Fig. 1 — memory-footprint and computation breakdown for long sequences.
pub fn fig01_breakdown() -> Table {
    let mut t = Table::new(
        "Fig.1  Memory & computation breakdown (QKV / Attention / FFN)",
        &[
            "model",
            "seq_len",
            "mem QKV",
            "mem Atten",
            "mem FFN",
            "cmp QKV",
            "cmp Atten",
            "cmp FFN",
        ],
    );
    let llama = ModelConfig::llama_7b(4096);
    let vit = ModelConfig::vit_base(4096);
    for (model, lens) in [
        (&llama, vec![4096usize, 16384, 32768, 65536, 131072]),
        (&vit, vec![4096, 8192, 14336, 32768, 129024]),
    ] {
        for s in lens {
            let cfg = model.with_seq_len(s);
            let mem = MemoryFootprint::analyze(&cfg).fractions();
            let cmp = ComputeBreakdown::analyze(&cfg).fractions();
            t.push([
                cfg.name.clone(),
                s.to_string(),
                pct(mem.0),
                pct(mem.1),
                pct(mem.2),
                pct(cmp.0),
                pct(cmp.1),
                pct(cmp.2),
            ]);
        }
    }
    t
}

/// Fig. 3 — memory-access-time ratio of whole-row dynamic-sparsity
/// accelerators (FACT / Energon style, 2 MB SRAM) versus token parallelism.
pub fn fig03_mat() -> Table {
    let mut t = Table::new(
        "Fig.3  MAT ratio of whole-row accelerators vs. parallelism (2MB SRAM)",
        &["model", "seq_len", "parallelism", "MAT ratio", "DRAM MB"],
    );
    let mut cfg = HwConfig::paper_default();
    cfg.token_sram_bytes = 2 * 1024 * 1024;
    let accel = WholeRowAccelerator::new(cfg);
    let cases = [
        (
            "BERT-Large",
            ModelConfig::bert_large(512),
            vec![1usize, 64, 256, 512],
        ),
        ("GPT-2", ModelConfig::gpt2(1024), vec![1, 64, 256]),
        ("Bloom-3B", ModelConfig::bloom_3b(2048), vec![1, 64, 128]),
        ("Llama-13B", ModelConfig::llama_13b(4096), vec![1, 8]),
    ];
    for (name, model, parallelisms) in cases {
        for p in parallelisms {
            let task = AttentionTask::from_model(&model, p, 0.25, 16);
            let r = accel.simulate(&task);
            t.push([
                name.to_string(),
                model.seq_len.to_string(),
                p.to_string(),
                pct(r.memory_time_fraction()),
                format!("{:.1}", r.dram_bytes as f64 / 1e6),
            ]);
        }
    }
    t
}

/// Fig. 4 — operational intensity of QKV / MHA / FFN and its growth with token
/// parallelism.
pub fn fig04_oi() -> Table {
    let mut t = Table::new(
        "Fig.4  Operational intensity (normalised to FFN) and OI vs parallelism",
        &[
            "model",
            "parallelism",
            "OI QKV/FFN",
            "OI MHA/FFN",
            "MHA OI (flops/byte)",
        ],
    );
    for model in [
        ModelConfig::vit_base(3192),
        ModelConfig::bert_base(512),
        ModelConfig::gpt2_large(1024),
        ModelConfig::bloom_3b(2048),
    ] {
        for parallelism in [1usize, 8, 32, 128, model.seq_len] {
            let (qkv, mha, _) = normalized_oi(&model, parallelism);
            let oi = LayerProfile::analyze(&model, parallelism)
                .attention
                .operational_intensity();
            t.push([
                model.name.clone(),
                parallelism.to_string(),
                f3(qkv),
                f3(mha),
                f3(oi),
            ]);
        }
    }
    t
}

/// Fig. 5 — extra exponentiations/comparisons of FlashAttention-2 relative to
/// the vanilla (un-tiled) softmax, and its growth with S and the tile count.
pub fn fig05_fa2_overhead() -> Table {
    let mut t = Table::new(
        "Fig.5  FA-2 overhead vs vanilla attention",
        &[
            "seq_len",
            "tile Bc",
            "extra exp (analytic)",
            "extra cmp (analytic)",
            "measured exp ratio",
        ],
    );
    for s in [256usize, 512, 1024, 2048] {
        for bc in [4usize, 16, 64] {
            let (extra_exp, extra_cmp) = fa2_extra_ops(s, s, bc);
            // Measure the ratio on a scaled-down instance with the same tiling.
            let scale = 256.min(s);
            let w = AttentionWorkload::generate(
                &ScoreDistribution::bert_like(),
                8,
                scale,
                32,
                16,
                s as u64,
            );
            let (q, k, v) = (w.q.clone(), w.keys(), w.values());
            let mut fa2 = OpCounts::new();
            let _ = flash_attention(
                &q,
                &k,
                &v,
                &FlashConfig::new(bc, FlashVersion::V2),
                &mut fa2,
            );
            let mut vanilla = OpCounts::new();
            let _ = sofa_core::flash::vanilla_attention_counted(&q, &k, &v, &mut vanilla);
            t.push([
                s.to_string(),
                bc.to_string(),
                extra_exp.to_string(),
                extra_cmp.to_string(),
                f3(fa2.exp as f64 / vanilla.exp as f64),
            ]);
        }
    }
    t
}

/// Fig. 8 — measured proportions of the three attention-score distribution
/// types across models.
pub fn fig08_distribution() -> Table {
    let mut t = Table::new(
        "Fig.8  Attention score distribution type mixture",
        &["model", "Type-I", "Type-II", "Type-III"],
    );
    let cases = [
        ("ViT-ImageNet", ScoreDistribution::vit_like(), 3192usize),
        ("BERT-CoLA", ScoreDistribution::bert_like(), 512),
        ("GPT2-WikiText2", ScoreDistribution::gpt_like(), 1024),
        ("Llama7B-Winogrande", ScoreDistribution::llama_like(), 4096),
    ];
    for (name, dist, s) in cases {
        let mut rng = seeded_rng(0xF1608);
        let (t1, t2, t3) = measure_mixture(&dist, s.min(1024), 200, 4, &mut rng);
        t.push([name.to_string(), pct(t1), pct(t2), pct(t3)]);
    }
    t
}

/// Fig. 16 — latency breakdown (QKV / attention / FFN) and attention
/// memory-access / energy share on the GPU for growing models.
pub fn fig16_latency_breakdown() -> Table {
    let mut t = Table::new(
        "Fig.16  GPU latency breakdown and attention shares",
        &[
            "model",
            "batch",
            "QKV",
            "Attention",
            "FFN",
            "Atten mem share",
            "Atten energy share",
        ],
    );
    let gpu = GpuModel::a100();
    let models = [
        ModelConfig::bert_large(512),
        ModelConfig::bloom_1b7(1024),
        ModelConfig::bloom_1b7(2048),
        ModelConfig::llama_7b(4096),
        ModelConfig::llama_13b(8192),
    ];
    for model in models {
        for batch in [1usize, 4] {
            let p = LayerProfile::analyze(&model, model.seq_len);
            // Roofline time per component (batch scales both flops and bytes).
            let time = |flops: u64, bytes: u64| -> f64 {
                let f = flops as f64 * batch as f64;
                let b = bytes as f64 * batch as f64;
                (f / (gpu.peak_flops * gpu.attention_utilization)).max(b / gpu.mem_bandwidth_bps)
            };
            let t_qkv = time(p.qkv.flops, p.qkv.total_bytes());
            let t_att = time(p.attention.flops, p.attention.total_bytes());
            let t_ffn = time(p.ffn.flops, p.ffn.total_bytes());
            let total = t_qkv + t_att + t_ffn;
            // Energy share approximated by traffic share (memory dominates).
            let bytes_total =
                (p.qkv.total_bytes() + p.attention.total_bytes() + p.ffn.total_bytes()) as f64;
            let energy_share = p.attention.total_bytes() as f64 / bytes_total;
            let mem_time = p.attention.total_bytes() as f64 * batch as f64 / gpu.mem_bandwidth_bps;
            t.push([
                model.name.clone(),
                batch.to_string(),
                pct(t_qkv / total),
                pct(t_att / total),
                pct(t_ffn / total),
                pct((mem_time / t_att).min(1.0)),
                pct(energy_share),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Algorithm evaluation
// ---------------------------------------------------------------------------

/// Fig. 17 — normalized complexity of the ablation
/// 4-bit+full-sort+FA-2 → DLZS → +SADS → +SU-FA.
pub fn fig17_complexity_ablation() -> Table {
    let mut t = Table::new(
        "Fig.17  Complexity ablation (normalised to the 4-bit + full-sort + FA-2 baseline)",
        &["configuration", "normalised complexity", "reduction"],
    );
    let keep = 0.25;
    let bc = 16;
    let seeds = [11u64, 23, 37];
    let run = |cfg: PipelineConfig| -> f64 {
        seeds
            .iter()
            .map(|&s| {
                SofaPipeline::new(cfg)
                    .run(&small_workload(s))
                    .normalized_complexity()
            })
            .sum::<f64>()
            / seeds.len() as f64
    };
    let baseline = run(PipelineConfig::baseline(keep, bc).unwrap());
    let dlzs = run(PipelineConfig::baseline(keep, bc)
        .unwrap()
        .with_prediction(PredictionScheme::Dlzs));
    let dlzs_sads = run(PipelineConfig::baseline(keep, bc)
        .unwrap()
        .with_prediction(PredictionScheme::Dlzs)
        .with_sorting(SortingScheme::Sads));
    let full = run(PipelineConfig::new(keep, bc).unwrap());
    for (name, value) in [
        ("4bit + vanilla sorting + FA-2", baseline),
        ("DLZS + vanilla sorting + FA-2", dlzs),
        ("DLZS + SADS + FA-2", dlzs_sads),
        ("DLZS + SADS + SU-FA (SOFA)", full),
    ] {
        t.push([
            name.to_string(),
            pct(value / baseline),
            pct(1.0 - value / baseline),
        ]);
    }
    t
}

/// Fig. 18 — computation reduction of the LP mechanism on the 20-benchmark
/// suite at 0 % / 1 % / 2 % loss budgets.
pub fn fig18_lp_reduction() -> Table {
    let mut t = Table::new(
        "Fig.18  LP computation reduction per benchmark (Atten / QKV+Atten)",
        &["benchmark", "loss 0%", "loss 1%", "loss 2%"],
    );
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for b in benchmark_suite() {
        let profile = LayerProfile::analyze(&b.model, b.model.seq_len);
        let qkv = profile.qkv.flops as f64;
        let atten = profile.attention.flops as f64;
        let mut cells = vec![b.name.clone()];
        for (i, budget) in [0.0, 0.01, 0.02].iter().enumerate() {
            let keep = b.keep_ratio(*budget);
            // Attention reduction: pruned Q-K pairs; QKV reduction: keys that
            // no query selected are never projected (on-demand generation).
            let atten_red = 1.0 - keep;
            let union = 1.0 - (1.0 - keep).powi(32);
            let qkv_red = 0.75 * (1.0 - union);
            let combined = (atten * atten_red + qkv * qkv_red) / (atten + qkv);
            cells.push(format!("[{}, {}]", pct(atten_red), pct(combined)));
            geo[i].push(atten_red);
        }
        t.add_row(cells);
    }
    let mut avg = vec!["Average (Atten)".to_string()];
    for g in &geo {
        avg.push(pct(g.iter().sum::<f64>() / g.len() as f64));
    }
    t.add_row(avg);
    t
}

/// Ablation — SU-FA ascending vs descending updating order (paper §III-C).
pub fn ablation_sufa_order() -> Table {
    let mut t = Table::new(
        "Ablation  SU-FA update order (descending vs ascending vs FA-2)",
        &["scheme", "exp ops", "mul ops", "normalised complexity"],
    );
    let w = small_workload(5);
    let scores = w.exact_scores();
    let mut ops = OpCounts::new();
    let mask = topk_exact(&scores, 64, &mut ops);
    let (k, v) = (w.keys(), w.values());

    let mut desc = OpCounts::new();
    let _ = sorted_updating_attention(&w.q, &k, &v, &mask, SuFaOrder::Descending, &mut desc);
    let mut asc = OpCounts::new();
    let _ = sorted_updating_attention(&w.q, &k, &v, &mask, SuFaOrder::Ascending, &mut asc);
    // FA-2 over the same number of keys.
    let idx: Vec<usize> = (0..64).collect();
    let (kk, vv) = (k.select_rows(&idx), v.select_rows(&idx));
    let mut fa2 = OpCounts::new();
    let _ = flash_attention(
        &w.q,
        &kk,
        &vv,
        &FlashConfig::new(16, FlashVersion::V2),
        &mut fa2,
    );

    for (name, ops) in [
        ("SU-FA descending", desc),
        ("SU-FA ascending", asc),
        ("FA-2 over top-k", fa2),
    ] {
        t.push([
            name.to_string(),
            ops.exp.to_string(),
            ops.mul.to_string(),
            f3(ops.normalized_complexity()),
        ]);
    }
    t
}

/// Ablation — RASS KV fetch reduction versus the naive schedule.
pub fn ablation_rass() -> Table {
    let mut t = Table::new(
        "Ablation  RASS vs naive KV scheduling",
        &[
            "seq_len",
            "queries",
            "keep",
            "buffer",
            "naive fetches",
            "RASS fetches",
            "reduction",
        ],
    );
    for (s, q, keep) in [
        (256usize, 32usize, 0.25f64),
        (512, 64, 0.25),
        (1024, 128, 0.2),
    ] {
        let w = ScoreWorkload::generate(&ScoreDistribution::llama_like(), q, s, 7);
        let k = (s as f64 * keep) as usize;
        let (mask, _) = sads_topk(&w.scores, k, &SadsConfig::paper_default());
        for cap in [32usize, 128] {
            let naive = rass::naive_schedule(&mask, cap).vector_fetches;
            let smart = rass::rass_schedule(&mask, cap).vector_fetches;
            t.push([
                s.to_string(),
                q.to_string(),
                pct(keep),
                cap.to_string(),
                naive.to_string(),
                smart.to_string(),
                pct(1.0 - smart as f64 / naive as f64),
            ]);
        }
    }
    t
}

/// Ablation — DSE convergence: Bayesian optimisation vs random search.
pub fn ablation_dse() -> Table {
    let mut t = Table::new(
        "Ablation  DSE (Bayesian optimisation vs random search)",
        &[
            "model",
            "evaluations",
            "BO objective",
            "random objective",
            "BO mean keep",
            "BO mean Bc",
        ],
    );
    for (name, layers, seq_len) in [("BERT-Base", 4usize, 512usize), ("GPT-2", 6, 1024)] {
        let space = dse::DseSpace::paper_space(layers, seq_len);
        let cfg = dse::DseConfig {
            max_iters: 24,
            ..dse::DseConfig::paper_weights(name, 7)
        };
        // Loss term: mean per-layer proxy loss of the SOFA pipeline, each
        // layer evaluated at *its own* candidate keep ratio and tile size
        // (averaging either into one scalar would make every per-layer
        // assignment of the same multiset indistinguishable).
        let layer_workloads: Vec<_> = (0..layers)
            .map(|i| {
                let w = small_workload(layers as u64 + i as u64);
                let dense = w.dense_output();
                (w, dense)
            })
            .collect();
        let loss_fn = |c: &dse::DseCandidate| {
            layer_workloads
                .iter()
                .zip(c.tile_sizes.iter().zip(c.keep_ratios.iter()))
                .map(|((w, dense), (&bc, &keep))| {
                    accuracy::evaluate_keep_ratio(w, dense, keep, bc).loss
                })
                .sum::<f64>()
                / layers as f64
        };
        let bo = dse::bayesian_optimize(&space, &cfg, loss_fn);
        let rs = dse::random_search(&space, &cfg, loss_fn);
        let mean_bc =
            bo.best.tile_sizes.iter().sum::<usize>() as f64 / bo.best.tile_sizes.len() as f64;
        t.push([
            name.to_string(),
            bo.evaluations.to_string(),
            f3(bo.best_objective),
            f3(rs.best_objective),
            pct(bo.best.mean_keep()),
            f3(mean_bc),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Architecture evaluation
// ---------------------------------------------------------------------------

/// Fig. 19 — throughput gain of SOFA over the A100 GPU, and over
/// LP / LP+FA-1 / LP+FA-2 on the GPU.
pub fn fig19_throughput() -> Table {
    let mut t = Table::new(
        "Fig.19  Throughput gain over dense A100 execution",
        &[
            "benchmark",
            "GPU LP (2% loss)",
            "GPU LP+FA1",
            "GPU LP+FA2",
            "SOFA (0%)",
            "SOFA (1%)",
            "SOFA (2%)",
        ],
    );
    let gpu = GpuModel::a100();
    let full = gpu.speedup(&SoftwareStack::full());
    let mut geo = vec![Vec::new(), Vec::new(), Vec::new()];
    for b in benchmark_suite() {
        let lp = gpu.lp_only_speedup(0.02);
        let lp_fa1 = lp * 1.5;
        let lp_fa2 = lp_fa1 * 1.19;
        // Per-benchmark variation of the SOFA gain: benchmarks that tolerate
        // more pruning run proportionally faster than the fleet average.
        let keep_avg = 0.18;
        let mut row = vec![b.name.clone(), times(lp), times(lp_fa1), times(lp_fa2)];
        for (i, budget) in [0.0, 0.01, 0.02].iter().enumerate() {
            let keep = b.keep_ratio(*budget);
            let budget_scale = match i {
                0 => 6.1 / 9.5,
                1 => 7.2 / 9.5,
                _ => 1.0,
            };
            let s = full * budget_scale * (keep_avg / keep).powf(0.25);
            geo[i].push(s);
            row.push(times(s));
        }
        t.add_row(row);
    }
    let mut avg = vec![
        "GeoMean".to_string(),
        times(gpu.lp_only_speedup(0.02)),
        times(gpu.lp_only_speedup(0.02) * 1.5),
        times(gpu.lp_only_speedup(0.02) * 1.5 * 1.19),
    ];
    for g in &geo {
        let gm = (g.iter().map(|x| x.ln()).sum::<f64>() / g.len() as f64).exp();
        avg.push(times(gm));
    }
    t.add_row(avg);
    t
}

/// Fig. 20 — memory-access reduction of SOFA and energy-efficiency gain over
/// the A100 GPU.
pub fn fig20_memory_energy() -> Table {
    let mut t = Table::new(
        "Fig.20  Memory access reduction and energy-efficiency gain",
        &["quantity", "value"],
    );
    // (a) Memory access: vanilla LP baseline vs +RASS vs full SOFA, measured
    // on the hardware model for a Llama-scale task.
    let cfg = HwConfig::paper_default();
    let task = AttentionTask::new(128, 4096, 4096, 32, 0.2, 16);
    let whole_row = WholeRowAccelerator::new(cfg).simulate(&task).dram_bytes as f64;
    let mut no_rass = SofaAccelerator::new(cfg);
    no_rass.rass = false;
    no_rass.tiled_pipeline = false;
    let lp_only = no_rass.simulate(&task).dram_bytes as f64;
    let mut rass_only = SofaAccelerator::new(cfg);
    rass_only.tiled_pipeline = false;
    let with_rass = rass_only.simulate(&task).dram_bytes as f64;
    let full = SofaAccelerator::new(cfg).simulate(&task).dram_bytes as f64;
    t.push([
        "Vanilla dynamic sparsity (LP) memory access",
        pct(1.0).as_str(),
    ]);
    t.push([
        "SOFA (LP+RASS) memory access",
        pct(with_rass / lp_only).as_str(),
    ]);
    t.push([
        "SOFA (LP+RASS+SU-FA+tiled dataflow) memory access",
        pct(full / lp_only).as_str(),
    ]);
    t.push([
        "Whole-row accelerator DRAM traffic vs SOFA",
        times(whole_row / full).as_str(),
    ]);

    // (b) Energy-efficiency gain over the A100 (Table II device efficiency vs
    // the measured GPU attention efficiency of ~100 GOPS/W).
    let sofa = sota_accelerators()
        .into_iter()
        .find(|a| a.name == "SOFA")
        .expect("SOFA record exists");
    let gpu_measured_eff = sofa.device_energy_efficiency() / 71.5;
    for (budget, scale) in [
        ("0% loss", 49.8 / 71.5),
        ("1% loss", 57.6 / 71.5),
        ("2% loss", 1.0),
    ] {
        let gain = sofa.device_energy_efficiency() * scale / gpu_measured_eff;
        t.push([format!("Efficiency gain over A100 ({budget})"), times(gain)]);
    }
    t
}

/// Fig. 21 — throughput / efficiency gain breakdown when SOFA's mechanisms are
/// added to the GPU and the TPU.
pub fn fig21_gain_breakdown() -> Table {
    let mut t = Table::new(
        "Fig.21  Gain breakdown on GPU / TPU",
        &["step", "GPU cumulative speedup", "TPU cumulative speedup"],
    );
    let gpu = GpuModel::a100().cumulative_speedups();
    let tpu = GpuModel::tpu().cumulative_speedups();
    for (g, p) in gpu.iter().zip(tpu.iter()) {
        t.push([g.0.to_string(), times(g.1), times(p.1)]);
    }
    t
}

/// Table I — qualitative optimisation coverage of the SOTA accelerators.
pub fn table1_summary() -> Table {
    let mut t = Table::new(
        "Table I  Optimisation coverage of SOTA Transformer accelerators",
        &[
            "accelerator",
            "sparsity",
            "attention compute",
            "attention memory",
            "cross-stage",
        ],
    );
    for a in sota_accelerators() {
        t.push([
            a.name.to_string(),
            format!("{:?}", a.sparsity),
            "yes".to_string(),
            if a.optimizes_memory {
                "partial/yes"
            } else {
                "no"
            }
            .to_string(),
            if a.cross_stage { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

/// Table II — quantitative comparison with the SOTA accelerators.
pub fn table2_comparison() -> Table {
    let mut t = Table::new(
        "Table II  Comparison with SOTA accelerators (scaled to 28nm / 1.0V)",
        &[
            "accelerator",
            "loss",
            "saved comp",
            "GOPS",
            "core eff (GOPS/W)",
            "device eff (GOPS/W)",
            "area eff (GOPS/mm2)",
            "latency (ms, 137 GOPs @128 mult)",
        ],
    );
    for a in sota_accelerators() {
        t.push([
            a.name.to_string(),
            pct(a.accuracy_loss),
            pct(a.saved_computation),
            format!("{:.0}", a.throughput_gops),
            format!("{:.0}", a.core_energy_efficiency_28nm(1.0)),
            format!("{:.0}", a.device_energy_efficiency()),
            format!("{:.0}", a.area_efficiency_28nm()),
            format!("{:.0}", a.normalized_latency_s(137.0, 128, 1.0e9) * 1e3),
        ]);
    }
    t
}

/// Table III — area and power breakdown of the SOFA accelerator.
pub fn table3_area_power() -> Table {
    let mut t = Table::new(
        "Table III  SOFA area and power breakdown (TSMC 28nm, 1 GHz)",
        &["module", "area (mm2)", "power (mW)"],
    );
    let area = AreaModel::paper_28nm();
    for m in Module::ALL {
        t.push([
            m.to_string(),
            f3(area.module_area_mm2(m)),
            f3(module_power_mw(m)),
        ]);
    }
    t.push([
        "Total".to_string(),
        f3(area.total_area_mm2()),
        f3(Module::ALL.iter().map(|&m| module_power_mw(m)).sum::<f64>()),
    ]);
    t
}

/// Table IV — system power breakdown (core / memory interface / DRAM).
pub fn table4_power() -> Table {
    let mut t = Table::new(
        "Table IV  System power breakdown at 59.8 GB/s",
        &["component", "power (W)"],
    );
    let cfg = HwConfig::paper_default();
    let p = PowerBreakdown::at_bandwidth(
        1.0,
        cfg.dram_bandwidth_bps,
        cfg.interface_pj_per_bit,
        cfg.dram_pj_per_bit,
    );
    t.push(["Core", f3(p.core_w).as_str()]);
    t.push(["Memory interface", f3(p.interface_w).as_str()]);
    t.push(["DRAM", f3(p.dram_w).as_str()]);
    t.push(["Overall", f3(p.total_w()).as_str()]);
    t
}

// ---------------------------------------------------------------------------
// Cycle-level simulation (sofa-sim)
// ---------------------------------------------------------------------------

/// The task grid the cycle-vs-analytic experiment sweeps: a compute-bound
/// block (moderate parallelism, high keep ratios) and a memory-bound block
/// (high token parallelism, aggressive pruning → KV streaming dominates).
/// Public because the CI regression gate (`check_regression`) re-checks the
/// same grid against a hard tolerance.
pub fn cycle_sim_tasks() -> Vec<AttentionTask> {
    let mut tasks = Vec::new();
    for (t, s, keep, bc) in [
        // Compute-bound: the analytic and cycle-level models must agree.
        (1usize, 1024usize, 0.25f64, 16usize),
        (8, 1024, 0.5, 16),
        (16, 2048, 0.5, 32),
        (32, 2048, 0.5, 16),
        // Memory-bound: high token parallelism, the regime of paper Fig. 3.
        (64, 2048, 0.1, 16),
        (128, 2048, 0.25, 16),
        (128, 4096, 0.1, 16),
        (128, 4096, 0.25, 32),
    ] {
        tasks.push(AttentionTask::new(t, s, 1024, 8, keep, bc));
    }
    tasks
}

/// Experiment — event-driven cycle-level simulation vs the analytic model:
/// end-to-end cycles, agreement, and where the time went.
pub fn sim_cycle_vs_analytic() -> Table {
    let mut t = Table::new(
        "Sim  Cycle-level simulation vs analytic model",
        &[
            "T",
            "S",
            "keep",
            "Bc",
            "bound",
            "analytic kcyc",
            "cycle kcyc",
            "rel err",
            "DRAM stall",
            "bottleneck",
        ],
    );
    let sim = CycleSim::new(HwConfig::paper_default());
    // Each grid point is an independent simulation: fan out across cores
    // and append the rows in grid order (deterministic table content).
    for row in sofa_par::par_map(&cycle_sim_tasks(), |task| {
        let (report, cmp) = sim.validate(task);
        vec![
            task.queries.to_string(),
            task.seq_len.to_string(),
            pct(task.keep_ratio),
            task.tile_size.to_string(),
            if cmp.analytic_memory_bound {
                "memory"
            } else {
                "compute"
            }
            .to_string(),
            format!("{:.1}", cmp.analytic_cycles / 1e3),
            format!("{:.1}", cmp.simulated_cycles / 1e3),
            format!("{:+.1}%", 100.0 * cmp.relative_error),
            pct(cmp.dram_stall_fraction),
            sofa_sim::report::STAGE_NAMES[report.bottleneck_stage()].to_string(),
        ]
    }) {
        t.add_row(row);
    }
    t
}

/// Experiment — per-stage busy/stall breakdown of one compute-bound and one
/// memory-bound configuration (the dynamic detail `max(compute, memory)`
/// cannot express).
pub fn sim_stall_breakdown() -> Table {
    let mut t = Table::new(
        "Sim  Per-stage busy/stall breakdown (cycle-level)",
        &[
            "config",
            "stage",
            "busy kcyc",
            "input stall",
            "output stall",
            "dram stall",
            "util",
        ],
    );
    let sim = CycleSim::new(HwConfig::paper_default());
    let cases = [
        (
            "compute-bound T=8",
            AttentionTask::new(8, 1024, 1024, 8, 0.5, 16),
        ),
        (
            "memory-bound T=128",
            AttentionTask::new(128, 4096, 1024, 8, 0.1, 16),
        ),
    ];
    for (name, task) in cases {
        let report = sim.run(&task);
        for (i, s) in report.stages.iter().enumerate() {
            t.push([
                name.to_string(),
                sofa_sim::report::STAGE_NAMES[i].to_string(),
                format!("{:.1}", s.busy as f64 / 1e3),
                format!("{:.1}", s.stall_input as f64 / 1e3),
                format!("{:.1}", s.stall_output as f64 / 1e3),
                format!("{:.1}", s.stall_dram as f64 / 1e3),
                pct(s.utilization(report.total_cycles)),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Serving experiments (sofa-serve over multi-instance simulation)
// ---------------------------------------------------------------------------

/// The serving workload the scheduling experiments share: a Llama-like layer
/// shape with 70 % decode traffic, sized so a full sweep runs in seconds.
fn serve_trace(num_requests: usize, arrivals_per_mcycle: f64, seed: u64) -> RequestTrace {
    let mut tc = TraceConfig::new(num_requests, arrivals_per_mcycle, seed);
    tc.seq_len = 1024;
    tc.hidden = 1024;
    tc.heads = 8;
    tc.prefill_queries = 32;
    tc.keep_ratio = 0.25;
    RequestTrace::generate(&tc)
}

/// The serving configuration of the experiments: paper-default instances,
/// a single-layer `Bc = 32` deployment point, measured (sparsity-aware)
/// admission footprints, calibrated DRAM command occupancy.
fn serve_config(instances: usize) -> ServeConfig {
    let mut cfg = ServeConfig::new(HwConfig::paper_default(), instances);
    cfg.op = OperatingPoint::single(0.25, 32);
    cfg
}

/// Experiment — request latency percentiles, queueing delay and per-instance
/// utilization of the continuous-batching scheduler across instance counts
/// and offered loads.
pub fn serve_throughput_latency() -> Table {
    let mut t = Table::new(
        "Serve  Continuous batching: latency percentiles vs instances and load",
        &[
            "instances",
            "req/Mcyc offered",
            "p50 kcyc",
            "p95 kcyc",
            "p99 kcyc",
            "queue kcyc",
            "util per inst",
            "req/Mcyc served",
            "uJ/req",
            "total pJ",
        ],
    );
    // The (instances, load) grid points are independent serving simulations:
    // fan out across cores, keep the rows in grid order.
    let grid: Vec<(usize, f64)> = [1usize, 2, 4]
        .iter()
        .flat_map(|&i| [50.0f64, 200.0].iter().map(move |&r| (i, r)))
        .collect();
    for row in sofa_par::par_map(&grid, |&(instances, rate)| {
        let trace = serve_trace(40, rate, 17);
        let report = ServeSim::new(serve_config(instances)).run(&trace);
        let utils: Vec<String> = (0..instances)
            .map(|i| format!("{:.0}%", 100.0 * report.instance_utilization(i)))
            .collect();
        vec![
            instances.to_string(),
            format!("{rate:.0}"),
            format!("{:.1}", report.p50() as f64 / 1e3),
            format!("{:.1}", report.p95() as f64 / 1e3),
            format!("{:.1}", report.p99() as f64 / 1e3),
            format!("{:.1}", report.mean_queueing_delay() / 1e3),
            utils.join("/"),
            format!("{:.1}", report.throughput_per_mcycle()),
            format!("{:.2}", report.energy_pj_per_request() / 1e6),
            format!("{:.0}", report.total_energy_pj()),
        ]
    }) {
        t.add_row(row);
    }
    t
}

/// Experiment — strong scaling of one saturating request stream over 1–4
/// instances sharing the DRAM channel.
pub fn serve_scaling() -> Table {
    let mut t = Table::new(
        "Serve  Strong scaling under a saturating stream (shared DRAM)",
        &[
            "instances",
            "makespan kcyc",
            "speedup",
            "p95 kcyc",
            "mean util",
            "dram util",
            "uJ/req",
            "total pJ",
        ],
    );
    let trace = serve_trace(48, 400.0, 23);
    // Instance counts are independent runs; the speedup column needs the
    // one-instance makespan, so it is derived after the parallel sweep.
    let counts = [1usize, 2, 3, 4];
    let reports = sofa_par::par_map(&counts, |&instances| {
        ServeSim::new(serve_config(instances)).run(&trace)
    });
    let base = reports[0].total_cycles as f64;
    for (instances, report) in counts.iter().zip(reports.iter()) {
        let makespan = report.total_cycles as f64;
        t.push([
            instances.to_string(),
            format!("{:.1}", makespan / 1e3),
            times(base / makespan),
            format!("{:.1}", report.p95() as f64 / 1e3),
            pct(report.mean_utilization()),
            pct(report.multi.dram.utilization(report.total_cycles)),
            format!("{:.2}", report.energy_pj_per_request() / 1e6),
            format!("{:.0}", report.total_energy_pj()),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Parallel execution engine (sofa-par)
// ---------------------------------------------------------------------------

/// Experiment — wall-time scaling of the parallel execution engine:
/// `SofaPipeline::run_batch` over a batch of 8 workloads at 1/2/4/8 worker
/// threads (scoped `sofa_par::with_threads` overrides, the in-process
/// analogue of `SOFA_THREADS`). The `bit-identical` column re-checks the
/// determinism guarantee against the sequential reference on every sweep.
///
/// Wall-times are machine-dependent, so this table is *reported* (the CI
/// bench-smoke job uploads it per PR as `bench-reports/par_scaling.json`)
/// but never gated or snapshotted. Call it from the main thread — inside a
/// parallel region the engine degrades to sequential by design and every
/// speedup would read 1.0x.
pub fn par_scaling() -> Table {
    let mut t = Table::new(
        "Par  run_batch wall-time vs worker threads (batch of 8 workloads)",
        &["threads", "wall ms", "speedup", "bit-identical"],
    );
    let workloads: Vec<AttentionWorkload> = (0..8)
        .map(|i| {
            AttentionWorkload::generate(&ScoreDistribution::bert_like(), 16, 384, 64, 48, 1700 + i)
        })
        .collect();
    let op = OperatingPoint::single(0.25, 16);
    let pipeline = SofaPipeline::new(PipelineConfig::for_layer(&op, 0));
    let reference = sofa_par::with_threads(1, || pipeline.run_batch(&op, &workloads));
    let mut base_ms = None;
    for threads in [1usize, 2, 4, 8] {
        // Best of three sweeps to damp scheduler noise.
        let mut best_ms = f64::INFINITY;
        let mut batch = Vec::new();
        for _ in 0..3 {
            let start = std::time::Instant::now();
            batch = sofa_par::with_threads(threads, || pipeline.run_batch(&op, &workloads));
            best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        }
        let identical = batch.len() == reference.len()
            && batch
                .iter()
                .zip(reference.iter())
                .all(|(a, b)| a.output == b.output && a.mask == b.mask);
        let base = *base_ms.get_or_insert(best_ms);
        t.push([
            threads.to_string(),
            format!("{best_ms:.1}"),
            times(base / best_ms),
            identical.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Hardware-aware DSE (sofa-dse)
// ---------------------------------------------------------------------------

/// The pinned hardware-aware DSE run shared by the `dse_pareto` experiment,
/// the serve A/B and routed-serving studies and the CI regression gate: a
/// 4-layer model at `S = 512` on the paper-default hardware, searched with
/// the default probe grid and all four scalarization profiles.
/// Deterministic and bit-identical at any `SOFA_THREADS`. The search is the
/// dominant cost of every consumer, and several of them run in one process
/// (`all_experiments`, the golden-report tests), so the result is computed
/// once and cloned — callers that need a genuinely fresh run (the gate's
/// determinism check) use [`dse_pareto_report_fresh`].
pub fn dse_pareto_report() -> dse::DseReport {
    static REPORT: std::sync::OnceLock<dse::DseReport> = std::sync::OnceLock::new();
    REPORT.get_or_init(dse_pareto_report_fresh).clone()
}

/// [`dse_pareto_report`] without the process-wide cache: actually runs the
/// search. The CI regression gate calls this twice to verify the search is
/// deterministic — a check the cache would make vacuous.
pub fn dse_pareto_report_fresh() -> dse::DseReport {
    let evaluator = dse::HwAwareEvaluator::new(dse::EvalConfig::quick(0xD5E), 4);
    dse::hardware_aware_search(&evaluator, &dse::DseSearchConfig::quick(0xD5E))
}

/// Experiment — the hardware-aware DSE Pareto front: every non-dominated
/// `(loss, cycles, energy, area)` operating point next to the paper-default
/// configuration, with the balanced-scalarization pick marked `tuned` and
/// the per-class routes marked `route:*`.
pub fn dse_pareto() -> Table {
    dse_pareto_from(&dse_pareto_report())
}

/// [`dse_pareto`] on an already-computed DSE report — the search is the
/// dominant cost, so callers that have one (the spec harness, which shares
/// one report across the table and its gate metrics) should not pay for it
/// again.
pub fn dse_pareto_from(r: &dse::DseReport) -> Table {
    let mut t = Table::new(
        "DSE  Hardware-aware Pareto front (loss / cycles / energy / area)",
        &[
            "config",
            "keeps",
            "tile sizes",
            "loss",
            "kcyc",
            "energy nJ",
            "total pJ",
            "area mm2",
            "vs default",
        ],
    );
    let dominating: Vec<&dse::CandidateEval> = r.dominating();
    let decode_op = r.route(&sofa_model::trace::RequestClass::Decode);
    let prefill_op = r.route(&sofa_model::trace::RequestClass::Prefill);
    let mut push = |label: String, e: &dse::CandidateEval, verdict: &str| {
        let keeps: Vec<String> = e
            .candidate
            .keep_ratios
            .iter()
            .map(|&k| format!("{:.0}", k * 100.0))
            .collect();
        t.push([
            label,
            format!("[{}]%", keeps.join(" ")),
            format!("{:?}", e.candidate.tile_sizes),
            format!("{:.4}", e.metrics.loss),
            format!("{:.1}", e.metrics.cycles as f64 / 1e3),
            f3(e.metrics.energy_pj / 1e3),
            format!("{:.0}", e.metrics.energy_pj),
            f3(e.metrics.area_mm2),
            verdict.to_string(),
        ]);
    };
    push("paper-default".to_string(), &r.paper_default, "baseline");
    for (i, e) in r.pareto.points().iter().enumerate() {
        let mut marks = Vec::new();
        if *e == r.best {
            marks.push("tuned");
        }
        if e.candidate.operating_point() == decode_op {
            marks.push("route:decode");
        }
        if e.candidate.operating_point() == prefill_op {
            marks.push("route:prefill");
        }
        let label = if marks.is_empty() {
            format!("pareto-{i}")
        } else {
            format!("pareto-{i} ({})", marks.join(" "))
        };
        let verdict = if dominating.contains(&e) {
            "dominates"
        } else if *e == r.paper_default {
            "baseline"
        } else {
            "trade-off"
        };
        push(label, e, verdict);
    }
    t
}

/// The serving configuration of the DSE-coupled experiments: two instances
/// under the timing model the tuner optimised against (per-tile control
/// overhead on top of the calibrated DRAM command occupancy
/// [`ServeConfig::new`] already enables).
fn dse_serve_config() -> ServeConfig {
    let mut cfg = serve_config(2);
    cfg.sim.min_tile_cycles = dse::eval::TILE_CONTROL_CYCLES;
    cfg
}

/// One serving report rendered as an operating-point comparison row.
fn serve_row(name: &str, op: &OperatingPoint, r: &ServeReport) -> Vec<String> {
    vec![
        name.to_string(),
        op.to_string(),
        format!("{:.1}", r.p50() as f64 / 1e3),
        format!("{:.1}", r.p95() as f64 / 1e3),
        format!("{:.1}", r.p99() as f64 / 1e3),
        format!("{:.1}", r.total_cycles as f64 / 1e3),
        format!("{:.1}", r.throughput_per_mcycle()),
        format!("{:.2}", r.energy_pj_per_request() / 1e6),
        format!("{:.0}", r.total_energy_pj()),
        r.rerouted_requests().to_string(),
        r.shed.len().to_string(),
    ]
}

const SERVE_OP_HEADERS: [&str; 11] = [
    "config",
    "operating point",
    "p50 kcyc",
    "p95 kcyc",
    "p99 kcyc",
    "makespan kcyc",
    "req/Mcyc",
    "uJ/req",
    "total pJ",
    "rerouted",
    "shed",
];

/// Experiment — the DSE loop closed end to end: the same serving trace run
/// at the paper-default operating point and at the tuned point the
/// hardware-aware search recommends, side by side.
pub fn dse_serve_ab() -> Table {
    dse_serve_ab_from(&dse_pareto_report())
}

/// [`dse_serve_ab`] on an already-computed DSE report (same rationale as
/// [`dse_pareto_from`]).
pub fn dse_serve_ab_from(report: &dse::DseReport) -> Table {
    let mut t = Table::new(
        "DSE  Serving A/B: paper-default vs DSE-tuned operating point",
        &SERVE_OP_HEADERS,
    );
    let trace = serve_trace(32, 150.0, 29);
    let cmp = ServeSim::new(dse_serve_config()).run_ab(&trace, report);
    let default_op = OperatingPoint::paper_default(cmp.tuned_op.layers());
    t.add_row(serve_row("paper-default", &default_op, &cmp.baseline));
    t.add_row(serve_row("dse-tuned", &cmp.tuned_op, &cmp.tuned));
    t
}

/// The pinned routed-serving study shared by the `serve_routed` experiment,
/// its golden snapshot and CI regression gate 4: the mixed prefill/decode
/// trace of the A/B experiment served at the paper-default point, the single
/// tuned point, per-request Pareto routing, and Pareto routing under a
/// ¾-of-default energy budget. Deterministic and bit-identical at any
/// `SOFA_THREADS`.
pub fn serve_routed_study() -> RoutedServeStudy {
    serve_routed_study_from(&dse_pareto_report())
}

/// [`serve_routed_study`] on an already-computed DSE report — the search is
/// the dominant cost, so callers that have one (the CI regression gate runs
/// it for gate 3) should not pay for it again.
pub fn serve_routed_study_from(report: &dse::DseReport) -> RoutedServeStudy {
    let trace = serve_trace(32, 150.0, 29);
    ServeSim::new(dse_serve_config()).run_routed_study(&trace, report)
}

/// Experiment — per-request operating points: paper-default vs single-point
/// tuned vs Pareto-routed (latency-lean decodes, energy-lean prefills) vs
/// budget-constrained routing, on the same mixed trace. The routed row must
/// strictly dominate the paper default on (p95, J/req) — CI gate 4.
pub fn serve_routed() -> Table {
    serve_routed_table(&serve_routed_study())
}

/// Renders an already-computed routed-serving study as the `serve_routed`
/// table — the spec harness computes the study once and derives both the
/// table and the gate metrics from it.
pub fn serve_routed_table(study: &RoutedServeStudy) -> Table {
    let mut t = Table::new(
        "Serve  Routed operating points: default vs tuned vs Pareto-routed",
        &SERVE_OP_HEADERS,
    );
    let default_op = OperatingPoint::paper_default(study.tuned_op.layers());
    t.add_row(serve_row(
        "paper-default",
        &default_op,
        &study.paper_default,
    ));
    t.add_row(serve_row("dse-tuned", &study.tuned_op, &study.tuned));
    // The routed rows show the decode route (the majority class); the
    // prefill route is in the dse_pareto table's route:prefill mark.
    t.add_row(serve_row("pareto-routed", &study.decode_op, &study.routed));
    t.add_row(serve_row(
        "routed+budget",
        &study.decode_op,
        &study.budgeted,
    ));
    t
}

/// The overload trace of the adaptive study: the routed study's request
/// shape at a hard-overload arrival rate, so static budgeted routing queues
/// deeply and sheds — the regime the closed-loop controller exists for.
fn serve_adaptive_trace() -> RequestTrace {
    serve_trace(40, 400.0, 41)
}

/// The serving configuration of the adaptive study: the DSE-coupled config
/// with a 32 KiB admission buffer, so the overload trace queues at the
/// scheduler (where the controller can act on waiting requests) instead of
/// admitting everything instantly and merely sharing DRAM.
fn serve_adaptive_config() -> ServeConfig {
    let mut cfg = dse_serve_config();
    cfg.admit_buffer_bytes = 32 * 1024;
    cfg
}

/// The pinned controller of the adaptive study (shared by the experiment,
/// its golden snapshot and CI regression gate 7): decay at 300k cycles
/// (one decode service time at the routed point), client retries shrinking
/// keep 4× per attempt on a 300k-cycle backoff, feedback targeting a
/// 500k-cycle completion latency with a queue bar of 4.
pub fn serve_adaptive_controller() -> AdaptiveServeConfig {
    AdaptiveServeConfig {
        decay_threshold: 300_000,
        retry: RetryPolicy {
            backoff_cycles: 3_000_000,
            max_retries: 2,
            keep_factor: 0.1,
        },
        feedback: FeedbackConfig {
            target_latency_cycles: 500_000,
            alpha: 0.25,
            queue_depth_bar: 4,
            energy_bar_pj: None,
        },
        instance_energy_budget_pj: None,
    }
}

/// The pinned adaptive-serving study shared by the `serve_adaptive`
/// experiment, its golden snapshot and CI regression gate 7: the overload
/// trace under static budgeted Pareto routing vs the closed-loop controller
/// (decay + measured-state feedback + shed/retry). Deterministic and
/// bit-identical at any `SOFA_THREADS`.
pub fn serve_adaptive_study() -> AdaptiveServeStudy {
    serve_adaptive_study_from(&dse_pareto_report())
}

/// [`serve_adaptive_study`] on an already-computed DSE report — the search
/// is the dominant cost, so the CI regression gate reuses gate 3's report.
pub fn serve_adaptive_study_from(report: &dse::DseReport) -> AdaptiveServeStudy {
    ServeSim::new(serve_adaptive_config()).run_adaptive_study(
        &serve_adaptive_trace(),
        report,
        &serve_adaptive_controller(),
    )
}

const SERVE_ADAPTIVE_HEADERS: [&str; 13] = [
    "config",
    "operating point",
    "p50 kcyc",
    "p95 kcyc",
    "p99 kcyc",
    "makespan kcyc",
    "req/Mcyc",
    "uJ/req",
    "total pJ",
    "rerouted",
    "shed",
    "decayed",
    "retried",
];

/// Experiment — closing the control loop: the same overload trace under
/// static budgeted Pareto routing and under the adaptive controller (live
/// decay of over-waited requests, measured-state feedback routing,
/// client-side shed/retry). The adaptive row must strictly dominate the
/// static row on (p95, shed) within 5% of its J/req — CI gate 7.
pub fn serve_adaptive() -> Table {
    let report = dse_pareto_report();
    let decode_op = report.route(&sofa_model::trace::RequestClass::Decode);
    serve_adaptive_table(&serve_adaptive_study_from(&report), &decode_op)
}

/// Renders an already-computed adaptive-serving study as the
/// `serve_adaptive` table (`decode_op` labels the operating-point column —
/// the study itself routes per request).
pub fn serve_adaptive_table(study: &AdaptiveServeStudy, decode_op: &OperatingPoint) -> Table {
    let mut t = Table::new(
        "Serve  Adaptive control loop: static Pareto routing vs measured-state routing",
        &SERVE_ADAPTIVE_HEADERS,
    );
    let mut static_row = serve_row("static-routed", decode_op, &study.static_routed);
    static_row.push(study.static_routed.decayed_requests().to_string());
    static_row.push(study.static_routed.retried_served().to_string());
    t.add_row(static_row);
    let mut adaptive_row = serve_row("adaptive", decode_op, &study.adaptive);
    adaptive_row.push(study.adaptive.decayed_requests().to_string());
    adaptive_row.push(study.adaptive.retried_served().to_string());
    t.add_row(adaptive_row);
    t
}

// ---------------------------------------------------------------------------
// Fleet-scale sharded serving (sofa-serve::fleet over sofa-sim::fleet)
// ---------------------------------------------------------------------------

/// The fleet serving workload: a lighter per-request shape than the
/// single-node experiments (512-token context on a 512-wide model, served
/// at `Bc = 64` — 8 context tiles per request) so million-request traces
/// stay tractable in the CI smoke job.
fn fleet_trace(num_requests: usize, arrivals_per_mcycle: f64, seed: u64) -> RequestTrace {
    let mut tc = TraceConfig::new(num_requests, arrivals_per_mcycle, seed);
    tc.seq_len = 512;
    tc.hidden = 512;
    tc.heads = 8;
    tc.prefill_queries = 32;
    tc.keep_ratio = 0.25;
    RequestTrace::generate(&tc)
}

/// The fleet configuration of the experiments: paper-default nodes, a
/// single-layer `Bc = 64` deployment point matched to `fleet_trace`'s
/// request shape, and the fleet defaults (calendar event queue, 64Ki-cycle
/// epochs, default fabric).
pub fn fleet_config(nodes: usize, instances_per_node: usize) -> FleetConfig {
    let mut cfg = FleetConfig::new(HwConfig::paper_default(), nodes, instances_per_node);
    cfg.serve.op = OperatingPoint::single(0.25, 64);
    cfg
}

const FLEET_HEADERS: [&str; 11] = [
    "config",
    "served",
    "shed",
    "p50 kcyc",
    "p95 kcyc",
    "p99 kcyc",
    "queue kcyc",
    "req/Mcyc",
    "mean util",
    "fabric MB",
    "uJ/req",
];

/// One fleet serving run rendered as a table row.
fn fleet_row(label: &str, report: &FleetReport) -> Vec<String> {
    vec![
        label.to_string(),
        report.served.to_string(),
        report.shed.to_string(),
        format!("{:.1}", report.p50() as f64 / 1e3),
        format!("{:.1}", report.p95() as f64 / 1e3),
        format!("{:.1}", report.p99() as f64 / 1e3),
        format!("{:.1}", report.mean_queueing_delay() / 1e3),
        format!("{:.1}", report.throughput_per_mcycle()),
        pct(report.mean_utilization()),
        format!("{:.1}", report.fabric.total_bytes() as f64 / 1e6),
        format!("{:.2}", report.energy_pj_per_request() / 1e6),
    ]
}

/// Experiment — sharded serving across node counts: the same mixed trace
/// placed least-booked over 1, 2 and 4 nodes of two instances each, plus a
/// 4-node run with prefill/decode disaggregation. This is the pinned
/// scenario behind the `serve_fleet` golden snapshot and CI regression
/// gate 6.
pub fn serve_fleet() -> Table {
    let mut t = Table::new(
        "Fleet  Sharded serving: least-booked placement across nodes",
        &FLEET_HEADERS,
    );
    let trace = fleet_trace(96, 400.0, 31);
    let grid = [(1usize, false), (2, false), (4, false), (4, true)];
    for row in sofa_par::par_map(&grid, |&(nodes, disaggregate)| {
        let mut cfg = fleet_config(nodes, 2);
        cfg.disaggregate = disaggregate;
        let report = FleetServeSim::new(cfg).run(&trace, OpRouter::TraceNative);
        let label = format!("{nodes}x2{}", if disaggregate { " disagg" } else { "" });
        fleet_row(&label, &report)
    }) {
        t.add_row(row);
    }
    t
}

/// One fleet run at explicit scale — the entry point of the `serve_fleet`
/// binary's `--requests/--nodes/--instances-per-node/--rate` mode, sized by
/// CI up to a million requests on 64 simulated instances. Deterministic and
/// bit-identical at any `SOFA_THREADS`, which CI checks by byte-comparing
/// the JSON artifact across thread counts.
pub fn serve_fleet_scaled(
    requests: usize,
    rate: f64,
    nodes: usize,
    instances_per_node: usize,
    disaggregate: bool,
) -> Table {
    let mut t = Table::new("Fleet  Sharded serving at scale", &FLEET_HEADERS);
    let trace = fleet_trace(requests, rate, 31);
    let mut cfg = fleet_config(nodes, instances_per_node);
    cfg.disaggregate = disaggregate;
    let report = FleetServeSim::new(cfg).run(&trace, OpRouter::TraceNative);
    let label = format!(
        "{requests}req {nodes}x{instances_per_node}{}",
        if disaggregate { " disagg" } else { "" }
    );
    t.add_row(fleet_row(&label, &report));
    t
}

/// The 1-node × 1-instance consistency pair behind CI regression gate 6:
/// the same small trace served by the fleet path (zero-latency fabric, so
/// only the epoch quantization and link serialization differ) and by the
/// single-node scheduler. Their p95 must stay within tolerance.
pub fn serve_fleet_consistency() -> (FleetReport, ServeReport) {
    let trace = fleet_trace(32, 100.0, 31);
    let mut cfg = fleet_config(1, 1);
    cfg.fabric.latency_cycles = 0;
    // A fine epoch keeps admission-quantization drift well below the gate
    // tolerance: the fleet admits at epoch boundaries only, so the default
    // 65 kcycle epoch would add up to one epoch of queueing per request on
    // a ~340 kcycle trace.
    cfg.epoch_cycles = 4096;
    let single = ServeSim::new(cfg.serve.clone()).run(&trace);
    let fleet = FleetServeSim::new(cfg).run(&trace, OpRouter::TraceNative);
    (fleet, single)
}

// ---------------------------------------------------------------------------
// Observability (sofa-obs)
// ---------------------------------------------------------------------------

/// The pinned observability run shared by the `serve_trace` binary, its
/// golden trace and CI regression gate 5: the routed-serving trace of
/// [`serve_routed_study`] served under a ¾-of-default per-request energy
/// budget (so reroute *and* shed instants appear in the trace), traced end
/// to end in simulated cycles, with the algorithm-layer (`core.*`) and DSE
/// (`dse.*`) counters folded into the same metrics registry. Deterministic
/// and byte-identical at any `SOFA_THREADS`.
pub fn serve_trace_observed() -> (
    ServeReport,
    sofa_obs::TraceRecorder,
    sofa_obs::MetricsRegistry,
) {
    let report = dse_pareto_report();
    let trace = serve_trace(32, 150.0, 29);
    let sim = ServeSim::new(dse_serve_config());
    let tuned_op = report.tuned_operating_point();
    let default_op = OperatingPoint::paper_default(tuned_op.layers());
    // The budget mirrors run_routed_study's budgeted arm: ¾ of what the
    // paper-default point spends per request on this trace.
    let baseline = sim.run_tuned(&trace, &default_op);
    let mut cfg = dse_serve_config();
    cfg.energy_budget_pj_per_req = Some(0.75 * baseline.energy_pj_per_request());
    let mut obs = sofa_obs::TraceRecorder::enabled();
    let mut metrics = sofa_obs::MetricsRegistry::new();
    let served = ServeSim::new(cfg).run_traced(
        &trace,
        sofa_serve::OpRouter::Pareto(&report.pareto),
        &mut obs,
        &mut metrics,
    );

    // Algorithm-layer evidence: one pipeline run at the tuned point's first
    // layer feeds the arithmetic-complexity and tile-selection metrics.
    let pipeline = SofaPipeline::new(PipelineConfig::for_layer(&tuned_op, 0));
    let result = pipeline.run(&small_workload(0xB5));
    result.total_ops().record_metrics(&mut metrics, "core.ops");
    result
        .tile_selection_stats(tuned_op.tile(0))
        .record_metrics(&mut metrics, "core.selection");

    // DSE-layer evidence: evaluate the paper default and the tuned
    // candidate once with a fresh evaluator, then export its counters.
    let evaluator = dse::HwAwareEvaluator::new(dse::EvalConfig::quick(0xD5E), tuned_op.layers());
    let _ = evaluator.evaluate(&report.space.paper_default_candidate());
    let _ = evaluator.evaluate(&report.best.candidate);
    evaluator.record_metrics(&mut metrics);

    (served, obs, metrics)
}

// ---------------------------------------------------------------------------
// Wall-time perf trajectory (BENCH_perf)
// ---------------------------------------------------------------------------

/// Best-of-`runs` wall seconds of `f`, with the last run's result.
///
/// # Panics
///
/// Panics if `runs == 0`.
fn best_wall_seconds<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(runs > 0, "need at least one timed run");
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..runs {
        let start = std::time::Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(out);
    }
    (best, result.expect("runs > 0"))
}

/// Experiment — wall time and lowering-cache effectiveness of the
/// single-node serving scheduler on the pinned routed and adaptive traces
/// (best of 3 runs each). The reports are bit-identical to the cached
/// studies' — [`ServeSim::run_with_cache_stats`] rides the counters outside
/// the report — so only the wall columns are host-dependent.
///
/// Exports the hard gate inputs of the `perf_lowering` spec:
/// `routed_hit_rate` / `adaptive_hit_rate` must stay above
/// `hit_rate_floor` (the traces draw from a small set of benchmark-derived
/// shapes, so most lowerings must be cache hits), while `wall_seconds` is
/// only held to a generous `wall_time_budget` so slow CI machines don't
/// flake.
pub fn perf_lowering() -> crate::ExperimentOutput {
    let report = dse_pareto_report();
    let controller = serve_adaptive_controller();
    let mut t = Table::new(
        "Perf  Serving lowering cache: wall time + hit rate (best of 3)",
        &["scenario", "wall ms", "hits", "misses", "hit rate"],
    );
    let mut out = crate::ExperimentOutput::default();
    let mut total_wall = 0.0;
    for (name, cfg, trace, router) in [
        (
            "routed",
            dse_serve_config(),
            serve_trace(32, 150.0, 29),
            OpRouter::Pareto(&report.pareto),
        ),
        (
            "adaptive",
            serve_adaptive_config(),
            serve_adaptive_trace(),
            OpRouter::Feedback(&report.pareto, &controller.feedback),
        ),
    ] {
        let sim = ServeSim::new(cfg);
        let (wall, (_, stats)) = best_wall_seconds(3, || sim.run_with_cache_stats(&trace, router));
        total_wall += wall;
        t.push([
            name.to_string(),
            format!("{:.1}", wall * 1e3),
            stats.hits.to_string(),
            stats.misses.to_string(),
            format!("{:.1}%", 100.0 * stats.hit_rate()),
        ]);
        out = out.with_scalar(&format!("{name}_hit_rate"), stats.hit_rate());
    }
    out.tables.push(t);
    out.with_scalar("hit_rate_floor", 0.5)
        .with_scalar("wall_seconds", total_wall)
}

/// Experiment — wall time of the 1M-request fleet scenario (the
/// `serve_fleet_mega` workload: 8 nodes × 8 instances), with the per-node
/// lowering-cache counters. One timed run — the scenario takes seconds and
/// CI already re-runs it for the thread-identity gate.
///
/// `hit_rate` is the hard gate input (a million requests draw from a small
/// shape set, so per-node lowering must be almost entirely cache hits);
/// the wall budget is generous and advisory.
pub fn perf_fleet_mega() -> crate::ExperimentOutput {
    let trace = fleet_trace(1_000_000, 400.0, 31);
    let cfg = fleet_config(8, 8);
    let sim = FleetServeSim::new(cfg);
    let (wall, (report, stats)) = best_wall_seconds(1, || {
        sim.run_with_cache_stats(&trace, OpRouter::TraceNative)
    });
    let mut t = Table::new(
        "Perf  Fleet 1M-request wall time + per-node lowering-cache hit rate",
        &["config", "served", "wall s", "hits", "misses", "hit rate"],
    );
    t.push([
        "1000000req 8x8".to_string(),
        report.served.to_string(),
        format!("{wall:.2}"),
        stats.hits.to_string(),
        stats.misses.to_string(),
        format!("{:.1}%", 100.0 * stats.hit_rate()),
    ]);
    crate::ExperimentOutput::of_tables(vec![t])
        .with_scalar("served", report.served as f64)
        .with_scalar("hit_rate", stats.hit_rate())
        .with_scalar("hit_rate_floor", 0.5)
        .with_scalar("wall_seconds", wall)
}

/// Experiment — wall time of one fresh hardware-aware DSE search (the
/// `dse_pareto_fresh` workload) plus its candidate-dedup counters. The
/// search's guided proposals are mostly distinct, so `evals_saved` is small
/// by design — the gate only requires the dedup to be live (> 0 on this
/// pinned seed) and the wall time to stay under a generous budget.
pub fn perf_dse() -> crate::ExperimentOutput {
    let (wall, report) = best_wall_seconds(1, dse_pareto_report_fresh);
    let proposals = report.evaluations + report.evals_saved;
    let mut t = Table::new(
        "Perf  Fresh DSE search wall time + candidate-dedup rate",
        &[
            "search",
            "wall s",
            "proposals",
            "evaluated",
            "saved",
            "dedup rate",
        ],
    );
    t.push([
        "quick(0xD5E)".to_string(),
        format!("{wall:.2}"),
        proposals.to_string(),
        report.evaluations.to_string(),
        report.evals_saved.to_string(),
        format!(
            "{:.1}%",
            100.0 * report.evals_saved as f64 / proposals as f64
        ),
    ]);
    crate::ExperimentOutput::of_tables(vec![t])
        .with_scalar("evaluations", report.evaluations as f64)
        .with_scalar("evals_saved", report.evals_saved as f64)
        .with_scalar("wall_seconds", wall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_produces_rows() {
        let tables = [
            fig01_breakdown(),
            fig04_oi(),
            fig08_distribution(),
            table1_summary(),
            table2_comparison(),
            table3_area_power(),
            table4_power(),
            fig21_gain_breakdown(),
        ];
        for t in tables {
            assert!(!t.rows.is_empty(), "{} has no rows", t.title);
            assert!(!t.render().is_empty());
        }
    }

    #[test]
    fn fig17_reduction_increases_down_the_ablation() {
        let t = fig17_complexity_ablation();
        // The "reduction" column (index 2) must be non-decreasing.
        let parse = |s: &str| s.trim_end_matches('%').parse::<f64>().unwrap();
        let reductions: Vec<f64> = t.rows.iter().map(|r| parse(&r[2])).collect();
        assert_eq!(reductions[0], 0.0);
        assert!(reductions.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        assert!(*reductions.last().unwrap() > 10.0, "SOFA should save >10%");
    }

    #[test]
    fn fig20_memory_reduction_is_substantial() {
        let t = fig20_memory_energy();
        let full_row = t
            .rows
            .iter()
            .find(|r| r[0].contains("tiled dataflow"))
            .unwrap();
        let v: f64 = full_row[1].trim_end_matches('%').parse().unwrap();
        assert!(
            v < 60.0,
            "full SOFA should cut memory access below 60%: {v}"
        );
    }

    #[test]
    fn cycle_sim_agrees_when_compute_bound_and_stalls_when_memory_bound() {
        let sim = CycleSim::new(HwConfig::paper_default());
        for task in cycle_sim_tasks() {
            let (_, cmp) = sim.validate(&task);
            if cmp.analytic_memory_bound {
                assert!(
                    cmp.dram_stall_fraction > 0.0,
                    "memory-bound T={} S={} must report DRAM stalls",
                    task.queries,
                    task.seq_len
                );
            } else {
                assert!(
                    cmp.agrees_within(0.15),
                    "compute-bound T={} S={} diverged: {:+.1}%",
                    task.queries,
                    task.seq_len,
                    100.0 * cmp.relative_error
                );
            }
        }
    }

    #[test]
    fn sim_tables_have_expected_shape() {
        let t = sim_cycle_vs_analytic();
        assert_eq!(t.rows.len(), cycle_sim_tasks().len());
        assert!(t.rows.iter().any(|r| r[4] == "memory"));
        assert!(t.rows.iter().any(|r| r[4] == "compute"));
        let b = sim_stall_breakdown();
        assert_eq!(b.rows.len(), 8, "two configs x four stages");
        assert!(!b.render().is_empty());
    }

    #[test]
    fn serve_latency_percentiles_are_ordered_and_cover_two_instance_counts() {
        let t = serve_throughput_latency();
        assert_eq!(t.rows.len(), 6, "three instance counts x two loads");
        let parse = |s: &str| s.parse::<f64>().unwrap();
        let mut counts = std::collections::HashSet::new();
        for r in &t.rows {
            counts.insert(r[0].clone());
            let (p50, p95, p99) = (parse(&r[2]), parse(&r[3]), parse(&r[4]));
            assert!(p50 <= p95 && p95 <= p99, "percentiles out of order: {r:?}");
            assert!(
                r[6].matches('%').count() == r[0].parse::<usize>().unwrap(),
                "one utilization figure per instance: {r:?}"
            );
        }
        assert!(counts.len() >= 2, "at least two instance counts");
    }

    #[test]
    fn serve_scaling_improves_until_the_dram_roofline() {
        let t = serve_scaling();
        assert_eq!(t.rows.len(), 4);
        let parse_x = |s: &str| s.trim_end_matches('x').parse::<f64>().unwrap();
        assert_eq!(parse_x(&t.rows[0][2]), 1.0);
        // Every multi-instance configuration beats the single instance, and
        // the best one by a clear margin — scaling then flattens because the
        // shared DRAM channel saturates, which the dram-util column shows.
        let speedups: Vec<f64> = t.rows.iter().map(|r| parse_x(&r[2])).collect();
        assert!(
            speedups[1..].iter().all(|&s| s > 1.05),
            "adding instances must help: {speedups:?}"
        );
        let best = speedups.iter().cloned().fold(0.0, f64::max);
        assert!(best > 1.15, "best speedup too small: {best}");
        let dram_util =
            |row: &[String]| -> f64 { row[5].trim_end_matches('%').parse::<f64>().unwrap() };
        assert!(
            dram_util(&t.rows[3]) > dram_util(&t.rows[0]),
            "the shared channel must be busier with more instances"
        );
    }

    #[test]
    fn par_scaling_is_bit_identical_at_every_thread_count() {
        // The timing columns are machine-dependent; the shape and the
        // determinism re-check are not.
        let t = par_scaling();
        assert_eq!(t.rows.len(), 4, "one row per thread count");
        assert_eq!(t.rows[0][2], "1.00x", "single thread is the baseline");
        for r in &t.rows {
            assert_eq!(r[3], "true", "threads={} diverged from sequential", r[0]);
        }
    }

    #[test]
    fn dse_pareto_front_dominates_the_paper_default() {
        let r = dse_pareto_report();
        assert!(!r.pareto.is_empty(), "Pareto front must not be empty");
        assert!(
            !r.dominating().is_empty(),
            "at least one tuned config must strictly dominate the paper \
             default on (cycles, energy) at equal-or-better loss"
        );
        let t = dse_pareto();
        assert_eq!(
            t.rows.len(),
            r.pareto.len() + 1,
            "one row per point + default"
        );
        assert_eq!(t.rows[0][0], "paper-default");
        assert!(t.rows.iter().any(|row| row[8] == "dominates"));
        assert!(t.rows.iter().any(|row| row[0].contains("tuned")));
        // Both per-class routes are marked on the front.
        assert!(t.rows.iter().any(|row| row[0].contains("route:decode")));
        assert!(t.rows.iter().any(|row| row[0].contains("route:prefill")));
    }

    #[test]
    fn dse_serve_ab_reports_both_operating_points() {
        let t = dse_serve_ab();
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "paper-default");
        assert_eq!(t.rows[1][0], "dse-tuned");
        let parse = |s: &str| s.parse::<f64>().unwrap();
        for r in &t.rows {
            let (p50, p95, p99) = (parse(&r[2]), parse(&r[3]), parse(&r[4]));
            assert!(p50 <= p95 && p95 <= p99, "percentiles out of order: {r:?}");
            assert!(parse(&r[7]) > 0.0, "J/req column must be populated: {r:?}");
        }
    }

    #[test]
    fn serve_routed_strictly_dominates_the_paper_default() {
        // The acceptance bar of this PR: per-request Pareto routing beats
        // the paper-default operating point on both axes of (p95, J/req) and
        // does not regress tail latency against the single tuned point.
        let study = serve_routed_study();
        assert!(
            study.routed_dominates_default(),
            "routed (p95 {}, {:.2} uJ/req) must strictly dominate the paper \
             default (p95 {}, {:.2} uJ/req)",
            study.routed.p95(),
            study.routed.energy_pj_per_request() / 1e6,
            study.paper_default.p95(),
            study.paper_default.energy_pj_per_request() / 1e6,
        );
        assert!(
            study.routed.p95() <= study.tuned.p95(),
            "routing must not regress p95 vs the single tuned point: {} vs {}",
            study.routed.p95(),
            study.tuned.p95(),
        );
        let t = serve_routed();
        assert_eq!(t.rows.len(), 4, "default, tuned, routed, budgeted");
        assert_eq!(t.rows[2][0], "pareto-routed");
        // The budgeted run demonstrates the energy path: every request is
        // either served or shed, and the budget bounds served J/req.
        let served = study.budgeted.records.len();
        let shed = study.budgeted.shed.len();
        assert_eq!(served + shed, 32, "whole trace accounted for");
        for r in &study.budgeted.records {
            assert!(r.energy_pj <= study.budget_pj);
        }
    }

    #[test]
    fn serve_adaptive_strictly_dominates_static_routing() {
        // The acceptance bar of this PR (CI gate 7): on the overload trace
        // the closed-loop controller must strictly beat static budgeted
        // Pareto routing on (p95, shed) while staying within 5% of its
        // J/req — and actually exercise every mechanism it ships.
        let study = serve_adaptive_study();
        assert!(
            study.adaptive_dominates_static(),
            "adaptive (p95 {}, shed {}, {:.2} uJ/req) must dominate static \
             routing (p95 {}, shed {}, {:.2} uJ/req)",
            study.adaptive.p95(),
            study.adaptive.shed.len(),
            study.adaptive.energy_pj_per_request() / 1e6,
            study.static_routed.p95(),
            study.static_routed.shed.len(),
            study.static_routed.energy_pj_per_request() / 1e6,
        );
        assert!(study.adaptive.p95() < study.static_routed.p95());
        assert!(
            !study.static_routed.shed.is_empty(),
            "the overload trace must shed under static routing"
        );
        assert_eq!(
            study.adaptive.shed.len(),
            0,
            "every shed request retries back in"
        );
        assert!(study.adaptive.decayed_requests() > 0, "decay must engage");
        assert!(study.adaptive.retried > 0, "retry must engage");
        assert!(
            study.adaptive.rerouted_requests() > study.static_routed.rerouted_requests(),
            "feedback must re-route beyond the budget reroutes"
        );
        let t = serve_adaptive();
        assert_eq!(t.rows.len(), 2, "static and adaptive rows");
        assert_eq!(t.rows[0][0], "static-routed");
        assert_eq!(t.rows[1][0], "adaptive");
    }

    #[test]
    fn fig19_sofa_beats_gpu_software() {
        let t = fig19_throughput();
        let geo = t.rows.last().unwrap();
        let parse = |s: &str| s.trim_end_matches('x').parse::<f64>().unwrap();
        let lp_fa2 = parse(&geo[3]);
        let sofa_2 = parse(&geo[6]);
        assert!(sofa_2 > 2.0 * lp_fa2);
        assert!(sofa_2 > 8.0 && sofa_2 < 12.0, "geomean {sofa_2}");
    }
}
