//! Criterion bench: SADS distributed sorting vs whole-row exact top-k
//! (supports the top-k stage of paper Fig. 17 and the latency claims of §IV-C).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sofa_core::ops::OpCounts;
use sofa_core::sads::{sads_topk, SadsConfig};
use sofa_core::topk::topk_exact;
use sofa_model::{ScoreDistribution, ScoreWorkload};
use std::time::Duration;

fn bench_sorting(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_sorting");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for s in [1024usize, 4096] {
        let w = ScoreWorkload::generate(&ScoreDistribution::llama_like(), 16, s, 3);
        let k = s / 5;
        group.bench_with_input(BenchmarkId::new("sads_n16", s), &s, |b, _| {
            let cfg = SadsConfig::new(16, 0.5, 2).unwrap();
            b.iter(|| std::hint::black_box(sads_topk(&w.scores, k, &cfg)))
        });
        group.bench_with_input(BenchmarkId::new("full_sort", s), &s, |b, _| {
            b.iter(|| {
                let mut ops = OpCounts::new();
                std::hint::black_box(topk_exact(&w.scores, k, &mut ops))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sorting);
criterion_main!(benches);
