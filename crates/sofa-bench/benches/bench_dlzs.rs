//! Criterion bench: DLZS prediction vs the 4-bit multiply and vanilla-LZ
//! baselines (supports paper Fig. 17's pre-compute stage ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sofa_core::dlzs::{
    predict_scores_int4, predict_scores_vanilla_lz, DlzsPredictor, PredictionStats,
};
use sofa_model::{AttentionWorkload, ScoreDistribution};
use std::time::Duration;

fn bench_prediction(c: &mut Criterion) {
    let mut group = c.benchmark_group("prediction");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for s in [128usize, 256] {
        let w = AttentionWorkload::generate(&ScoreDistribution::bert_like(), 8, s, 64, 32, 1);
        let predictor = DlzsPredictor::prepare(&w.wk);
        group.bench_with_input(BenchmarkId::new("dlzs", s), &s, |b, _| {
            b.iter(|| std::hint::black_box(predictor.predict(&w.x, &w.q)))
        });
        group.bench_with_input(BenchmarkId::new("int4_mul", s), &s, |b, _| {
            b.iter(|| {
                let mut st = PredictionStats::default();
                std::hint::black_box(predict_scores_int4(&w.x, &w.wk, &w.q, &mut st))
            })
        });
        group.bench_with_input(BenchmarkId::new("vanilla_lz", s), &s, |b, _| {
            b.iter(|| {
                let mut st = PredictionStats::default();
                std::hint::black_box(predict_scores_vanilla_lz(&w.x, &w.wk, &w.q, &mut st))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
