//! Criterion bench: end-to-end pipeline and accelerator simulation throughput
//! (supports paper Figs. 19/20 and the Table II latency methodology).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sofa_core::pipeline::{PipelineConfig, SofaPipeline};
use sofa_hw::accel::{AttentionTask, SofaAccelerator, WholeRowAccelerator};
use sofa_hw::config::HwConfig;
use sofa_model::{AttentionWorkload, ScoreDistribution};
use std::time::Duration;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("sofa_pipeline");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for s in [128usize, 256] {
        let w = AttentionWorkload::generate(&ScoreDistribution::bert_like(), 8, s, 64, 32, 5);
        group.bench_with_input(BenchmarkId::new("sofa_full", s), &s, |b, _| {
            let p = SofaPipeline::new(PipelineConfig::new(0.25, 16).unwrap());
            b.iter(|| std::hint::black_box(p.run(&w)))
        });
        group.bench_with_input(BenchmarkId::new("baseline", s), &s, |b, _| {
            let p = SofaPipeline::new(PipelineConfig::baseline(0.25, 16).unwrap());
            b.iter(|| std::hint::black_box(p.run(&w)))
        });
    }
    group.finish();
}

fn bench_accelerator_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("accelerator_model");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    let cfg = HwConfig::paper_default();
    let task = AttentionTask::new(128, 4096, 4096, 32, 0.2, 16);
    group.bench_function("sofa_simulate", |b| {
        let accel = SofaAccelerator::new(cfg);
        b.iter(|| std::hint::black_box(accel.simulate(&task)))
    });
    group.bench_function("whole_row_simulate", |b| {
        let accel = WholeRowAccelerator::new(cfg);
        b.iter(|| std::hint::black_box(accel.simulate(&task)))
    });
    group.finish();
}

fn bench_cycle_sim_grid_threads(c: &mut Criterion) {
    // The cycle-sim validation grid (the CI regression gate's input) fans
    // out one simulation per grid point; this measures the fan-out at
    // different worker counts.
    use sofa_sim::CycleSim;
    let mut group = c.benchmark_group("cycle_sim_grid_threads");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1000));
    let sim = CycleSim::new(HwConfig::paper_default());
    let tasks = sofa_bench::experiments::cycle_sim_tasks();
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("validate_grid", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    sofa_par::with_threads(threads, || {
                        std::hint::black_box(sofa_par::par_map(&tasks, |t| sim.validate(t).1))
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_accelerator_model,
    bench_cycle_sim_grid_threads
);
criterion_main!(benches);
