//! Criterion bench: SU-FA vs FlashAttention-1/2 vs vanilla attention on the
//! formal-compute stage (supports paper Figs. 5 and 17, and the SU-FA order
//! ablation of §III-C), plus the threads dimension of the batched pipeline
//! (`run_batch` under `sofa_par::with_threads` — the wall-time trajectory
//! the `par_scaling` experiment records as a JSON artifact).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sofa_core::flash::{flash_attention, vanilla_attention_counted, FlashConfig, FlashVersion};
use sofa_core::ops::OpCounts;
use sofa_core::pipeline::{PipelineConfig, SofaPipeline};
use sofa_core::sufa::{sorted_updating_attention, SuFaOrder};
use sofa_core::topk::topk_exact;
use sofa_model::{AttentionWorkload, ScoreDistribution};
use sofa_tensor::attention::attention_scores;
use std::time::Duration;

fn bench_formal_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("formal_compute");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for s in [256usize, 512] {
        let w = AttentionWorkload::generate(&ScoreDistribution::llama_like(), 16, s, 64, 64, 7);
        let (q, k, v) = (w.q.clone(), w.keys(), w.values());
        let keep = s / 5;
        let scores = attention_scores(&q, &k);
        let mut ops = OpCounts::new();
        let mask = topk_exact(&scores, keep, &mut ops);

        group.bench_with_input(BenchmarkId::new("sufa_descending", s), &s, |b, _| {
            b.iter(|| {
                let mut ops = OpCounts::new();
                std::hint::black_box(sorted_updating_attention(
                    &q,
                    &k,
                    &v,
                    &mask,
                    SuFaOrder::Descending,
                    &mut ops,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("fa2_full", s), &s, |b, _| {
            b.iter(|| {
                let mut ops = OpCounts::new();
                std::hint::black_box(flash_attention(
                    &q,
                    &k,
                    &v,
                    &FlashConfig::new(16, FlashVersion::V2),
                    &mut ops,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("fa1_full", s), &s, |b, _| {
            b.iter(|| {
                let mut ops = OpCounts::new();
                std::hint::black_box(flash_attention(
                    &q,
                    &k,
                    &v,
                    &FlashConfig::new(16, FlashVersion::V1),
                    &mut ops,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("vanilla_dense", s), &s, |b, _| {
            b.iter(|| {
                let mut ops = OpCounts::new();
                std::hint::black_box(vanilla_attention_counted(&q, &k, &v, &mut ops))
            })
        });
    }
    group.finish();
}

fn bench_run_batch_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_batch_threads");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    // A batch of 8 serving-request-sized workloads — the shape the
    // acceptance speedup is measured on.
    let workloads: Vec<AttentionWorkload> = (0..8)
        .map(|i| {
            AttentionWorkload::generate(&ScoreDistribution::bert_like(), 16, 384, 64, 48, 1700 + i)
        })
        .collect();
    let op = sofa_model::OperatingPoint::single(0.25, 16);
    let pipeline = SofaPipeline::new(PipelineConfig::for_layer(&op, 0));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("batch8", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    sofa_par::with_threads(threads, || {
                        std::hint::black_box(pipeline.run_batch(&op, &workloads))
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_formal_stage, bench_run_batch_threads);
criterion_main!(benches);
