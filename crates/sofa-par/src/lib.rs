//! Deterministic scoped data-parallelism for the SOFA workspace.
//!
//! The hot paths of this repository — batched pipeline runs, per-row
//! prediction/top-k loops, experiment fan-out, request lowering — are
//! embarrassingly parallel over *independent* work items. This crate gives
//! them a rayon-flavoured API (`par_map`, `par_chunks`, `join`) built on
//! plain `std::thread::scope`, with two guarantees rayon does not make:
//!
//! 1. **Bit-identical results at any thread count.** Work is split into one
//!    contiguous chunk per worker (no work stealing), every item is computed
//!    independently, and results are stitched back together in input order.
//!    As long as the per-item closure is a pure function of its item,
//!    `par_map(items, f) == items.iter().map(f).collect()` holds exactly —
//!    the property the differential tests in `tests/property_tests.rs`
//!    enforce. Reductions over per-item tallies (e.g. `OpCounts`) are
//!    performed by the *caller* in input order, so no floating-point or
//!    counter reassociation can leak in.
//! 2. **No nested oversubscription.** A parallel region entered from inside
//!    a worker thread runs sequentially (checked via a thread-local flag),
//!    so `run_batch` over workloads can call the row-parallel SADS stage
//!    without spawning `threads²` threads — and without changing results.
//!
//! The worker count comes from, in order of precedence: a scoped
//! [`with_threads`] override (used by benchmarks to sweep a threads
//! dimension in-process), the `SOFA_THREADS` environment variable, and
//! finally `std::thread::available_parallelism()`. `SOFA_THREADS=1` (or a
//! single-item input) short-circuits to the plain sequential loop — no
//! threads are spawned at all.
//!
//! Randomised parallel work uses [`par_map_rng`]: each *item* gets its own
//! RNG stream derived from `(base_seed, item index)` via the `rand_chacha`
//! shim, so the stream an item sees is independent of which worker runs it
//! and of the thread count.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// Scoped override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside worker threads: nested parallel regions run sequentially.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Parses `SOFA_THREADS` once per process. `0`, empty or unparsable values
/// fall back to the machine's available parallelism.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        match std::env::var("SOFA_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    })
}

/// The worker count parallel regions started from this thread will use:
/// the innermost [`with_threads`] override if one is active, else
/// `SOFA_THREADS`, else the machine's available parallelism. Always ≥ 1.
pub fn configured_threads() -> usize {
    THREAD_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(env_threads)
        .max(1)
}

/// Runs `f` with the worker count of parallel regions (on this thread)
/// overridden to `threads`, restoring the previous setting afterwards —
/// the in-process analogue of setting `SOFA_THREADS`, used by benchmarks
/// and the differential tests to sweep thread counts.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(threads.max(1))));
    // Restore on unwind too, so a panicking closure cannot leak the override
    // into later tests on the same thread.
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Whether the current thread is already inside a `sofa-par` worker (nested
/// parallel regions degrade to sequential execution).
pub fn in_parallel_region() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Marks the current thread as inside a parallel region for the guard's
/// lifetime (restoring the previous state on drop, including on unwind) —
/// applied to workers *and* to the calling thread while it executes its own
/// chunk, so nested regions cannot over-spawn while workers are running.
struct RegionGuard(bool);

impl RegionGuard {
    fn enter() -> Self {
        RegionGuard(IN_WORKER.with(|c| c.replace(true)))
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        IN_WORKER.with(|c| c.set(self.0));
    }
}

/// Chunk boundaries splitting `n` items into at most `workers` contiguous
/// chunks whose sizes differ by at most one.
fn chunk_bounds(n: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.min(n).max(1);
    let base = n / workers;
    let extra = n % workers;
    let mut bounds = Vec::with_capacity(workers);
    let mut lo = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        bounds.push((lo, lo + len));
        lo += len;
    }
    bounds
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// Deterministic: equal to `(0..n).map(f).collect()` whenever `f(i)` depends
/// only on `i`. Runs sequentially when the effective thread count is 1, `n`
/// is at most 1, or the caller is already inside a parallel region.
pub fn par_map_index<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = configured_threads();
    if threads <= 1 || n <= 1 || in_parallel_region() {
        return (0..n).map(f).collect();
    }
    let bounds = chunk_bounds(n, threads);
    std::thread::scope(|scope| {
        let f = &f;
        // Tail chunks go to spawned workers; the head chunk runs on the
        // calling thread concurrently with them, so a region of `w` chunks
        // costs `w - 1` thread spawns and the caller is never idle.
        let handles: Vec<_> = bounds[1..]
            .iter()
            .map(|&(lo, hi)| {
                scope.spawn(move || {
                    let _guard = RegionGuard::enter();
                    (lo..hi).map(f).collect::<Vec<U>>()
                })
            })
            .collect();
        let head: Vec<U> = {
            let _guard = RegionGuard::enter();
            (bounds[0].0..bounds[0].1).map(f).collect()
        };
        let mut out = Vec::with_capacity(n);
        out.extend(head);
        for h in handles {
            match h.join() {
                Ok(chunk) => out.extend(chunk),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Maps `f` over `items`, returning one result per item in input order.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_index(items.len(), |i| f(&items[i]))
}

/// Splits `items` into one contiguous chunk per worker and maps each chunk
/// with `f(chunk_start_index, chunk)`; the per-chunk result vectors are
/// concatenated in input order.
///
/// This is the entry point for callers that want to amortise per-worker
/// state (scratch buffers, caches) across the items of a chunk: `f` is
/// invoked once per chunk and may thread `&mut` state through the chunk's
/// items. Determinism is preserved as long as the state does not change the
/// per-item results (e.g. reused allocations that are reset between items).
///
/// # Panics
///
/// Panics if `f` returns a vector whose length differs from its chunk's.
pub fn par_chunks<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> Vec<U> + Sync,
{
    let n = items.len();
    let threads = configured_threads();
    let run_chunk = |lo: usize, hi: usize| {
        let out = f(lo, &items[lo..hi]);
        assert_eq!(
            out.len(),
            hi - lo,
            "par_chunks closure must return one result per item"
        );
        out
    };
    if threads <= 1 || n <= 1 || in_parallel_region() {
        return run_chunk(0, n);
    }
    let bounds = chunk_bounds(n, threads);
    std::thread::scope(|scope| {
        let run_chunk = &run_chunk;
        // As in `par_map_index`: tail chunks on workers, head chunk on the
        // calling thread.
        let handles: Vec<_> = bounds[1..]
            .iter()
            .map(|&(lo, hi)| {
                scope.spawn(move || {
                    let _guard = RegionGuard::enter();
                    run_chunk(lo, hi)
                })
            })
            .collect();
        let head = {
            let _guard = RegionGuard::enter();
            run_chunk(bounds[0].0, bounds[0].1)
        };
        let mut out = Vec::with_capacity(n);
        out.extend(head);
        for h in handles {
            match h.join() {
                Ok(chunk) => out.extend(chunk),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Maps `f` over the items of a mutable slice in place, returning one
/// result per item in input order.
///
/// The slice is split into one contiguous chunk per worker via
/// `split_at_mut` — no two workers ever alias an item, no work stealing —
/// so as long as `f(i, item)` touches only its own item, results and item
/// states are bit-identical at any thread count. This is the entry point
/// for stepping independently-evolving simulations (the fleet simulator's
/// nodes) in parallel between synchronization epochs.
pub fn par_map_mut<T, U, F>(items: &mut [T], f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T) -> U + Sync,
{
    let n = items.len();
    let threads = configured_threads();
    if threads <= 1 || n <= 1 || in_parallel_region() {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let bounds = chunk_bounds(n, threads);
    std::thread::scope(|scope| {
        let f = &f;
        // Head chunk on the calling thread, tail chunks on scoped workers —
        // the same layout as `par_map_index`.
        let (head, mut tail) = items.split_at_mut(bounds[0].1);
        let handles: Vec<_> = bounds[1..]
            .iter()
            .map(|&(lo, hi)| {
                let (chunk, rest) = std::mem::take(&mut tail).split_at_mut(hi - lo);
                tail = rest;
                scope.spawn(move || {
                    let _guard = RegionGuard::enter();
                    chunk
                        .iter_mut()
                        .enumerate()
                        .map(|(off, item)| f(lo + off, item))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        let head_out: Vec<U> = {
            let _guard = RegionGuard::enter();
            head.iter_mut()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect()
        };
        let mut out = Vec::with_capacity(n);
        out.extend(head_out);
        for h in handles {
            match h.join() {
                Ok(chunk) => out.extend(chunk),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
/// `b` executes on the calling thread; `a` on a scoped worker (or inline
/// when the effective thread count is 1 or the caller is already parallel).
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    if configured_threads() <= 1 || in_parallel_region() {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let ha = scope.spawn(move || {
            let _guard = RegionGuard::enter();
            a()
        });
        let rb = {
            let _guard = RegionGuard::enter();
            b()
        };
        match ha.join() {
            Ok(ra) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// Domain-separation constant folded into [`item_seed`]'s base seed, so a
/// `par_map_rng` stream can never collide with a stream derived from the
/// same `(base, index)` pair via `sofa_tensor::derive_seed`.
const ITEM_SEED_DOMAIN: u64 = 0x5047_5F50_4152_5F31; // "PG_PAR_1"

/// Derives the RNG seed of item `index` under `base_seed` (SplitMix64-style
/// mixing over a domain-separated base).
pub fn item_seed(base_seed: u64, index: u64) -> u64 {
    let mut z = (base_seed ^ ITEM_SEED_DOMAIN)
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `f` over `items` where each item receives its own deterministic RNG
/// stream seeded from `(base_seed, item index)` — the stream is a property
/// of the *item*, not the worker, so results are bit-identical at any
/// thread count.
pub fn par_map_rng<T, U, F>(items: &[T], base_seed: u64, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T, &mut ChaCha8Rng) -> U + Sync,
{
    par_map_index(items.len(), |i| {
        let mut rng = ChaCha8Rng::seed_from_u64(item_seed(base_seed, i as u64));
        f(&items[i], &mut rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chunk_bounds_cover_everything_contiguously() {
        for n in [0usize, 1, 2, 7, 8, 9, 64] {
            for workers in [1usize, 2, 3, 8, 100] {
                let b = chunk_bounds(n, workers);
                assert!(b.len() <= workers.max(1));
                let mut expect = 0;
                for &(lo, hi) in &b {
                    assert_eq!(lo, expect);
                    assert!(hi >= lo);
                    expect = hi;
                }
                if n > 0 {
                    assert_eq!(expect, n);
                    let sizes: Vec<usize> = b.iter().map(|&(lo, hi)| hi - lo).collect();
                    let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                    assert!(max - min <= 1, "chunks must be balanced: {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_at_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let want: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1usize, 2, 3, 8, 200] {
            let got = with_threads(threads, || par_map(&items, |x| x * x + 1));
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn par_map_index_handles_empty_and_single() {
        assert_eq!(par_map_index(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_index(1, |i| i + 5), vec![5]);
    }

    #[test]
    fn par_chunks_concatenates_in_order_and_passes_offsets() {
        let items: Vec<usize> = (0..41).collect();
        for threads in [1usize, 4, 16] {
            let got = with_threads(threads, || {
                par_chunks(&items, |start, chunk| {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(off, &v)| {
                            assert_eq!(v, start + off, "offset must locate the chunk");
                            v * 3
                        })
                        .collect()
                })
            });
            let want: Vec<usize> = items.iter().map(|v| v * 3).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn nested_regions_run_sequentially_but_correctly() {
        let outer: Vec<usize> = (0..8).collect();
        let got = with_threads(4, || {
            par_map(&outer, |&i| {
                assert!(in_parallel_region() || configured_threads() == 1);
                // Nested call: must degrade to sequential and still be right.
                par_map_index(5, |j| i * 10 + j)
            })
        });
        for (i, inner) in got.iter().enumerate() {
            assert_eq!(
                inner,
                &vec![i * 10, i * 10 + 1, i * 10 + 2, i * 10 + 3, i * 10 + 4]
            );
        }
    }

    #[test]
    fn par_map_mut_mutates_every_item_in_order() {
        for threads in [1usize, 2, 3, 8, 100] {
            let mut items: Vec<u64> = (0..97).collect();
            let got = with_threads(threads, || {
                par_map_mut(&mut items, |i, v| {
                    *v += 1;
                    *v * i as u64
                })
            });
            let want: Vec<u64> = (0..97u64).map(|i| (i + 1) * i).collect();
            assert_eq!(got, want, "threads={threads}");
            assert_eq!(items, (1..=97).collect::<Vec<u64>>(), "threads={threads}");
        }
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1usize, 4] {
            let (a, b) = with_threads(threads, || join(|| 2 + 2, || "b"));
            assert_eq!((a, b), (4, "b"));
        }
    }

    #[test]
    fn with_threads_restores_on_exit_and_unwind() {
        let before = configured_threads();
        with_threads(3, || assert_eq!(configured_threads(), 3));
        assert_eq!(configured_threads(), before);
        let caught = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(configured_threads(), before);
    }

    #[test]
    fn worker_panics_propagate() {
        let items = vec![0u32; 16];
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(&items, |_| {
                    panic!("worker failure");
                    #[allow(unreachable_code)]
                    0u32
                })
            })
        });
        assert!(caught.is_err(), "a panicking worker must fail the region");
    }

    #[test]
    fn par_map_rng_streams_are_per_item_not_per_worker() {
        let items: Vec<u32> = (0..33).collect();
        let draw = |threads: usize| {
            with_threads(threads, || {
                par_map_rng(&items, 99, |&x, rng| (x, rng.gen::<u64>()))
            })
        };
        let one = draw(1);
        for threads in [2usize, 7, 33] {
            assert_eq!(draw(threads), one, "threads={threads}");
        }
        // Distinct items see distinct streams.
        assert_ne!(one[0].1, one[1].1);
        assert_eq!(item_seed(1, 2), item_seed(1, 2));
        assert_ne!(item_seed(1, 2), item_seed(2, 2));
    }

    #[test]
    fn item_seed_is_domain_separated_from_tensor_derive_seed() {
        // sofa_tensor::derive_seed uses the same SplitMix64 mixing without
        // the domain constant; the two families must never hand the same
        // seed to the same (base, index) pair.
        let tensor_derive = |base: u64, stream: u64| {
            let mut z =
                base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for base in [0u64, 1, 42, u64::MAX] {
            for index in [0u64, 1, 7, 1000] {
                assert_ne!(item_seed(base, index), tensor_derive(base, index));
            }
        }
    }
}
