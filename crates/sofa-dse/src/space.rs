//! The discrete design space of per-layer tile sizes and the keep ratio
//! (paper §III-D), plus the analytic penalty terms the proxy-mode search
//! combines with a measured loss.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// The discrete search space.
#[derive(Debug, Clone, PartialEq)]
pub struct DseSpace {
    /// Candidate tile sizes `Bc` (paper: 2..=32, step 2).
    pub tile_options: Vec<usize>,
    /// Candidate keep ratios (paper: 5 %..=50 %, step 5 %).
    pub keep_options: Vec<f64>,
    /// Number of Transformer layers (one tile size chosen per layer).
    pub layers: usize,
    /// Sequence length the penalties are computed against.
    pub seq_len: usize,
}

impl DseSpace {
    /// The paper's search space for a model with `layers` layers at `seq_len`.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0` or `seq_len == 0`.
    pub fn paper_space(layers: usize, seq_len: usize) -> Self {
        assert!(
            layers > 0 && seq_len > 0,
            "layers and seq_len must be positive"
        );
        DseSpace {
            tile_options: (1..=16).map(|i| i * 2).collect(),
            keep_options: (1..=10).map(|i| i as f64 * 0.05).collect(),
            layers,
            seq_len,
        }
    }

    /// The paper's default operating point inside this space: keep ratio 25 %
    /// and tile size 16 on every layer — the configuration the rest of the
    /// workspace (pipeline defaults, hardware experiments) runs at, and the
    /// baseline a hardware-aware search must beat.
    pub fn paper_default_candidate(&self) -> DseCandidate {
        DseCandidate {
            keep_ratio: 0.25,
            tile_sizes: vec![16; self.layers],
        }
    }

    /// Total number of configurations in the space.
    pub fn cardinality(&self) -> f64 {
        self.keep_options.len() as f64 * (self.tile_options.len() as f64).powi(self.layers as i32)
    }

    /// Samples one random candidate.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> DseCandidate {
        DseCandidate {
            keep_ratio: self.keep_options[rng.gen_range(0..self.keep_options.len())],
            tile_sizes: (0..self.layers)
                .map(|_| self.tile_options[rng.gen_range(0..self.tile_options.len())])
                .collect(),
        }
    }

    /// Encodes a candidate as a normalised feature vector for the surrogate.
    pub(crate) fn encode(&self, c: &DseCandidate) -> Vec<f64> {
        let kmax = *self
            .keep_options
            .last()
            .expect("keep options must not be empty");
        let bmax = *self
            .tile_options
            .last()
            .expect("tile options must not be empty") as f64;
        let mut v = Vec::with_capacity(1 + c.tile_sizes.len());
        v.push(c.keep_ratio / kmax);
        for &b in &c.tile_sizes {
            v.push(b as f64 / bmax);
        }
        v
    }
}

/// One point of the design space: a keep ratio plus per-layer tile sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct DseCandidate {
    /// Top-k keep ratio shared by all layers.
    pub keep_ratio: f64,
    /// Tile size `Bc` per layer.
    pub tile_sizes: Vec<usize>,
}

impl DseCandidate {
    /// Sorting-cost penalty `L_cmp = Σ (Bcᵢ·k) / Σ (S·k) = mean(Bcᵢ)/S`.
    pub fn penalty_cmp(&self, seq_len: usize) -> f64 {
        if self.tile_sizes.is_empty() {
            return 0.0;
        }
        let mean_bc: f64 =
            self.tile_sizes.iter().map(|&b| b as f64).sum::<f64>() / self.tile_sizes.len() as f64;
        mean_bc / seq_len as f64
    }

    /// Tile-synchronisation penalty `L_exp = Σ (S / Bcᵢ)`, normalised by the
    /// worst case (`layers · S / min_bc = layers · S / 2`) so it is
    /// commensurable with the loss term.
    pub fn penalty_exp(&self, seq_len: usize) -> f64 {
        if self.tile_sizes.is_empty() {
            return 0.0;
        }
        let raw: f64 = self
            .tile_sizes
            .iter()
            .map(|&b| seq_len as f64 / b.max(1) as f64)
            .sum();
        let worst = self.tile_sizes.len() as f64 * seq_len as f64 / 2.0;
        raw / worst
    }

    /// The tile size a single-tile-size consumer (e.g. the serving layer,
    /// which lowers every request with one `Bc`) should run this candidate
    /// at: the lower median of the per-layer tile sizes. Deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the candidate has no layers.
    pub fn median_tile_size(&self) -> usize {
        assert!(!self.tile_sizes.is_empty(), "candidate has no layers");
        let mut tiles = self.tile_sizes.clone();
        tiles.sort_unstable();
        tiles[(tiles.len() - 1) / 2]
    }

    /// A total-order sort key over candidates (keep ratio bits, then the
    /// tile-size vector) used for deterministic tie-breaking.
    pub(crate) fn order_key(&self) -> (u64, &[usize]) {
        (self.keep_ratio.to_bits(), &self.tile_sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofa_tensor::seeded_rng;

    #[test]
    fn space_cardinality_is_huge_for_deep_models() {
        let space = DseSpace::paper_space(12, 512);
        assert!(space.cardinality() > 1e14, "got {}", space.cardinality());
    }

    #[test]
    fn penalties_behave_monotonically() {
        let small = DseCandidate {
            keep_ratio: 0.2,
            tile_sizes: vec![2, 2],
        };
        let large = DseCandidate {
            keep_ratio: 0.2,
            tile_sizes: vec![32, 32],
        };
        // Larger tiles → more sorting cost, fewer synchronisations.
        assert!(large.penalty_cmp(512) > small.penalty_cmp(512));
        assert!(large.penalty_exp(512) < small.penalty_exp(512));
        assert!(small.penalty_exp(512) <= 1.0 + 1e-12);
    }

    #[test]
    fn paper_default_sits_inside_the_space() {
        let space = DseSpace::paper_space(6, 1024);
        let d = space.paper_default_candidate();
        assert_eq!(d.tile_sizes, vec![16; 6]);
        assert!(space.tile_options.contains(&16));
        assert!(space
            .keep_options
            .iter()
            .any(|&k| (k - d.keep_ratio).abs() < 1e-12));
    }

    #[test]
    fn samples_stay_inside_the_space() {
        let space = DseSpace::paper_space(4, 512);
        let mut rng = seeded_rng(1);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            assert_eq!(c.tile_sizes.len(), 4);
            assert!(c.tile_sizes.iter().all(|b| space.tile_options.contains(b)));
            assert!(space
                .keep_options
                .iter()
                .any(|&k| (k - c.keep_ratio).abs() < 1e-12));
        }
    }

    #[test]
    fn median_tile_size_is_the_lower_median() {
        let c = DseCandidate {
            keep_ratio: 0.25,
            tile_sizes: vec![32, 2, 8, 16],
        };
        assert_eq!(c.median_tile_size(), 8);
        let odd = DseCandidate {
            keep_ratio: 0.25,
            tile_sizes: vec![4, 32, 8],
        };
        assert_eq!(odd.median_tile_size(), 8);
    }

    #[test]
    fn encode_normalises_into_unit_range() {
        let space = DseSpace::paper_space(3, 256);
        let v = space.encode(&space.paper_default_candidate());
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|&x| x > 0.0 && x <= 1.0));
    }
}
