//! The discrete design space of per-layer tile sizes and per-layer keep
//! ratios (paper §III-D, widened beyond the paper's layer-shared keep), plus
//! the analytic penalty terms the proxy-mode search combines with a measured
//! loss.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use sofa_model::OperatingPoint;

/// The discrete search space.
#[derive(Debug, Clone, PartialEq)]
pub struct DseSpace {
    /// Candidate tile sizes `Bc` (paper: 2..=32, step 2).
    pub tile_options: Vec<usize>,
    /// Candidate keep ratios (paper: 5 %..=50 %, step 5 %).
    pub keep_options: Vec<f64>,
    /// Number of Transformer layers (one tile size and one keep ratio chosen
    /// per layer).
    pub layers: usize,
    /// Sequence length the penalties are computed against.
    pub seq_len: usize,
}

impl DseSpace {
    /// The paper's search space for a model with `layers` layers at
    /// `seq_len`, widened to non-uniform keeps: the paper ties one keep ratio
    /// to all layers, this space picks one per layer so the tuner can trade
    /// early-layer recall against late-layer pruning.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0` or `seq_len == 0`.
    pub fn paper_space(layers: usize, seq_len: usize) -> Self {
        assert!(
            layers > 0 && seq_len > 0,
            "layers and seq_len must be positive"
        );
        DseSpace {
            tile_options: (1..=16).map(|i| i * 2).collect(),
            keep_options: (1..=10).map(|i| i as f64 * 0.05).collect(),
            layers,
            seq_len,
        }
    }

    /// The paper's default operating point inside this space: keep ratio 25 %
    /// and tile size 16 on every layer — the configuration the rest of the
    /// workspace (pipeline defaults, hardware experiments) runs at, and the
    /// baseline a hardware-aware search must beat.
    pub fn paper_default_candidate(&self) -> DseCandidate {
        DseCandidate::uniform(0.25, 16, self.layers)
    }

    /// Total number of configurations in the space.
    pub fn cardinality(&self) -> f64 {
        ((self.keep_options.len() * self.tile_options.len()) as f64).powi(self.layers as i32)
    }

    /// Samples one random candidate (independent per-layer keeps and tiles).
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> DseCandidate {
        DseCandidate {
            keep_ratios: (0..self.layers)
                .map(|_| self.keep_options[rng.gen_range(0..self.keep_options.len())])
                .collect(),
            tile_sizes: (0..self.layers)
                .map(|_| self.tile_options[rng.gen_range(0..self.tile_options.len())])
                .collect(),
        }
    }

    /// Encodes a candidate as a normalised feature vector for the surrogate:
    /// per-layer keeps first, then per-layer tiles.
    pub(crate) fn encode(&self, c: &DseCandidate) -> Vec<f64> {
        let kmax = *self
            .keep_options
            .last()
            .expect("keep options must not be empty");
        let bmax = *self
            .tile_options
            .last()
            .expect("tile options must not be empty") as f64;
        let mut v = Vec::with_capacity(c.keep_ratios.len() + c.tile_sizes.len());
        for &k in &c.keep_ratios {
            v.push(k / kmax);
        }
        for &b in &c.tile_sizes {
            v.push(b as f64 / bmax);
        }
        v
    }
}

/// One point of the design space: per-layer keep ratios plus per-layer tile
/// sizes — the search-side twin of [`OperatingPoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct DseCandidate {
    /// Top-k keep ratio per layer.
    pub keep_ratios: Vec<f64>,
    /// Tile size `Bc` per layer.
    pub tile_sizes: Vec<usize>,
}

impl DseCandidate {
    /// A candidate with the same `(keep, Bc)` pair on every layer — the shape
    /// of the paper's layer-shared space, used for probe grids and tests.
    pub fn uniform(keep_ratio: f64, tile_size: usize, layers: usize) -> Self {
        DseCandidate {
            keep_ratios: vec![keep_ratio; layers],
            tile_sizes: vec![tile_size; layers],
        }
    }

    /// The candidate as a deployable [`OperatingPoint`].
    ///
    /// # Panics
    ///
    /// Panics if the candidate violates the operating-point invariants
    /// (cannot happen for candidates drawn from a [`DseSpace`]).
    pub fn operating_point(&self) -> OperatingPoint {
        OperatingPoint::new(self.keep_ratios.clone(), self.tile_sizes.clone())
            .expect("space candidates are valid operating points")
    }

    /// Mean keep ratio across layers (for reporting).
    pub fn mean_keep(&self) -> f64 {
        self.keep_ratios.iter().sum::<f64>() / self.keep_ratios.len().max(1) as f64
    }

    /// Sorting-cost penalty `L_cmp = Σ (Bcᵢ·kᵢ·S) / Σ (S·kᵢ·S)` — the kept
    /// pairs each layer sorts, weighted by that layer's keep.
    pub fn penalty_cmp(&self, seq_len: usize) -> f64 {
        if self.tile_sizes.is_empty() {
            return 0.0;
        }
        let num: f64 = self
            .tile_sizes
            .iter()
            .zip(&self.keep_ratios)
            .map(|(&b, &k)| b as f64 * k)
            .sum();
        let den: f64 = self.keep_ratios.iter().map(|&k| seq_len as f64 * k).sum();
        num / den.max(f64::MIN_POSITIVE)
    }

    /// Tile-synchronisation penalty `L_exp = Σ (S / Bcᵢ)`, normalised by the
    /// worst case (`layers · S / min_bc = layers · S / 2`) so it is
    /// commensurable with the loss term.
    pub fn penalty_exp(&self, seq_len: usize) -> f64 {
        if self.tile_sizes.is_empty() {
            return 0.0;
        }
        let raw: f64 = self
            .tile_sizes
            .iter()
            .map(|&b| seq_len as f64 / b.max(1) as f64)
            .sum();
        let worst = self.tile_sizes.len() as f64 * seq_len as f64 / 2.0;
        raw / worst
    }

    /// Total-order comparison with another candidate — the shared
    /// `(keep bits, tiles)` rule of
    /// [`sofa_model::operating_point::cmp_point_key`] — used for
    /// deterministic tie-breaking. Allocation-free (it runs inside sort and
    /// `min_by` comparators).
    pub(crate) fn cmp_key(&self, other: &Self) -> std::cmp::Ordering {
        sofa_model::operating_point::cmp_point_key(
            &self.keep_ratios,
            &self.tile_sizes,
            &other.keep_ratios,
            &other.tile_sizes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofa_tensor::seeded_rng;

    #[test]
    fn space_cardinality_is_huge_for_deep_models() {
        let space = DseSpace::paper_space(12, 512);
        assert!(space.cardinality() > 1e14, "got {}", space.cardinality());
        // Per-layer keeps widen the space beyond the layer-shared variant.
        let shared = 10.0 * 16f64.powi(12);
        assert!(space.cardinality() > shared);
    }

    #[test]
    fn penalties_behave_monotonically() {
        let small = DseCandidate::uniform(0.2, 2, 2);
        let large = DseCandidate::uniform(0.2, 32, 2);
        // Larger tiles → more sorting cost, fewer synchronisations.
        assert!(large.penalty_cmp(512) > small.penalty_cmp(512));
        assert!(large.penalty_exp(512) < small.penalty_exp(512));
        assert!(small.penalty_exp(512) <= 1.0 + 1e-12);
        // Uniform keeps reproduce the layer-shared formula mean(Bc)/S.
        let mixed = DseCandidate::uniform(0.25, 16, 4);
        assert!((mixed.penalty_cmp(512) - 16.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn cmp_penalty_weights_layers_by_their_keep() {
        // A big tile on a barely-kept layer should cost less than the same
        // big tile on a heavily-kept layer.
        let heavy_on_big = DseCandidate {
            keep_ratios: vec![0.05, 0.50],
            tile_sizes: vec![2, 32],
        };
        let light_on_big = DseCandidate {
            keep_ratios: vec![0.50, 0.05],
            tile_sizes: vec![2, 32],
        };
        assert!(heavy_on_big.penalty_cmp(512) > light_on_big.penalty_cmp(512));
    }

    #[test]
    fn paper_default_sits_inside_the_space() {
        let space = DseSpace::paper_space(6, 1024);
        let d = space.paper_default_candidate();
        assert_eq!(d.tile_sizes, vec![16; 6]);
        assert_eq!(d.keep_ratios.len(), 6);
        assert!(space.tile_options.contains(&16));
        for &k in &d.keep_ratios {
            assert!(space.keep_options.iter().any(|&o| (o - k).abs() < 1e-12));
        }
    }

    #[test]
    fn samples_stay_inside_the_space() {
        let space = DseSpace::paper_space(4, 512);
        let mut rng = seeded_rng(1);
        let mut saw_non_uniform_keeps = false;
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            assert_eq!(c.tile_sizes.len(), 4);
            assert_eq!(c.keep_ratios.len(), 4);
            assert!(c.tile_sizes.iter().all(|b| space.tile_options.contains(b)));
            for &k in &c.keep_ratios {
                assert!(space.keep_options.iter().any(|&o| (o - k).abs() < 1e-12));
            }
            saw_non_uniform_keeps |= c.keep_ratios.windows(2).any(|w| w[0] != w[1]);
        }
        assert!(
            saw_non_uniform_keeps,
            "the widened space must sample non-uniform keeps"
        );
    }

    #[test]
    fn candidates_convert_to_operating_points() {
        let c = DseCandidate {
            keep_ratios: vec![0.1, 0.3],
            tile_sizes: vec![8, 32],
        };
        let op = c.operating_point();
        assert_eq!(op.layers(), 2);
        assert_eq!(op.keeps(), c.keep_ratios.as_slice());
        assert_eq!(op.tiles(), c.tile_sizes.as_slice());
        assert!((c.mean_keep() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn encode_normalises_into_unit_range() {
        let space = DseSpace::paper_space(3, 256);
        let v = space.encode(&space.paper_default_candidate());
        assert_eq!(v.len(), 6, "per-layer keeps and tiles each get a feature");
        assert!(v.iter().all(|&x| x > 0.0 && x <= 1.0));
    }
}
