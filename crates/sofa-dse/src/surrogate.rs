//! The Gaussian-process surrogate (RBF kernel) and expected-improvement
//! acquisition shared by the proxy-mode search ([`crate::search`]) and the
//! hardware-aware scalarized search ([`crate::report`]).

/// A minimal Gaussian process with an RBF kernel used as the DSE surrogate.
#[derive(Debug, Clone)]
pub(crate) struct GaussianProcess {
    xs: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Vec<Vec<f64>>,
    length_scale: f64,
    noise: f64,
    y_mean: f64,
}

impl GaussianProcess {
    fn rbf(a: &[f64], b: &[f64], length_scale: f64) -> f64 {
        let d2: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
        (-d2 / (2.0 * length_scale * length_scale)).exp()
    }

    /// Fits the GP to observations `(xs, ys)`.
    pub(crate) fn fit(xs: Vec<Vec<f64>>, ys: &[f64], length_scale: f64, noise: f64) -> Self {
        let n = xs.len();
        let y_mean = ys.iter().sum::<f64>() / n.max(1) as f64;
        // K + σ²I
        let mut k = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                k[i][j] = Self::rbf(&xs[i], &xs[j], length_scale);
            }
            k[i][i] += noise;
        }
        let chol = cholesky(&k);
        let centered: Vec<f64> = ys.iter().map(|y| y - y_mean).collect();
        let alpha = cholesky_solve(&chol, &centered);
        GaussianProcess {
            xs,
            alpha,
            chol,
            length_scale,
            noise,
            y_mean,
        }
    }

    /// Posterior mean and standard deviation at `x`.
    pub(crate) fn predict(&self, x: &[f64]) -> (f64, f64) {
        let kx: Vec<f64> = self
            .xs
            .iter()
            .map(|xi| Self::rbf(xi, x, self.length_scale))
            .collect();
        let mean = self.y_mean
            + kx.iter()
                .zip(self.alpha.iter())
                .map(|(a, b)| a * b)
                .sum::<f64>();
        // var = k(x,x) + σ² − vᵀv with v = L⁻¹ kx
        let v = forward_substitute(&self.chol, &kx);
        let var = (1.0 + self.noise - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        (mean, var.sqrt())
    }
}

/// Cholesky decomposition of a symmetric positive-definite matrix.
fn cholesky(a: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i][j];
            for (lik, ljk) in l[i][..j].iter().zip(&l[j][..j]) {
                sum -= lik * ljk;
            }
            if i == j {
                l[i][j] = sum.max(1e-12).sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    l
}

/// Solves `L y = b` (forward substitution).
fn forward_substitute(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i][k] * y[k];
        }
        y[i] = sum / l[i][i];
    }
    y
}

/// Solves `(L Lᵀ) x = b` given the Cholesky factor `L`.
fn cholesky_solve(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let y = forward_substitute(l, b);
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k][i] * x[k];
        }
        x[i] = sum / l[i][i];
    }
    x
}

/// Standard normal PDF.
fn norm_pdf(z: f64) -> f64 {
    (-(z * z) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF (Abramowitz–Stegun approximation).
fn norm_cdf(z: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * z.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let cdf = 1.0 - norm_pdf(z.abs()) * poly;
    if z >= 0.0 {
        cdf
    } else {
        1.0 - cdf
    }
}

/// Expected improvement of a (minimisation) candidate with posterior
/// `(mean, std)` over the incumbent `best`.
pub(crate) fn expected_improvement(mean: f64, std: f64, best: f64) -> f64 {
    if std <= 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / std;
    (best - mean) * norm_cdf(z) + std * norm_pdf(z)
}

/// RBF length scale of the DSE surrogate (features are `encode`-normalised
/// into the unit cube, so one scale fits both search modes).
const GP_LENGTH_SCALE: f64 = 0.35;

/// Observation-noise term added to the GP kernel diagonal.
const GP_NOISE: f64 = 1e-4;

/// One surrogate-guided proposal step shared by the proxy-mode search and
/// the hardware-aware scalarized search: fit the GP to the observations so
/// far, score `acquisition_candidates` random samples (at least 8) by
/// expected improvement over the incumbent minimum, and return the winner.
pub(crate) fn propose_next(
    space: &crate::space::DseSpace,
    observed_x: &[Vec<f64>],
    observed_y: &[f64],
    acquisition_candidates: usize,
    rng: &mut rand_chacha::ChaCha8Rng,
) -> crate::space::DseCandidate {
    let gp = GaussianProcess::fit(observed_x.to_vec(), observed_y, GP_LENGTH_SCALE, GP_NOISE);
    let incumbent = observed_y.iter().copied().fold(f64::INFINITY, f64::min);
    let mut best: Option<(f64, crate::space::DseCandidate)> = None;
    for _ in 0..acquisition_candidates.max(8) {
        let c = space.sample(rng);
        let (mean, std) = gp.predict(&space.encode(&c));
        let ei = expected_improvement(mean, std, incumbent);
        if best.as_ref().is_none_or(|(b, _)| ei > *b) {
            best = Some((ei, c));
        }
    }
    best.expect("acquisition candidates > 0").1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gp_interpolates_observations() {
        let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
        let ys = [1.0, 0.0, 1.0];
        let gp = GaussianProcess::fit(xs, &ys, 0.3, 1e-6);
        let (m, s) = gp.predict(&[0.5]);
        assert!((m - 0.0).abs() < 0.05, "mean at observed point: {m}");
        assert!(
            s < 0.1,
            "uncertainty at observed point should be small: {s}"
        );
        let (_, s_far) = gp.predict(&[2.5]);
        assert!(s_far > s, "uncertainty should grow away from data");
    }

    #[test]
    fn cdf_and_pdf_sanity() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!(norm_cdf(3.0) > 0.99);
        assert!(norm_cdf(-3.0) < 0.01);
        assert!(norm_pdf(0.0) > norm_pdf(1.0));
    }

    #[test]
    fn expected_improvement_prefers_low_mean_and_high_std() {
        let a = expected_improvement(0.5, 0.1, 1.0);
        let b = expected_improvement(0.9, 0.1, 1.0);
        assert!(a > b);
        let c = expected_improvement(1.0, 0.5, 1.0);
        let d = expected_improvement(1.0, 0.01, 1.0);
        assert!(c > d);
    }
}
