//! Hardware-aware design-space exploration of the cross-stage tiling
//! parameters (paper §III-D, Algorithm 1 — closed against the hardware).
//!
//! The paper picks per-layer tile sizes `Bc` and a keep ratio `k` with
//! Bayesian optimisation over a *proxy* objective: an accuracy-loss term plus
//! analytic sorting/synchronisation penalties. This crate supersedes the old
//! `sofa_core::dse` module by closing the loop the proxy approximated: every
//! candidate is lowered through the real stack —
//!
//! ```text
//! (tile sizes, keep ratio)
//!   → SofaPipeline::run (per layer)          measured proxy loss + op counts
//!   → PipelineResult::tile_selection_stats   real per-tile selection counts
//!   → SofaAccelerator::tile_descriptors      per-tile work + DRAM traffic
//!   → CycleSim::run_with_stats               end-to-end cycles
//!   → sofa_hw energy / area models           energy (pJ) and area (mm²)
//! ```
//!
//! — so each candidate is scored as a `(loss, cycles, energy_pj, area_mm2)`
//! vector ([`MetricVector`]) instead of a scalar proxy.
//!
//! * [`space`] — the discrete search space ([`DseSpace`], [`DseCandidate`])
//!   and the analytic penalty terms retained for the proxy-mode search.
//! * [`surrogate`] — the Gaussian-process surrogate and expected-improvement
//!   acquisition shared by both search modes.
//! * [`search`] — the proxy-objective Bayesian/random search (the paper's
//!   Algorithm 1, kept for the ablation experiment).
//! * [`eval`] — [`HwAwareEvaluator`]: the candidate-to-metric-vector lowering
//!   described above, batch-parallel via `sofa-par` and bit-identical at any
//!   `SOFA_THREADS`.
//! * [`pareto`] — non-dominated filtering with deterministic dedup and
//!   ordering.
//! * [`report`] — [`hardware_aware_search`]: scalarized Bayesian search under
//!   several weight profiles in parallel, pooled into a [`DseReport`] with
//!   the Pareto front and the tuned-vs-paper-default comparison that
//!   `sofa-serve` and `sofa-bench` consume.
//!
//! # Example
//!
//! ```
//! use sofa_dse::{hardware_aware_search, DseSearchConfig, EvalConfig, HwAwareEvaluator};
//!
//! let evaluator = HwAwareEvaluator::new(EvalConfig::tiny(7), 2);
//! let report = hardware_aware_search(&evaluator, &DseSearchConfig::smoke(7));
//! assert!(!report.pareto.is_empty());
//! assert_eq!(report.best.candidate.tile_sizes.len(), 2);
//! ```

pub mod eval;
pub mod pareto;
pub mod report;
pub mod search;
pub mod space;
pub mod surrogate;

pub use eval::{CandidateEval, EvalConfig, HwAwareEvaluator, MetricVector};
pub use pareto::{pareto_front, ParetoFront};
pub use report::{hardware_aware_search, DseReport, DseSearchConfig, ScalarWeights};
pub use search::{bayesian_optimize, random_search, DseConfig, DseResult};
pub use space::{DseCandidate, DseSpace};
