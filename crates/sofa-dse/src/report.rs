//! The hardware-aware search driver and its [`DseReport`].
//!
//! [`hardware_aware_search`] explores the space in three pooled phases:
//!
//! 1. a deterministic **coarse probe grid** (uniform tilings × a spread of
//!    keep ratios) evaluated batch-parallel — the anchor that guarantees the
//!    pool always contains comparable neighbours of the paper default;
//! 2. one **scalarized Bayesian search per weight profile**
//!    ([`ScalarWeights`]), run in parallel across profiles via `sofa-par`:
//!    each profile collapses the metric vector to a weighted sum of
//!    components normalised by the paper-default evaluation, warm-starts its
//!    surrogate from the probe observations, and spends its budget where its
//!    weights point it;
//! 3. **Pareto reduction** ([`crate::pareto_front`]) over everything
//!    evaluated, plus the balanced-scalar winner as the single tuned
//!    recommendation.
//!
//! Every phase is a pure function of the evaluator's pinned inputs and the
//! search seed, so the whole report is bit-identical at any `SOFA_THREADS` —
//! the property the CI regression gate re-checks by running the search twice.

use crate::eval::{CandidateEval, HwAwareEvaluator, MetricVector};
use crate::pareto::ParetoFront;
use crate::space::{DseCandidate, DseSpace};
use crate::surrogate::propose_next;
use sofa_core::cache::LoweringCache;
use sofa_model::trace::RequestClass;
use sofa_model::OperatingPoint;
use sofa_tensor::seeded_rng;

/// One scalarization profile: weights over the normalised metric components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarWeights {
    /// Profile name (used in reports and labels).
    pub name: &'static str,
    /// Weight of `loss / reference.loss`.
    pub loss: f64,
    /// Weight of `cycles / reference.cycles`.
    pub cycles: f64,
    /// Weight of `energy / reference.energy`.
    pub energy: f64,
    /// Weight of `area / reference.area`.
    pub area: f64,
}

impl ScalarWeights {
    /// Equal pressure on loss, latency and energy; area weighted lightly
    /// (it only moves with the largest tile).
    pub fn balanced() -> Self {
        ScalarWeights {
            name: "balanced",
            loss: 1.0,
            cycles: 1.0,
            energy: 1.0,
            area: 0.25,
        }
    }

    /// The default profile set: balanced plus one profile leaning into each
    /// of accuracy, latency and energy.
    pub fn profiles() -> Vec<ScalarWeights> {
        vec![
            Self::balanced(),
            ScalarWeights {
                name: "accuracy-lean",
                loss: 4.0,
                ..Self::balanced()
            },
            ScalarWeights {
                name: "latency-lean",
                cycles: 4.0,
                ..Self::balanced()
            },
            ScalarWeights {
                name: "energy-lean",
                energy: 4.0,
                ..Self::balanced()
            },
        ]
    }

    /// Collapses `m` to a scalar, normalising each component by `reference`
    /// (the paper-default evaluation), so the weights act on comparable
    /// magnitudes. The loss reference is floored: near-zero default loss
    /// would otherwise blow the loss term up for every candidate.
    pub fn scalarize(&self, m: &MetricVector, reference: &MetricVector) -> f64 {
        let loss_ref = reference.loss.max(1e-4);
        self.loss * (m.loss / loss_ref)
            + self.cycles * (m.cycles as f64 / reference.cycles.max(1) as f64)
            + self.energy * (m.energy_pj / reference.energy_pj.max(1e-9))
            + self.area * (m.area_mm2 / reference.area_mm2.max(1e-9))
    }
}

/// Budget and seeding of one [`hardware_aware_search`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct DseSearchConfig {
    /// Random initial samples each profile adds on top of the shared probes.
    pub init_samples: usize,
    /// Surrogate-guided evaluations per profile.
    pub guided_iters: usize,
    /// Random candidates scored by the acquisition function per iteration.
    pub acquisition_candidates: usize,
    /// Keep ratios of the coarse probe grid.
    pub probe_keeps: Vec<f64>,
    /// Uniform tile sizes of the coarse probe grid.
    pub probe_tiles: Vec<usize>,
    /// The scalarization profiles searched in parallel.
    pub profiles: Vec<ScalarWeights>,
    /// Base RNG seed (profile `i` derives its stream from `(seed, i)`).
    pub seed: u64,
    /// Memoise candidate evaluations on the canonical per-layer encoding
    /// (default `true`). The probe grid and the weight profiles propose
    /// overlapping candidates; evaluation is a pure function of the
    /// candidate, so dedup changes wall time only — the report (minus
    /// [`DseReport::evals_saved`]) is bit-identical either way.
    pub dedup: bool,
}

impl DseSearchConfig {
    /// The default experiment budget: a 4×4 probe grid plus four profiles of
    /// 2 + 6 evaluations each (≈ 49 candidate lowerings with the default).
    pub fn quick(seed: u64) -> Self {
        DseSearchConfig {
            init_samples: 2,
            guided_iters: 6,
            acquisition_candidates: 64,
            probe_keeps: vec![0.15, 0.20, 0.25, 0.30],
            probe_tiles: vec![4, 8, 16, 32],
            profiles: ScalarWeights::profiles(),
            seed,
            dedup: true,
        }
    }

    /// A minimal budget for unit tests: a 2×2 probe grid and one balanced
    /// profile of 1 + 2 evaluations.
    pub fn smoke(seed: u64) -> Self {
        DseSearchConfig {
            init_samples: 1,
            guided_iters: 2,
            acquisition_candidates: 16,
            probe_keeps: vec![0.20, 0.25],
            probe_tiles: vec![8, 16],
            profiles: vec![ScalarWeights::balanced()],
            seed,
            dedup: true,
        }
    }
}

/// The outcome of one hardware-aware search.
#[derive(Debug, Clone, PartialEq)]
pub struct DseReport {
    /// The space that was searched.
    pub space: DseSpace,
    /// The paper-default operating point, evaluated with the same lowering.
    pub paper_default: CandidateEval,
    /// Every evaluated point, in deterministic order (probes first, then the
    /// profile runs profile-major).
    pub evaluated: Vec<CandidateEval>,
    /// The non-dominated front over `evaluated` plus the default, packaged
    /// as the per-request-class routing table the serving layer consumes.
    pub pareto: ParetoFront,
    /// The tuned recommendation a consumer should deploy: the
    /// balanced-scalarization winner among the candidates that strictly
    /// dominate the paper default on (cycles, energy) at equal-or-better
    /// loss, falling back to the global scalarization winner when no
    /// candidate dominates. Deterministic tie-breaking.
    pub best: CandidateEval,
    /// Total candidate lowerings performed (including the default).
    pub evaluations: usize,
    /// Candidate evaluations answered from the dedup memo instead of being
    /// re-lowered (0 with [`DseSearchConfig::dedup`] off). Deterministic:
    /// probe dedup is serial and each profile's saves are a pure function of
    /// its own proposal stream.
    pub evals_saved: usize,
}

impl DseReport {
    /// Front members that strictly dominate the paper default on
    /// `(cycles, energy)` at equal-or-better loss — the configurations that
    /// are a pure win over the paper's operating point. The CI regression
    /// gate fails when this comes back empty.
    pub fn dominating(&self) -> Vec<&CandidateEval> {
        let d = &self.paper_default.metrics;
        self.pareto
            .points()
            .iter()
            .filter(|e| e.metrics.beats_on_cycles_energy(d))
            .collect()
    }

    /// The tuned operating point — the best candidate's full per-layer keep
    /// ratios and tile sizes. `sofa-serve` lowers a whole trace with this
    /// when it runs single-point (non-routed) deployments.
    pub fn tuned_operating_point(&self) -> OperatingPoint {
        self.best.candidate.operating_point()
    }

    /// Routes a request class through the Pareto front
    /// ([`ParetoFront::route`]): latency-lean for decodes, energy-lean for
    /// prefills, never above the paper default's loss.
    pub fn route(&self, class: &RequestClass) -> OperatingPoint {
        self.pareto.route(class)
    }
}

/// Runs the full hardware-aware search (see the module docs).
///
/// # Panics
///
/// Panics if the search config has no profiles, or no probe/init/guided
/// budget at all.
pub fn hardware_aware_search(evaluator: &HwAwareEvaluator, cfg: &DseSearchConfig) -> DseReport {
    assert!(!cfg.profiles.is_empty(), "at least one profile is required");
    let budget = cfg.probe_keeps.len() * cfg.probe_tiles.len()
        + cfg.profiles.len() * (cfg.init_samples + cfg.guided_iters);
    assert!(budget > 0, "search budget must be positive");

    let space = evaluator.space();
    let paper_default = evaluator.evaluate(&space.paper_default_candidate());
    let reference = paper_default.metrics;

    // The dedup memo: evaluation is a pure function of the candidate's
    // canonical per-layer encoding, so a memo hit returns the exact bits a
    // re-evaluation would. Filled serially (dedup-before-parallel in the
    // probe phase, per-profile local memos in the search phase), so the
    // saved-evaluation count is deterministic at any `SOFA_THREADS`.
    let mut memo: EvalMemo = LoweringCache::new(cfg.dedup);
    memo.preload(candidate_key(&paper_default.candidate), reference);

    // Phase 1 — deterministic coarse probes, batch-parallel over the
    // *distinct* candidates (the paper default overlaps the grid whenever
    // its `(keep, Bc)` is a grid point).
    let probes: Vec<DseCandidate> = cfg
        .probe_keeps
        .iter()
        .flat_map(|&keep| {
            cfg.probe_tiles
                .iter()
                .map(move |&bc| DseCandidate::uniform(keep, bc, space.layers))
        })
        .collect();
    let mut fresh: Vec<DseCandidate> = Vec::new();
    let mut pending: std::collections::HashMap<CandidateKey, usize> =
        std::collections::HashMap::new();
    let mut probe_src: Vec<Result<MetricVector, usize>> = Vec::with_capacity(probes.len());
    for c in &probes {
        let key = candidate_key(c);
        if let Some(m) = memo.peek(&key).copied() {
            memo.record_shared_hits(1);
            probe_src.push(Ok(m));
        } else if let Some(&i) = pending.get(&key).filter(|_| cfg.dedup) {
            memo.record_shared_hits(1);
            probe_src.push(Err(i));
        } else {
            pending.insert(key, fresh.len());
            probe_src.push(Err(fresh.len()));
            fresh.push(c.clone());
        }
    }
    let fresh_evals = evaluator.evaluate_batch(&fresh);
    for e in &fresh_evals {
        memo.insert_computed(candidate_key(&e.candidate), e.metrics);
    }
    let probe_evals: Vec<CandidateEval> = probes
        .into_iter()
        .zip(probe_src)
        .map(|(candidate, src)| CandidateEval {
            metrics: src.unwrap_or_else(|i| fresh_evals[i].metrics),
            candidate,
        })
        .collect();

    // Phase 2 — one scalarized Bayesian search per profile, profiles in
    // parallel. Each profile is a pure function of (probes, seed, profile),
    // so the fan-out cannot change results; the shared memo is read-only
    // here and each profile counts its own saves in a local memo.
    let profile_indices: Vec<usize> = (0..cfg.profiles.len()).collect();
    let profile_runs: Vec<(Vec<CandidateEval>, u64)> = sofa_par::par_map(&profile_indices, |&p| {
        run_profile(
            evaluator,
            &space,
            cfg,
            &cfg.profiles[p],
            p,
            &probe_evals,
            &reference,
            &memo,
        )
    });

    // Phase 3 — pool and reduce.
    let mut evaluated = probe_evals;
    let mut evals_saved = memo.stats().hits;
    for (run, saved) in profile_runs {
        evaluated.extend(run);
        evals_saved += saved;
    }
    let evals_saved = evals_saved as usize;
    let evaluations = evaluated.len() + 1;
    let mut pool = evaluated.clone();
    pool.push(paper_default.clone());
    let pareto = ParetoFront::new(&pool, &paper_default);

    let balanced = ScalarWeights::balanced();
    let pick_min = |pool: &[&CandidateEval]| -> Option<CandidateEval> {
        pool.iter()
            .min_by(|a, b| {
                balanced
                    .scalarize(&a.metrics, &reference)
                    .total_cmp(&balanced.scalarize(&b.metrics, &reference))
                    .then_with(|| a.candidate.cmp_key(&b.candidate))
            })
            .map(|e| (*e).clone())
    };
    // Prefer a pure win over the default (loss ≤, cycles <, energy <); fall
    // back to the global scalarization winner when no candidate dominates.
    let d = &paper_default.metrics;
    let dominating: Vec<&CandidateEval> = pool
        .iter()
        .filter(|e| e.metrics.beats_on_cycles_energy(d))
        .collect();
    let best = pick_min(&dominating)
        .or_else(|| pick_min(&pool.iter().collect::<Vec<_>>()))
        .expect("pool contains at least the default");

    DseReport {
        space,
        paper_default,
        evaluated,
        pareto,
        best,
        evaluations,
        evals_saved,
    }
}

/// The canonical candidate encoding the dedup memo keys on: per-layer keep
/// ratios as IEEE-754 bit patterns plus per-layer tile sizes. Bit-identical
/// floats collide; any per-layer difference misses.
type CandidateKey = (Vec<u64>, Vec<usize>);

/// The candidate-evaluation memo (see [`DseSearchConfig::dedup`]).
type EvalMemo = LoweringCache<CandidateKey, MetricVector>;

fn candidate_key(c: &DseCandidate) -> CandidateKey {
    (
        c.keep_ratios.iter().map(|k| k.to_bits()).collect(),
        c.tile_sizes.clone(),
    )
}

/// One profile's scalarized Bayesian run: warm-started from the probe
/// observations, returning only the *new* evaluations it performed plus the
/// number it answered from the memo (`base`, read-only, shared across
/// profiles) or its own proposal history instead of re-lowering.
#[allow(clippy::too_many_arguments)]
fn run_profile(
    evaluator: &HwAwareEvaluator,
    space: &DseSpace,
    cfg: &DseSearchConfig,
    weights: &ScalarWeights,
    profile_index: usize,
    probes: &[CandidateEval],
    reference: &MetricVector,
    base: &EvalMemo,
) -> (Vec<CandidateEval>, u64) {
    let mut rng = seeded_rng(sofa_par::item_seed(cfg.seed, profile_index as u64));
    let mut observed_x: Vec<Vec<f64>> = Vec::new();
    let mut observed_y: Vec<f64> = Vec::new();
    for e in probes {
        observed_x.push(space.encode(&e.candidate));
        observed_y.push(weights.scalarize(&e.metrics, reference));
    }

    let mut local: EvalMemo = LoweringCache::new(cfg.dedup);
    let evaluate = |c: DseCandidate, local: &mut EvalMemo| -> CandidateEval {
        let key = candidate_key(&c);
        let cached = base.peek(&key).or_else(|| local.peek(&key)).copied();
        if let Some(m) = cached {
            local.record_shared_hits(1);
            return CandidateEval {
                metrics: m,
                candidate: c,
            };
        }
        let e = evaluator.evaluate(&c);
        local.insert_computed(key, e.metrics);
        e
    };

    let mut new_evals: Vec<CandidateEval> = Vec::new();
    let mut observe =
        |e: CandidateEval, observed_x: &mut Vec<Vec<f64>>, observed_y: &mut Vec<f64>| {
            observed_x.push(space.encode(&e.candidate));
            observed_y.push(weights.scalarize(&e.metrics, reference));
            new_evals.push(e);
        };

    for _ in 0..cfg.init_samples {
        let c = space.sample(&mut rng);
        let e = evaluate(c, &mut local);
        observe(e, &mut observed_x, &mut observed_y);
    }
    for _ in 0..cfg.guided_iters {
        let chosen = propose_next(
            space,
            &observed_x,
            &observed_y,
            cfg.acquisition_candidates,
            &mut rng,
        );
        let e = evaluate(chosen, &mut local);
        observe(e, &mut observed_x, &mut observed_y);
    }
    let saved = local.stats().hits;
    (new_evals, saved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalConfig;

    fn smoke_report(seed: u64) -> DseReport {
        let evaluator = HwAwareEvaluator::new(EvalConfig::tiny(seed), 2);
        hardware_aware_search(&evaluator, &DseSearchConfig::smoke(seed))
    }

    #[test]
    fn search_produces_a_consistent_report() {
        let r = smoke_report(11);
        assert!(!r.pareto.is_empty());
        assert_eq!(r.evaluations, r.evaluated.len() + 1);
        // 2×2 probes + 1 profile × (1 + 2).
        assert_eq!(r.evaluated.len(), 7);
        // The front is non-dominated with respect to the default too.
        for e in r.pareto.points() {
            assert!(
                !r.paper_default.metrics.dominates(&e.metrics),
                "front member dominated by the default"
            );
        }
        // The best candidate sits in the evaluated pool or is the default.
        assert!(
            r.evaluated.iter().any(|e| e == &r.best) || r.best == r.paper_default,
            "best must come from the pool"
        );
    }

    #[test]
    fn search_is_deterministic() {
        assert_eq!(smoke_report(13), smoke_report(13));
    }

    #[test]
    fn search_is_bit_identical_at_any_thread_count() {
        let one = sofa_par::with_threads(1, || smoke_report(17));
        for threads in [2usize, 8] {
            let t = sofa_par::with_threads(threads, || smoke_report(17));
            assert_eq!(t, one, "threads={threads}");
        }
    }

    #[test]
    fn scalarization_normalises_against_the_reference() {
        let reference = MetricVector {
            loss: 0.1,
            cycles: 1000,
            energy_pj: 500.0,
            area_mm2: 5.0,
        };
        let w = ScalarWeights::balanced();
        // The reference scores exactly the weight sum against itself.
        let at_ref = w.scalarize(&reference, &reference);
        assert!((at_ref - (1.0 + 1.0 + 1.0 + 0.25)).abs() < 1e-12);
        let worse = MetricVector {
            cycles: 2000,
            ..reference
        };
        assert!(w.scalarize(&worse, &reference) > at_ref);
    }

    #[test]
    fn tuned_operating_point_is_well_formed() {
        let r = smoke_report(19);
        let op = r.tuned_operating_point();
        assert_eq!(op.layers(), r.space.layers);
        for l in 0..op.layers() {
            assert!(op.keep(l) > 0.0 && op.keep(l) <= 1.0);
            assert!(r.space.tile_options.contains(&op.tile(l)) || op.tile(l) == 16);
        }
    }

    #[test]
    fn report_routes_both_request_classes_through_the_front() {
        let r = smoke_report(23);
        let decode = r.route(&RequestClass::Decode);
        let prefill = r.route(&RequestClass::Prefill);
        assert_eq!(decode.layers(), r.space.layers);
        assert_eq!(prefill.layers(), r.space.layers);
        // Routed points come from the front.
        for op in [&decode, &prefill] {
            assert!(
                r.pareto
                    .points()
                    .iter()
                    .any(|e| e.candidate.operating_point() == *op),
                "routed point must sit on the front"
            );
        }
        // Neither routed point loses accuracy against the paper default.
        for op in [&decode, &prefill] {
            let eval = r
                .pareto
                .points()
                .iter()
                .find(|e| e.candidate.operating_point() == *op)
                .expect("on the front");
            assert!(eval.metrics.loss <= r.paper_default.metrics.loss + 1e-12);
        }
    }
}
