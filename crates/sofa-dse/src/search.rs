//! The proxy-objective search loops of the paper's Algorithm 1: Bayesian
//! optimisation (and a random-search baseline) over
//! `L = loss + α·L_cmp + β·L_exp`, where the loss term comes from a caller
//! closure and the penalties are the analytic terms on [`DseCandidate`].
//!
//! The hardware-aware search in [`crate::report`] supersedes this objective
//! with measured `(loss, cycles, energy, area)` vectors; the proxy mode is
//! retained for the DSE ablation experiment and as the cheap first pass a
//! caller can run before paying for cycle-accurate evaluation.

use crate::space::{DseCandidate, DseSpace};
use crate::surrogate::propose_next;
use sofa_tensor::seeded_rng;

/// Configuration of the Bayesian-optimisation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseConfig {
    /// Weight α of the sorting penalty.
    pub alpha: f64,
    /// Weight β of the tile-synchronisation penalty.
    pub beta: f64,
    /// Number of random initial samples before the surrogate is used.
    pub init_samples: usize,
    /// Total evaluation budget (including the initial samples).
    pub max_iters: usize,
    /// Number of random candidates scored by the acquisition function per
    /// iteration.
    pub acquisition_candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DseConfig {
    /// A small-budget default suitable for tests and examples.
    pub fn quick(seed: u64) -> Self {
        DseConfig {
            alpha: 0.3,
            beta: 0.3,
            init_samples: 6,
            max_iters: 24,
            acquisition_candidates: 64,
            seed,
        }
    }

    /// The per-model α/β settings reported in §V-B.1.
    pub fn paper_weights(model_name: &str, seed: u64) -> Self {
        let (alpha, beta) = match model_name {
            n if n.contains("BERT") => (0.24, 0.31),
            n if n.contains("ViT") || n.contains("PVT") => (0.20, 0.24),
            n if n.contains("GPT") => (0.40, 0.42),
            n if n.contains("Bloom") => (0.53, 0.56),
            n if n.contains("Llama") => (0.58, 0.63),
            _ => (0.3, 0.3),
        };
        DseConfig {
            alpha,
            beta,
            init_samples: 8,
            max_iters: 40,
            acquisition_candidates: 128,
            seed,
        }
    }
}

/// The result of a DSE run.
#[derive(Debug, Clone, PartialEq)]
pub struct DseResult {
    /// The best candidate found.
    pub best: DseCandidate,
    /// Objective value of the best candidate.
    pub best_objective: f64,
    /// Best-so-far objective after each evaluation (for convergence plots).
    pub history: Vec<f64>,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
}

/// Combines a measured accuracy-loss term with the analytic penalties.
pub fn objective(
    loss: f64,
    candidate: &DseCandidate,
    seq_len: usize,
    alpha: f64,
    beta: f64,
) -> f64 {
    loss + alpha * candidate.penalty_cmp(seq_len) + beta * candidate.penalty_exp(seq_len)
}

/// Runs Bayesian optimisation over `space`, calling `loss_fn` to obtain the
/// accuracy-loss term of a candidate (the penalties are added internally).
pub fn bayesian_optimize<F>(space: &DseSpace, cfg: &DseConfig, mut loss_fn: F) -> DseResult
where
    F: FnMut(&DseCandidate) -> f64,
{
    let mut rng = seeded_rng(cfg.seed);
    let mut observed_x: Vec<Vec<f64>> = Vec::new();
    let mut observed_y: Vec<f64> = Vec::new();
    let mut candidates: Vec<DseCandidate> = Vec::new();
    let mut history = Vec::new();
    let mut best_idx = 0usize;

    let evaluate = |c: &DseCandidate, loss_fn: &mut F| {
        objective(loss_fn(c), c, space.seq_len, cfg.alpha, cfg.beta)
    };

    // Initial random design.
    let init = cfg.init_samples.max(2).min(cfg.max_iters.max(2));
    for _ in 0..init {
        let c = space.sample(&mut rng);
        let y = evaluate(&c, &mut loss_fn);
        observed_x.push(space.encode(&c));
        observed_y.push(y);
        candidates.push(c);
        if y < observed_y[best_idx] {
            best_idx = observed_y.len() - 1;
        }
        history.push(observed_y[best_idx]);
    }

    // Surrogate-guided iterations.
    while candidates.len() < cfg.max_iters {
        let chosen = propose_next(
            space,
            &observed_x,
            &observed_y,
            cfg.acquisition_candidates,
            &mut rng,
        );
        let y = evaluate(&chosen, &mut loss_fn);
        observed_x.push(space.encode(&chosen));
        observed_y.push(y);
        candidates.push(chosen);
        if y < observed_y[best_idx] {
            best_idx = observed_y.len() - 1;
        }
        history.push(observed_y[best_idx]);
    }

    DseResult {
        best: candidates[best_idx].clone(),
        best_objective: observed_y[best_idx],
        history,
        evaluations: candidates.len(),
    }
}

/// Pure random search with the same budget, used as the DSE ablation baseline.
pub fn random_search<F>(space: &DseSpace, cfg: &DseConfig, mut loss_fn: F) -> DseResult
where
    F: FnMut(&DseCandidate) -> f64,
{
    let mut rng = seeded_rng(cfg.seed);
    let mut best: Option<(f64, DseCandidate)> = None;
    let mut history = Vec::new();
    for _ in 0..cfg.max_iters {
        let c = space.sample(&mut rng);
        let y = objective(loss_fn(&c), &c, space.seq_len, cfg.alpha, cfg.beta);
        if best.as_ref().is_none_or(|(b, _)| y < *b) {
            best = Some((y, c));
        }
        history.push(best.as_ref().expect("just set").0);
    }
    let (best_objective, best) = best.expect("max_iters > 0");
    DseResult {
        best,
        best_objective,
        history,
        evaluations: cfg.max_iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic loss surface: prefers keep ratios around 0.25 and tile
    /// sizes around 16.
    fn synthetic_loss(c: &DseCandidate) -> f64 {
        let k_term = (c.mean_keep() - 0.25).powi(2) * 4.0;
        let b_term: f64 = c
            .tile_sizes
            .iter()
            .map(|&b| ((b as f64 - 16.0) / 32.0).powi(2))
            .sum::<f64>()
            / c.tile_sizes.len() as f64;
        k_term + b_term
    }

    #[test]
    fn objective_combines_terms() {
        let c = DseCandidate::uniform(0.2, 16, 1);
        let base = objective(0.1, &c, 512, 0.0, 0.0);
        assert!((base - 0.1).abs() < 1e-12);
        let with_pen = objective(0.1, &c, 512, 1.0, 1.0);
        assert!(with_pen > base);
    }

    #[test]
    fn bayesian_optimisation_finds_good_configurations() {
        let space = DseSpace::paper_space(4, 512);
        let cfg = DseConfig::quick(3);
        let result = bayesian_optimize(&space, &cfg, synthetic_loss);
        assert_eq!(result.evaluations, cfg.max_iters);
        assert_eq!(result.history.len(), cfg.max_iters);
        // History is monotonically non-increasing (best-so-far).
        assert!(result.history.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        // The optimum mean keep ratio is 0.25; BO should land near it.
        assert!(
            (result.best.mean_keep() - 0.25).abs() <= 0.1,
            "best mean keep ratio {} too far from optimum",
            result.best.mean_keep()
        );
    }

    #[test]
    fn bayesian_beats_or_matches_random_search_on_average() {
        let space = DseSpace::paper_space(6, 1024);
        let mut bo_wins = 0;
        for seed in 0..5u64 {
            let cfg = DseConfig {
                max_iters: 20,
                ..DseConfig::quick(seed)
            };
            let bo = bayesian_optimize(&space, &cfg, synthetic_loss);
            let rs = random_search(&space, &cfg, synthetic_loss);
            if bo.best_objective <= rs.best_objective + 1e-9 {
                bo_wins += 1;
            }
        }
        assert!(bo_wins >= 3, "BO should win most seeds, won {bo_wins}/5");
    }

    #[test]
    fn paper_weights_are_model_specific() {
        let bert = DseConfig::paper_weights("BERT-Base", 1);
        let llama = DseConfig::paper_weights("Llama-7B", 1);
        assert!(llama.alpha > bert.alpha);
        assert!(llama.beta > bert.beta);
        let unknown = DseConfig::paper_weights("Mystery", 1);
        assert!((unknown.alpha - 0.3).abs() < 1e-12);
    }

    #[test]
    fn random_search_history_is_monotone() {
        let space = DseSpace::paper_space(2, 256);
        let cfg = DseConfig::quick(9);
        let r = random_search(&space, &cfg, synthetic_loss);
        assert!(r.history.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        assert_eq!(r.evaluations, cfg.max_iters);
    }
}
