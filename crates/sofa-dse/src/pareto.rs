//! Pareto-front extraction over `(loss, cycles, energy, area)` metric
//! vectors, with deterministic dedup and ordering — and [`ParetoFront`], the
//! routable form the serving layer consumes: a deterministic lookup table
//! from request class to operating point.

use crate::eval::{CandidateEval, MetricVector};
use sofa_model::trace::RequestClass;
use sofa_model::OperatingPoint;

/// Extracts the non-dominated subset of `evals`.
///
/// * **Dedup** — repeated evaluations of the same candidate (the Bayesian
///   searches may revisit points, and several scalarization profiles share
///   probes) collapse to one entry.
/// * **Dominance** — an entry survives iff no other entry's metric vector
///   [`dominates`](crate::MetricVector::dominates) it; incomparable ties
///   (equal vectors on distinct candidates included) all survive.
/// * **Ordering** — the front is sorted by the total order
///   `(loss, cycles, energy, area, keep ratio bits, tile sizes)`, so the
///   output is identical regardless of input order or thread count.
pub fn pareto_front(evals: &[CandidateEval]) -> Vec<CandidateEval> {
    // Dedup by candidate, keeping the first occurrence (evaluation is a pure
    // function of the candidate, so duplicates carry identical metrics).
    let mut unique: Vec<&CandidateEval> = Vec::with_capacity(evals.len());
    for e in evals {
        if !unique.iter().any(|u| u.candidate == e.candidate) {
            unique.push(e);
        }
    }
    let mut front: Vec<CandidateEval> = unique
        .iter()
        .filter(|e| {
            !unique
                .iter()
                .any(|other| other.metrics.dominates(&e.metrics))
        })
        .map(|e| (*e).clone())
        .collect();
    front.sort_by(|a, b| {
        a.metrics
            .order_key()
            .cmp(&b.metrics.order_key())
            .then_with(|| a.candidate.cmp_key(&b.candidate))
    });
    front
}

/// A non-dominated front packaged as a **routing table**: each
/// [`RequestClass`] maps to exactly one operating point on the front.
///
/// The routing rule is total and deterministic:
///
/// * a point is eligible when its loss is at or below the reference
///   (paper-default) loss **and** its mean keep ratio does not exceed the
///   reference's. The loss bar keeps routing from trading accuracy away;
///   the keep bar keeps the energy win shape-robust — the evaluation's
///   energy is measured at one pinned token parallelism, while the kept
///   pairs are the traffic knob that scales a request's energy at *any*
///   shape. When no point clears both bars the keep bar is dropped, and
///   when the loss bar alone is unsatisfiable the minimum-loss points are
///   eligible instead;
/// * **decodes** (latency-critical single tokens) get the *latency-lean*
///   eligible point: minimal cycles, energy and candidate key in that order;
/// * **prefills** (throughput/energy-bound bulk work) get the *energy-lean*
///   eligible point: minimal energy, cycles and candidate key in that order.
///
/// Two constructions over the same evaluations produce identical routes —
/// the unit tests and the serving differential proptest rely on this.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFront {
    points: Vec<CandidateEval>,
    reference: MetricVector,
    reference_mean_keep: f64,
}

impl ParetoFront {
    /// Builds the front (dedup + dominance + deterministic ordering, see
    /// [`pareto_front`]) from a pool of evaluations, with `reference` — the
    /// paper-default evaluation — anchoring the loss and keep eligibility
    /// bars.
    ///
    /// # Panics
    ///
    /// Panics if `evals` is empty (a front must be routable).
    pub fn new(evals: &[CandidateEval], reference: &CandidateEval) -> Self {
        let points = pareto_front(evals);
        assert!(!points.is_empty(), "a routable front needs evaluations");
        ParetoFront {
            points,
            reference: reference.metrics,
            reference_mean_keep: reference.candidate.mean_keep(),
        }
    }

    /// The non-dominated points, in deterministic order.
    pub fn points(&self) -> &[CandidateEval] {
        &self.points
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the front is empty (never, by construction — kept for
    /// API symmetry).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The reference (paper-default) metrics the eligibility bar uses.
    pub fn reference(&self) -> &MetricVector {
        &self.reference
    }

    /// Layer count of the operating points this front routes to.
    pub fn layers(&self) -> usize {
        self.points[0].candidate.tile_sizes.len()
    }

    /// The points clearing the loss *and* keep bars; without any, the
    /// loss bar alone; without any, the minimum-loss points.
    fn eligible(&self) -> Vec<&CandidateEval> {
        let both: Vec<&CandidateEval> = self
            .points
            .iter()
            .filter(|e| {
                e.metrics.loss <= self.reference.loss
                    && e.candidate.mean_keep() <= self.reference_mean_keep + 1e-12
            })
            .collect();
        if !both.is_empty() {
            return both;
        }
        let cleared: Vec<&CandidateEval> = self
            .points
            .iter()
            .filter(|e| e.metrics.loss <= self.reference.loss)
            .collect();
        if !cleared.is_empty() {
            return cleared;
        }
        let min_loss = self
            .points
            .iter()
            .map(|e| e.metrics.loss)
            .fold(f64::INFINITY, f64::min);
        self.points
            .iter()
            .filter(|e| e.metrics.loss == min_loss)
            .collect()
    }

    /// The latency-lean total order: `(cycles, energy, candidate key)`.
    ///
    /// Energy is compared with [`f64::total_cmp`], not `to_bits()`: the bit
    /// pattern of a negative float (including `-0.0`) has the sign bit set
    /// and therefore sorts *above* every non-negative value, inverting the
    /// order for any non-positive energy.
    fn cmp_latency_lean(a: &CandidateEval, b: &CandidateEval) -> std::cmp::Ordering {
        a.metrics
            .cycles
            .cmp(&b.metrics.cycles)
            .then_with(|| a.metrics.energy_pj.total_cmp(&b.metrics.energy_pj))
            .then_with(|| a.candidate.cmp_key(&b.candidate))
    }

    /// The energy-lean total order: `(energy, cycles, candidate key)`, with
    /// energy under [`f64::total_cmp`] (see [`Self::cmp_latency_lean`]).
    fn cmp_energy_lean(a: &CandidateEval, b: &CandidateEval) -> std::cmp::Ordering {
        a.metrics
            .energy_pj
            .total_cmp(&b.metrics.energy_pj)
            .then_with(|| a.metrics.cycles.cmp(&b.metrics.cycles))
            .then_with(|| a.candidate.cmp_key(&b.candidate))
    }

    /// The class-appropriate minimum of `set`: latency-lean for decodes,
    /// energy-lean for prefills.
    fn lean_pick<'a>(set: &[&'a CandidateEval], class: &RequestClass) -> &'a CandidateEval {
        let pick = match class {
            RequestClass::Decode => set.iter().min_by(|a, b| Self::cmp_latency_lean(a, b)),
            RequestClass::Prefill => set.iter().min_by(|a, b| Self::cmp_energy_lean(a, b)),
        };
        pick.expect("candidate set is non-empty")
    }

    /// Routes a request class to its operating point (see the type docs for
    /// the rule). Total: every class maps to exactly one point.
    pub fn route(&self, class: &RequestClass) -> OperatingPoint {
        Self::lean_pick(&self.eligible(), class)
            .candidate
            .operating_point()
    }

    /// Routes a request class under measured overload `pressure` — the
    /// feedback controller's eligibility-bar shift:
    ///
    /// * `0` — no pressure: the normal [`Self::route`] (loss and keep bars);
    /// * `1` — the keep bar is dropped (loss bar only, with the min-loss
    ///   fallback), so routing may take leaner-at-this-shape points it would
    ///   normally reject for keep-robustness;
    /// * `2+` — both bars are dropped: the class-leanest point on the whole
    ///   front ([`Self::leanest_cycles`] for decodes,
    ///   [`Self::leanest_energy`] for prefills), trading accuracy for
    ///   survival under overload.
    pub fn route_pressure(&self, class: &RequestClass, pressure: u8) -> OperatingPoint {
        match pressure {
            0 => self.route(class),
            1 => {
                let cleared: Vec<&CandidateEval> = self
                    .points
                    .iter()
                    .filter(|e| e.metrics.loss <= self.reference.loss)
                    .collect();
                let set = if cleared.is_empty() {
                    self.eligible()
                } else {
                    cleared
                };
                Self::lean_pick(&set, class).candidate.operating_point()
            }
            _ => match class {
                RequestClass::Decode => self.leanest_cycles(),
                RequestClass::Prefill => self.leanest_energy(),
            },
        }
    }

    /// The energy-leanest point on the whole front (no loss bar) — the
    /// fallback the serving layer re-routes to when a request's projected
    /// energy exceeds its budget.
    pub fn leanest_energy(&self) -> OperatingPoint {
        self.points
            .iter()
            .min_by(|a, b| Self::cmp_energy_lean(a, b))
            .expect("front is non-empty")
            .candidate
            .operating_point()
    }

    /// The cycle-leanest point on the whole front (no loss bar) — the point
    /// a decode waiting past its decay threshold is re-lowered to.
    pub fn leanest_cycles(&self) -> OperatingPoint {
        self.points
            .iter()
            .min_by(|a, b| Self::cmp_latency_lean(a, b))
            .expect("front is non-empty")
            .candidate
            .operating_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::MetricVector;
    use crate::space::DseCandidate;

    fn entry(
        keep: f64,
        bc: usize,
        loss: f64,
        cycles: u64,
        energy: f64,
        area: f64,
    ) -> CandidateEval {
        CandidateEval {
            candidate: DseCandidate {
                keep_ratios: vec![keep, keep],
                tile_sizes: vec![bc, bc],
            },
            metrics: MetricVector {
                loss,
                cycles,
                energy_pj: energy,
                area_mm2: area,
            },
        }
    }

    #[test]
    fn dominated_points_are_removed() {
        let good = entry(0.2, 16, 0.1, 100, 50.0, 5.0);
        let dominated = entry(0.3, 16, 0.2, 200, 80.0, 6.0);
        let trade_off = entry(0.1, 8, 0.3, 50, 20.0, 4.0);
        let front = pareto_front(&[dominated.clone(), good.clone(), trade_off.clone()]);
        assert_eq!(front.len(), 2);
        assert!(front.contains(&good));
        assert!(front.contains(&trade_off));
        assert!(!front.contains(&dominated));
    }

    #[test]
    fn duplicate_candidates_collapse_to_one() {
        let a = entry(0.2, 16, 0.1, 100, 50.0, 5.0);
        let front = pareto_front(&[a.clone(), a.clone(), a.clone()]);
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn incomparable_equal_vectors_on_distinct_candidates_both_survive() {
        let a = entry(0.2, 16, 0.1, 100, 50.0, 5.0);
        let b = entry(0.2, 8, 0.1, 100, 50.0, 5.0);
        let front = pareto_front(&[a, b]);
        assert_eq!(front.len(), 2, "equal vectors do not dominate each other");
    }

    #[test]
    fn ordering_is_deterministic_and_input_order_independent() {
        let points = vec![
            entry(0.1, 8, 0.3, 50, 20.0, 4.0),
            entry(0.2, 16, 0.1, 100, 50.0, 5.0),
            entry(0.3, 4, 0.05, 300, 90.0, 3.0),
        ];
        let forward = pareto_front(&points);
        let mut reversed = points.clone();
        reversed.reverse();
        assert_eq!(forward, pareto_front(&reversed));
        // Sorted ascending by loss first.
        let losses: Vec<f64> = forward.iter().map(|e| e.metrics.loss).collect();
        let mut sorted = losses.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(losses, sorted);
    }

    #[test]
    fn single_point_and_empty_inputs() {
        assert!(pareto_front(&[]).is_empty());
        let only = entry(0.2, 16, 0.1, 100, 50.0, 5.0);
        assert_eq!(pareto_front(std::slice::from_ref(&only)), vec![only]);
    }

    #[test]
    fn route_is_total_and_deterministic() {
        // Every request class maps to exactly one point, and two independent
        // constructions over the same evaluations route identically.
        let evals = vec![
            entry(0.3, 4, 0.05, 300, 90.0, 3.0),  // accurate but slow/hot
            entry(0.2, 16, 0.10, 100, 50.0, 5.0), // latency-lean
            entry(0.1, 8, 0.10, 150, 20.0, 4.0),  // energy-lean
        ];
        let reference = entry(0.25, 16, 0.12, 200, 80.0, 5.0);
        let a = ParetoFront::new(&evals, &reference);
        let mut shuffled = evals.clone();
        shuffled.reverse();
        let b = ParetoFront::new(&shuffled, &reference);
        for class in [RequestClass::Decode, RequestClass::Prefill] {
            let pa = a.route(&class);
            let pb = b.route(&class);
            assert_eq!(pa, pb, "{class} routes differ across constructions");
            assert_eq!(pa, a.route(&class), "{class} route is unstable");
        }
        // The class split picks the right leanings: decodes minimise cycles,
        // prefills minimise energy, both under the loss bar.
        assert_eq!(a.route(&RequestClass::Decode).tiles(), &[16, 16]);
        assert_eq!(a.route(&RequestClass::Prefill).tiles(), &[8, 8]);
        assert_eq!(a.leanest_energy().tiles(), &[8, 8]);
    }

    #[test]
    fn keep_bar_excludes_heavier_keeps_even_when_their_eval_energy_is_lower() {
        // A point keeping more pairs than the reference can still show lower
        // energy at the pinned evaluation shape — but it must not be routed
        // to, because kept pairs scale a request's energy at any shape.
        let heavy_but_cheap = entry(0.4, 32, 0.08, 90, 45.0, 5.0);
        let keep_parity = entry(0.25, 32, 0.10, 85, 55.0, 5.0);
        let reference = entry(0.25, 16, 0.12, 200, 80.0, 5.0);
        let front = ParetoFront::new(&[heavy_but_cheap, keep_parity.clone()], &reference);
        for class in [RequestClass::Decode, RequestClass::Prefill] {
            assert_eq!(
                front.route(&class),
                keep_parity.candidate.operating_point(),
                "{class} must stay at keep parity with the reference"
            );
        }
    }

    #[test]
    fn route_falls_back_to_minimum_loss_when_nothing_clears_the_bar() {
        let evals = vec![
            entry(0.2, 16, 0.30, 100, 50.0, 5.0),
            entry(0.1, 8, 0.20, 150, 20.0, 4.0),
        ];
        // Nothing on the front is as accurate as this reference.
        let strict_reference = entry(0.25, 16, 0.01, 200, 80.0, 5.0);
        let front = ParetoFront::new(&evals, &strict_reference);
        // Only the loss-0.20 point is eligible; both classes land on it.
        assert_eq!(front.route(&RequestClass::Decode).tiles(), &[8, 8]);
        assert_eq!(front.route(&RequestClass::Prefill).tiles(), &[8, 8]);
        assert_eq!(front.layers(), 2);
    }

    #[test]
    fn route_orders_non_positive_energies_by_value_not_bit_pattern() {
        // Regression: energy used to be compared via `f64::to_bits()`, whose
        // sign bit puts -0.0 (and every negative value) *above* all
        // non-negative values. A -0.0-energy point must win the energy-lean
        // pick against a denormal-energy point, and the denormal against
        // 1.0.
        let negative_zero = entry(0.1, 8, 0.10, 100, -0.0, 4.0);
        let denormal = entry(0.2, 16, 0.10, 100, f64::MIN_POSITIVE / 2.0, 4.0);
        let reference = entry(0.25, 16, 0.12, 200, 80.0, 5.0);
        let front = ParetoFront::new(&[denormal.clone(), negative_zero.clone()], &reference);
        assert_eq!(
            front.route(&RequestClass::Prefill),
            negative_zero.candidate.operating_point(),
            "-0.0 pJ is the energy-lean point, not the largest"
        );
        // Equal cycles: the decode tie-break on energy must also order by
        // value, so -0.0 beats the denormal there too.
        assert_eq!(
            front.route(&RequestClass::Decode),
            negative_zero.candidate.operating_point(),
        );
        assert_eq!(
            front.leanest_energy(),
            negative_zero.candidate.operating_point(),
            "leanest_energy must treat -0.0 as the minimum"
        );
    }

    #[test]
    fn leanest_energy_handles_negative_energies() {
        // A (physically nonsensical but numerically possible) negative
        // energy must sort below zero, not above everything.
        let negative = entry(0.1, 8, 0.10, 100, -5.0, 4.0);
        let positive = entry(0.2, 16, 0.10, 90, 5.0, 4.0);
        let reference = entry(0.25, 16, 0.12, 200, 80.0, 5.0);
        let front = ParetoFront::new(&[positive.clone(), negative.clone()], &reference);
        assert_eq!(front.leanest_energy(), negative.candidate.operating_point());
        assert_eq!(
            front.leanest_cycles(),
            positive.candidate.operating_point(),
            "leanest_cycles orders on cycles first"
        );
    }

    #[test]
    fn pressure_shifts_the_eligibility_bar_monotonically() {
        // keep-parity point (clears both bars), a heavier-keep point with
        // better cycles (cleared only once the keep bar drops), and an
        // off-loss-bar point that is leanest outright.
        let keep_parity = entry(0.25, 16, 0.10, 120, 60.0, 5.0);
        let heavy_fast = entry(0.4, 32, 0.11, 80, 50.0, 5.0);
        let lossy_lean = entry(0.05, 8, 0.30, 40, 10.0, 3.0);
        let reference = entry(0.25, 16, 0.12, 200, 80.0, 5.0);
        let front = ParetoFront::new(
            &[keep_parity.clone(), heavy_fast.clone(), lossy_lean.clone()],
            &reference,
        );
        // Level 0 honours both bars.
        assert_eq!(
            front.route_pressure(&RequestClass::Decode, 0),
            front.route(&RequestClass::Decode)
        );
        assert_eq!(
            front.route_pressure(&RequestClass::Decode, 0),
            keep_parity.candidate.operating_point()
        );
        // Level 1 drops the keep bar: the heavier-keep, faster point wins.
        assert_eq!(
            front.route_pressure(&RequestClass::Decode, 1),
            heavy_fast.candidate.operating_point()
        );
        // Level 2 drops the loss bar too: the outright leanest point wins.
        assert_eq!(
            front.route_pressure(&RequestClass::Decode, 2),
            lossy_lean.candidate.operating_point()
        );
        assert_eq!(
            front.route_pressure(&RequestClass::Prefill, 2),
            front.leanest_energy()
        );
    }

    #[test]
    fn metric_tie_breaks_on_candidate_key() {
        // Same metrics, different candidates: order must follow the candidate
        // key (keep ratio bits, then tiles), not input order.
        let a = entry(0.3, 4, 0.1, 100, 50.0, 5.0);
        let b = entry(0.2, 8, 0.1, 100, 50.0, 5.0);
        let front = pareto_front(&[a.clone(), b.clone()]);
        assert_eq!(front, vec![b.clone(), a.clone()]);
        let front2 = pareto_front(&[b.clone(), a.clone()]);
        assert_eq!(front, front2);
    }
}
