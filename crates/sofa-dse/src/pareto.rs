//! Pareto-front extraction over `(loss, cycles, energy, area)` metric
//! vectors, with deterministic dedup and ordering.

use crate::eval::CandidateEval;

/// Extracts the non-dominated subset of `evals`.
///
/// * **Dedup** — repeated evaluations of the same candidate (the Bayesian
///   searches may revisit points, and several scalarization profiles share
///   probes) collapse to one entry.
/// * **Dominance** — an entry survives iff no other entry's metric vector
///   [`dominates`](crate::MetricVector::dominates) it; incomparable ties
///   (equal vectors on distinct candidates included) all survive.
/// * **Ordering** — the front is sorted by the total order
///   `(loss, cycles, energy, area, keep ratio bits, tile sizes)`, so the
///   output is identical regardless of input order or thread count.
pub fn pareto_front(evals: &[CandidateEval]) -> Vec<CandidateEval> {
    // Dedup by candidate, keeping the first occurrence (evaluation is a pure
    // function of the candidate, so duplicates carry identical metrics).
    let mut unique: Vec<&CandidateEval> = Vec::with_capacity(evals.len());
    for e in evals {
        if !unique.iter().any(|u| u.candidate == e.candidate) {
            unique.push(e);
        }
    }
    let mut front: Vec<CandidateEval> = unique
        .iter()
        .filter(|e| {
            !unique
                .iter()
                .any(|other| other.metrics.dominates(&e.metrics))
        })
        .map(|e| (*e).clone())
        .collect();
    front.sort_by(|a, b| {
        a.metrics
            .order_key()
            .cmp(&b.metrics.order_key())
            .then_with(|| a.candidate.order_key().cmp(&b.candidate.order_key()))
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::MetricVector;
    use crate::space::DseCandidate;

    fn entry(
        keep: f64,
        bc: usize,
        loss: f64,
        cycles: u64,
        energy: f64,
        area: f64,
    ) -> CandidateEval {
        CandidateEval {
            candidate: DseCandidate {
                keep_ratio: keep,
                tile_sizes: vec![bc, bc],
            },
            metrics: MetricVector {
                loss,
                cycles,
                energy_pj: energy,
                area_mm2: area,
            },
        }
    }

    #[test]
    fn dominated_points_are_removed() {
        let good = entry(0.2, 16, 0.1, 100, 50.0, 5.0);
        let dominated = entry(0.3, 16, 0.2, 200, 80.0, 6.0);
        let trade_off = entry(0.1, 8, 0.3, 50, 20.0, 4.0);
        let front = pareto_front(&[dominated.clone(), good.clone(), trade_off.clone()]);
        assert_eq!(front.len(), 2);
        assert!(front.contains(&good));
        assert!(front.contains(&trade_off));
        assert!(!front.contains(&dominated));
    }

    #[test]
    fn duplicate_candidates_collapse_to_one() {
        let a = entry(0.2, 16, 0.1, 100, 50.0, 5.0);
        let front = pareto_front(&[a.clone(), a.clone(), a.clone()]);
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn incomparable_equal_vectors_on_distinct_candidates_both_survive() {
        let a = entry(0.2, 16, 0.1, 100, 50.0, 5.0);
        let b = entry(0.2, 8, 0.1, 100, 50.0, 5.0);
        let front = pareto_front(&[a, b]);
        assert_eq!(front.len(), 2, "equal vectors do not dominate each other");
    }

    #[test]
    fn ordering_is_deterministic_and_input_order_independent() {
        let points = vec![
            entry(0.1, 8, 0.3, 50, 20.0, 4.0),
            entry(0.2, 16, 0.1, 100, 50.0, 5.0),
            entry(0.3, 4, 0.05, 300, 90.0, 3.0),
        ];
        let forward = pareto_front(&points);
        let mut reversed = points.clone();
        reversed.reverse();
        assert_eq!(forward, pareto_front(&reversed));
        // Sorted ascending by loss first.
        let losses: Vec<f64> = forward.iter().map(|e| e.metrics.loss).collect();
        let mut sorted = losses.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(losses, sorted);
    }

    #[test]
    fn single_point_and_empty_inputs() {
        assert!(pareto_front(&[]).is_empty());
        let only = entry(0.2, 16, 0.1, 100, 50.0, 5.0);
        assert_eq!(pareto_front(std::slice::from_ref(&only)), vec![only]);
    }

    #[test]
    fn metric_tie_breaks_on_candidate_key() {
        // Same metrics, different candidates: order must follow the candidate
        // key (keep ratio bits, then tiles), not input order.
        let a = entry(0.3, 4, 0.1, 100, 50.0, 5.0);
        let b = entry(0.2, 8, 0.1, 100, 50.0, 5.0);
        let front = pareto_front(&[a.clone(), b.clone()]);
        assert_eq!(front, vec![b.clone(), a.clone()]);
        let front2 = pareto_front(&[b.clone(), a.clone()]);
        assert_eq!(front, front2);
    }
}
