//! Hardware-in-the-loop candidate evaluation.
//!
//! [`HwAwareEvaluator`] scores one [`DseCandidate`] as a [`MetricVector`]
//! by lowering it through the real stack, per layer:
//!
//! 1. `SofaPipeline::run` at `(keep_ratio, tile_sizes[layer])` on that
//!    layer's pinned workload — measured proxy loss and measured op counts;
//! 2. `PipelineResult::tile_selection_stats` — the run's real per-tile
//!    selection counts (Distributed Cluster Effect imbalance included);
//! 3. `SofaAccelerator::tile_descriptors` → `CycleSim::run_with_stats` —
//!    end-to-end cycles of the tiled pipeline under buffer back-pressure and
//!    DRAM contention;
//! 4. the `sofa-hw` energy models — compute energy from the *measured* op
//!    counts (so SADS comparison counts really vary with the tile size),
//!    SRAM/interface/DRAM energy from the analytic traffic model, plus a
//!    per-DRAM-request activation overhead that charges fine tilings for
//!    their extra bursts;
//! 5. a tile-size-aware area model: the sorting network grows with
//!    `Bc·log₂Bc` and the ping-pong banks linearly with the largest resident
//!    tile.
//!
//! Losses are averaged across layers; cycles and energy are summed. All
//! inputs are pinned at construction, so evaluation is a pure function of
//! the candidate — which is what lets [`HwAwareEvaluator::evaluate_batch`]
//! fan out over `sofa-par` with bit-identical results at any `SOFA_THREADS`.

use crate::space::{DseCandidate, DseSpace};
use sofa_core::accuracy::proxy_loss;
use sofa_core::pipeline::{PipelineConfig, SofaPipeline};
use sofa_hw::accel::AttentionTask;
use sofa_hw::area::{AreaModel, Module};
use sofa_hw::config::HwConfig;
use sofa_hw::energy::{compute_energy_j, DRAM_ACTIVATION_PJ};
use sofa_model::{AttentionWorkload, ScoreDistribution};
use sofa_sim::CycleSim;
use sofa_tensor::Matrix;

/// Control overhead a stage pays per tile (descriptor decode, bank swap,
/// scoreboard update) in the DSE evaluation. This is the cost the paper's
/// `L_exp = Σ S/Bc` tile-synchronisation penalty approximates analytically;
/// the default simulator floor of 1 cycle would make 128 two-element tiles
/// look free, hiding exactly the trade-off Algorithm 1 exists to balance.
pub const TILE_CONTROL_CYCLES: u64 = 32;

/// The tile size the published Table III breakdown was sized for.
const AREA_REFERENCE_BC: f64 = 16.0;

/// Relative-error band within which a cycle simulation counts as agreeing
/// with the analytic model — the evaluator's fidelity-hit criterion, kept on
/// one definition with the CI cycle-fidelity gate's tolerance.
pub const FIDELITY_TOLERANCE: f64 = 0.25;

/// The multi-objective score of one candidate. All four components are
/// minimised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricVector {
    /// Mean per-layer proxy loss (`1 − mean row cosine` vs the dense output).
    pub loss: f64,
    /// Summed end-to-end cycles of the per-layer cycle simulations.
    pub cycles: u64,
    /// Summed energy in picojoules (measured compute ops + analytic
    /// SRAM/interface/DRAM + per-request DRAM activation).
    pub energy_pj: f64,
    /// Required accelerator area in mm² at 28 nm for the candidate's largest
    /// tile size.
    pub area_mm2: f64,
}

impl MetricVector {
    /// The pure-win predicate shared by the tuned-recommendation pick, the
    /// `dse_pareto` table and the CI regression gate: strictly better than
    /// `other` on both cycles and energy at equal-or-better loss (area is
    /// deliberately ignored — a deployment can spend silicon for a win).
    pub fn beats_on_cycles_energy(&self, other: &MetricVector) -> bool {
        self.loss <= other.loss && self.cycles < other.cycles && self.energy_pj < other.energy_pj
    }

    /// Pareto dominance: no component worse, at least one strictly better.
    pub fn dominates(&self, other: &MetricVector) -> bool {
        let le = self.loss <= other.loss
            && self.cycles <= other.cycles
            && self.energy_pj <= other.energy_pj
            && self.area_mm2 <= other.area_mm2;
        let lt = self.loss < other.loss
            || self.cycles < other.cycles
            || self.energy_pj < other.energy_pj
            || self.area_mm2 < other.area_mm2;
        le && lt
    }

    /// A total-order sort key (IEEE total ordering per component) used for
    /// deterministic Pareto-front ordering and tie-breaking.
    pub(crate) fn order_key(&self) -> (u64, u64, u64, u64) {
        // All metrics are non-negative, so the sign-preserving bit pattern
        // of an f64 sorts in value order.
        (
            self.loss.to_bits(),
            self.cycles,
            self.energy_pj.to_bits(),
            self.area_mm2.to_bits(),
        )
    }
}

/// One evaluated design point: the candidate and its measured metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateEval {
    /// The design point.
    pub candidate: DseCandidate,
    /// Its hardware-in-the-loop score.
    pub metrics: MetricVector,
}

/// The pinned evaluation setup: workload shape, hardware configuration and
/// the base seed the per-layer workloads are derived from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalConfig {
    /// Token parallelism of each layer's workload.
    pub queries: usize,
    /// Context length (also the `DseSpace` sequence length).
    pub seq_len: usize,
    /// Embedding width of the workload generator.
    pub input_dim: usize,
    /// Head dimension of the workload generator.
    pub head_dim: usize,
    /// Heads the lowered `AttentionTask` models (`hidden = heads·head_dim`).
    pub heads: usize,
    /// Hardware configuration of the simulated accelerator.
    pub hw: HwConfig,
    /// Score distribution the per-layer workloads are drawn from.
    pub distribution: ScoreDistribution,
    /// Base seed; layer `i` uses workload seed `seed + i`.
    pub seed: u64,
}

impl EvalConfig {
    /// The default experiment setup: a Llama-like distribution at `S = 512`,
    /// 16 queries, simulated on the paper-default hardware.
    pub fn quick(seed: u64) -> Self {
        EvalConfig {
            queries: 16,
            seq_len: 512,
            input_dim: 64,
            head_dim: 32,
            heads: 4,
            hw: HwConfig::paper_default(),
            distribution: ScoreDistribution::llama_like(),
            seed,
        }
    }

    /// A minimal setup for unit and property tests (tiny shapes, small
    /// hardware model).
    pub fn tiny(seed: u64) -> Self {
        EvalConfig {
            queries: 4,
            seq_len: 64,
            input_dim: 32,
            head_dim: 16,
            heads: 2,
            hw: HwConfig::small(),
            distribution: ScoreDistribution::bert_like(),
            seed,
        }
    }
}

/// The hardware-in-the-loop evaluator. Construction generates (and pins) one
/// workload + dense reference per layer; evaluation is then a pure function
/// of the candidate.
#[derive(Debug)]
pub struct HwAwareEvaluator {
    cfg: EvalConfig,
    layers: Vec<(AttentionWorkload, Matrix)>,
    /// Per-layer cycle simulations run so far. Atomic adds are commutative,
    /// so the totals are identical at any `SOFA_THREADS` even though the
    /// evaluations fan out.
    layer_evals: std::sync::atomic::AtomicU64,
    /// Evaluations whose cycle simulation agreed with the analytic model
    /// within [`FIDELITY_TOLERANCE`] — the surrogate-vs-sim fidelity signal.
    fidelity_hits: std::sync::atomic::AtomicU64,
}

impl HwAwareEvaluator {
    /// Builds the evaluator for a model of `layers` layers. The per-layer
    /// workloads (planted sparsity drawn from the configured distribution)
    /// and their dense reference outputs are generated here, fanned out
    /// across cores.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn new(cfg: EvalConfig, layers: usize) -> Self {
        assert!(layers > 0, "at least one layer is required");
        let layers = sofa_par::par_map_index(layers, |i| {
            let w = AttentionWorkload::generate(
                &cfg.distribution,
                cfg.queries,
                cfg.seq_len,
                cfg.input_dim,
                cfg.head_dim,
                cfg.seed + i as u64,
            );
            let dense = w.dense_output();
            (w, dense)
        });
        HwAwareEvaluator {
            cfg,
            layers,
            layer_evals: std::sync::atomic::AtomicU64::new(0),
            fidelity_hits: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The evaluation setup.
    pub fn config(&self) -> &EvalConfig {
        &self.cfg
    }

    /// Per-layer cycle simulations this evaluator has run.
    pub fn layer_evals(&self) -> u64 {
        self.layer_evals.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// How many of those agreed with the analytic model within
    /// [`FIDELITY_TOLERANCE`].
    pub fn fidelity_hits(&self) -> u64 {
        self.fidelity_hits
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Snapshots the evaluation counters into `reg` as
    /// `dse.evaluator.layer_evals` / `dse.evaluator.fidelity_hits` counters
    /// plus a `dse.evaluator.fidelity_rate` gauge.
    pub fn record_metrics(&self, reg: &mut sofa_obs::MetricsRegistry) {
        let evals = self.layer_evals();
        let hits = self.fidelity_hits();
        reg.inc("dse.evaluator.layer_evals", evals);
        reg.inc("dse.evaluator.fidelity_hits", hits);
        reg.set_gauge(
            "dse.evaluator.fidelity_rate",
            if evals == 0 {
                0.0
            } else {
                hits as f64 / evals as f64
            },
        );
    }

    /// Number of layers candidates must provide tile sizes for.
    pub fn layers(&self) -> usize {
        self.layers.len()
    }

    /// The paper search space matched to this evaluator's layer count and
    /// sequence length.
    pub fn space(&self) -> DseSpace {
        DseSpace::paper_space(self.layers.len(), self.cfg.seq_len)
    }

    /// Scores one candidate (see the module docs for the lowering chain).
    ///
    /// # Panics
    ///
    /// Panics if the candidate's layer count differs from the evaluator's.
    pub fn evaluate(&self, c: &DseCandidate) -> CandidateEval {
        assert_eq!(
            c.tile_sizes.len(),
            self.layers.len(),
            "candidate layer count mismatch"
        );
        // Layers are independent; nested invocations (e.g. from
        // `evaluate_batch`) degrade to sequential without changing results.
        let per_layer = sofa_par::par_map_index(self.layers.len(), |i| self.evaluate_layer(i, c));
        let loss = per_layer.iter().map(|l| l.0).sum::<f64>() / per_layer.len() as f64;
        let cycles = per_layer.iter().map(|l| l.1).sum::<u64>();
        let energy_pj = per_layer.iter().map(|l| l.2).sum::<f64>();
        CandidateEval {
            candidate: c.clone(),
            metrics: MetricVector {
                loss,
                cycles,
                energy_pj,
                area_mm2: candidate_area_mm2(c),
            },
        }
    }

    /// Scores a batch of candidates, fanning out across cores
    /// (`sofa_par::par_map`). Bit-identical to calling
    /// [`HwAwareEvaluator::evaluate`] per candidate, at any `SOFA_THREADS` —
    /// the differential property test in `tests/property_tests.rs` enforces
    /// this.
    pub fn evaluate_batch(&self, candidates: &[DseCandidate]) -> Vec<CandidateEval> {
        sofa_par::par_map(candidates, |c| self.evaluate(c))
    }

    /// One layer's `(loss, cycles, energy_pj)` at the candidate's operating
    /// point.
    fn evaluate_layer(&self, layer: usize, c: &DseCandidate) -> (f64, u64, f64) {
        let (workload, dense) = &self.layers[layer];
        let op = c.operating_point();
        let bc = op.tile(layer);
        let result = SofaPipeline::new(PipelineConfig::for_layer(&op, layer)).run(workload);
        let loss = proxy_loss(&result.output, dense);

        // Lower the measured selection into the hardware models: the task
        // carries the *measured* key-union fraction (not the analytic
        // expectation), and the cycle simulator replays the run's real
        // per-tile selection counts.
        let stats = result.tile_selection_stats(bc);
        let mut task = AttentionTask::at_layer(
            self.cfg.queries,
            self.cfg.seq_len,
            self.cfg.heads * self.cfg.head_dim,
            self.cfg.heads,
            &op,
            layer,
        );
        task.key_union_fraction =
            (result.keys_generated as f64 / self.cfg.seq_len as f64).clamp(1e-6, 1.0);

        let mut sim = CycleSim::new(self.cfg.hw);
        sim.params.min_tile_cycles = TILE_CONTROL_CYCLES;
        // Calibrated against the burst-latency model (not hardwired): fine
        // tilings issue more, smaller requests for the same bytes, and with
        // a bandwidth-only channel that overhead would be invisible to the
        // cycles objective.
        sim.params = sim.params.with_dram_command_calibration(&self.cfg.hw);
        // One lowering serves both the DRAM-request count and the replay.
        let job = sim.job(&task, Some(&stats));
        let requests = job.dram_requests();
        let report = sim.run_job(&job);
        let analytic = sim.accel.simulate(&task);
        self.layer_evals
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if report
            .compare(&analytic, self.cfg.hw.freq_hz)
            .agrees_within(FIDELITY_TOLERANCE)
        {
            self.fidelity_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }

        let compute_j = compute_energy_j(&result.total_ops());
        let memory_j =
            analytic.energy.sram_j + analytic.energy.interface_j + analytic.energy.dram_j;
        let energy_pj = (compute_j + memory_j) * 1e12 + requests as f64 * DRAM_ACTIVATION_PJ;
        (loss, report.total_cycles, energy_pj)
    }
}

/// Area in mm² (28 nm) of an accelerator sized for the candidate's largest
/// tile. At the paper's `Bc = 16` this reproduces the Table III total
/// exactly; the SADS sorting network scales with `Bc·log₂Bc` (bitonic
/// width × depth) and the tile-resident ping-pong banks — modelled as 40 %
/// of the Memory module — scale linearly with `Bc`.
pub fn candidate_area_mm2(c: &DseCandidate) -> f64 {
    let area = AreaModel::paper_28nm();
    let bc = c.tile_sizes.iter().copied().max().unwrap_or(16).max(2) as f64;
    let sort_scale = (bc * bc.log2()) / (AREA_REFERENCE_BC * AREA_REFERENCE_BC.log2());
    let mem_scale = 0.6 + 0.4 * bc / AREA_REFERENCE_BC;
    Module::ALL
        .iter()
        .map(|&m| {
            let a = area.module_area_mm2(m);
            match m {
                Module::SadsSort => a * sort_scale,
                Module::Memory => a * mem_scale,
                _ => a,
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(keep: f64, bc: usize, layers: usize) -> DseCandidate {
        DseCandidate::uniform(keep, bc, layers)
    }

    #[test]
    fn dominance_is_strict_and_irreflexive() {
        let a = MetricVector {
            loss: 0.1,
            cycles: 100,
            energy_pj: 50.0,
            area_mm2: 5.0,
        };
        let better = MetricVector { cycles: 90, ..a };
        let mixed = MetricVector {
            loss: 0.05,
            cycles: 120,
            ..a
        };
        assert!(better.dominates(&a));
        assert!(!a.dominates(&better));
        assert!(!a.dominates(&a), "dominance is irreflexive");
        assert!(!mixed.dominates(&a) && !a.dominates(&mixed));
    }

    #[test]
    fn evaluator_produces_finite_positive_metrics() {
        let eval = HwAwareEvaluator::new(EvalConfig::tiny(3), 2);
        let e = eval.evaluate(&uniform(0.25, 16, 2));
        assert!(e.metrics.loss.is_finite() && e.metrics.loss >= 0.0);
        assert!(e.metrics.cycles > 0);
        assert!(e.metrics.energy_pj > 0.0);
        assert!(e.metrics.area_mm2 > 0.0);
    }

    #[test]
    fn keeping_more_pairs_costs_cycles_and_energy() {
        let eval = HwAwareEvaluator::new(EvalConfig::tiny(5), 2);
        let sparse = eval.evaluate(&uniform(0.10, 16, 2));
        let dense = eval.evaluate(&uniform(0.50, 16, 2));
        assert!(dense.metrics.cycles > sparse.metrics.cycles);
        assert!(dense.metrics.energy_pj > sparse.metrics.energy_pj);
        assert!(dense.metrics.loss <= sparse.metrics.loss + 1e-6);
    }

    #[test]
    fn per_layer_tile_sizes_are_not_averaged() {
        // A mixed-tile candidate must not score like the uniform candidate at
        // the mean tile size — the regression the old example's loss closure
        // had (it collapsed per-layer tiles into one mean `bc`).
        let eval = HwAwareEvaluator::new(EvalConfig::tiny(7), 2);
        let mixed = eval.evaluate(&DseCandidate {
            keep_ratios: vec![0.25, 0.25],
            tile_sizes: vec![4, 28],
        });
        let mean = eval.evaluate(&uniform(0.25, 16, 2));
        assert_ne!(
            mixed.metrics, mean.metrics,
            "distinct tilings must be distinguishable"
        );
        // The mixed candidate pays the larger tile's area.
        assert!(mixed.metrics.area_mm2 > mean.metrics.area_mm2);
    }

    #[test]
    fn area_model_reproduces_table_iii_at_the_reference_tile() {
        let at_16 = candidate_area_mm2(&uniform(0.25, 16, 4));
        assert!(
            (at_16 - AreaModel::paper_28nm().total_area_mm2()).abs() < 1e-9,
            "reference tile must reproduce Table III: {at_16}"
        );
        let at_2 = candidate_area_mm2(&uniform(0.25, 2, 4));
        let at_32 = candidate_area_mm2(&uniform(0.25, 32, 4));
        assert!(at_2 < at_16 && at_16 < at_32);
        // Area follows the *largest* tile across layers.
        let mixed = candidate_area_mm2(&DseCandidate {
            keep_ratios: vec![0.25, 0.25],
            tile_sizes: vec![2, 32],
        });
        assert!((mixed - at_32).abs() < 1e-9);
    }

    #[test]
    fn evaluation_counters_track_layer_sims() {
        let eval = HwAwareEvaluator::new(EvalConfig::tiny(11), 2);
        assert_eq!(eval.layer_evals(), 0);
        eval.evaluate(&uniform(0.25, 16, 2));
        eval.evaluate(&uniform(0.50, 8, 2));
        assert_eq!(eval.layer_evals(), 4, "two candidates x two layers");
        assert!(eval.fidelity_hits() <= eval.layer_evals());
        let mut reg = sofa_obs::MetricsRegistry::new();
        eval.record_metrics(&mut reg);
        assert_eq!(reg.counter("dse.evaluator.layer_evals"), 4);
        let rate = reg.gauge("dse.evaluator.fidelity_rate").unwrap();
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn wrong_layer_count_panics() {
        let eval = HwAwareEvaluator::new(EvalConfig::tiny(1), 2);
        let _ = eval.evaluate(&uniform(0.25, 16, 3));
    }
}
