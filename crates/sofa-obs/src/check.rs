//! Validity checking of Chrome trace-event JSON files — the CI regression
//! gate runs this over the `serve_trace` artifact so a malformed or
//! time-travelling trace fails the build instead of silently rendering
//! wrong in Perfetto.
//!
//! Checks, in order:
//!
//! 1. the file parses as JSON and has a `traceEvents` array (top-level
//!    array form is also accepted, per the Chrome spec);
//! 2. every event is an object with a one-character `ph` phase, numeric
//!    `pid`/`tid`, a string `name`, and — for non-metadata phases — a
//!    non-negative numeric `ts` (plus `dur` on `"X"` complete events);
//! 3. per `(pid, tid)` track, timestamps are non-decreasing in file order
//!    (the recorder emits in event-loop order, so a violation means a
//!    merge bug, not viewer pedantry);
//! 4. `"B"`/`"E"` duration events balance per track (this repo's recorder
//!    emits only complete spans, but hand-written traces must not leak
//!    unclosed spans past the checker).

use crate::json::{parse, Json};
use std::collections::BTreeMap;

/// Summary of a validated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Total events in the file.
    pub events: usize,
    /// Distinct `(pid, tid)` tracks.
    pub tracks: usize,
    /// Complete (`"X"`) span events.
    pub spans: usize,
    /// Counter (`"C"`) samples.
    pub counter_samples: usize,
    /// Instant (`"i"`/`"I"`) events.
    pub instants: usize,
    /// Largest timestamp seen (simulated cycles).
    pub max_ts: u64,
}

/// Validates `text` as a Chrome trace-event JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = match &doc {
        Json::Arr(a) => a.as_slice(),
        Json::Obj(_) => doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or("missing \"traceEvents\" array")?,
        _ => return Err("top level must be an object or an array".to_string()),
    };

    let mut stats = TraceStats {
        events: events.len(),
        ..TraceStats::default()
    };
    // Per-track last timestamp and open "B" span depth.
    let mut last_ts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut open_spans: BTreeMap<(u64, u64), i64> = BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let ctx = |what: &str| format!("event {i}: {what}");
        if ev.as_obj().is_none() {
            return Err(ctx("not an object"));
        }
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing \"ph\""))?;
        if ph.chars().count() != 1 {
            return Err(ctx(&format!("bad phase {ph:?}")));
        }
        let num_field = |key: &str| -> Result<u64, String> {
            let n = ev
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| ctx(&format!("missing numeric \"{key}\"")))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(ctx(&format!("\"{key}\" must be a non-negative integer")));
            }
            Ok(n as u64)
        };
        let pid = num_field("pid")?;
        let tid = num_field("tid")?;
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(ctx("missing string \"name\""));
        }
        if ph == "M" {
            continue; // Metadata events carry no timestamp.
        }
        let ts = num_field("ts")?;
        stats.max_ts = stats.max_ts.max(ts);
        let track = (pid, tid);
        if let Some(&prev) = last_ts.get(&track) {
            if ts < prev {
                return Err(ctx(&format!(
                    "timestamp {ts} goes backwards on track (pid {pid}, tid {tid}); \
                     previous was {prev}"
                )));
            }
        }
        last_ts.insert(track, ts);
        match ph {
            "X" => {
                num_field("dur")?;
                stats.spans += 1;
            }
            "C" => stats.counter_samples += 1,
            "i" | "I" => stats.instants += 1,
            "B" => *open_spans.entry(track).or_insert(0) += 1,
            "E" => {
                let depth = open_spans.entry(track).or_insert(0);
                *depth -= 1;
                if *depth < 0 {
                    return Err(ctx(&format!(
                        "\"E\" without matching \"B\" on track (pid {pid}, tid {tid})"
                    )));
                }
            }
            _ => {} // Other phases (flow, async, …) pass through unchecked.
        }
    }

    if let Some(((pid, tid), depth)) = open_spans.iter().find(|(_, &d)| d != 0) {
        return Err(format!(
            "{depth} unclosed \"B\" span(s) on track (pid {pid}, tid {tid})"
        ));
    }
    stats.tracks = last_ts.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ArgValue, TraceRecorder};

    fn recorded_trace() -> String {
        let mut r = TraceRecorder::enabled();
        r.process_name(0, "pipeline");
        r.thread_name(0, 0, "predict");
        r.complete(0, 0, "tile0", 0, 10, &[("kept", ArgValue::U64(3))]);
        r.complete(0, 0, "tile1", 10, 12, &[]);
        r.instant(0, 1, "reroute", 5, &[]);
        r.counter(0, 2, "queue", 0, &[("depth", 1.0)]);
        r.counter(0, 2, "queue", 8, &[("depth", 0.0)]);
        r.to_chrome_json()
    }

    #[test]
    fn accepts_recorder_output() {
        let stats = validate_chrome_trace(&recorded_trace()).expect("valid");
        assert_eq!(stats.events, 7);
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.counter_samples, 2);
        assert_eq!(stats.tracks, 3);
        assert_eq!(stats.max_ts, 10);
    }

    #[test]
    fn accepts_top_level_array_form() {
        let t = "[{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":2,\"ts\":3,\
                 \"name\":\"x\",\"args\":{}}]";
        assert_eq!(validate_chrome_trace(t).unwrap().instants, 1);
    }

    #[test]
    fn rejects_backwards_time_on_one_track() {
        let t = "{\"traceEvents\":[\
                 {\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":0,\"ts\":10,\"name\":\"a\"},\
                 {\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":0,\"ts\":9,\"name\":\"b\"}]}";
        let err = validate_chrome_trace(t).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
    }

    #[test]
    fn allows_backwards_time_across_tracks() {
        let t = "{\"traceEvents\":[\
                 {\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":0,\"ts\":10,\"name\":\"a\"},\
                 {\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":1,\"ts\":3,\"name\":\"b\"}]}";
        assert!(validate_chrome_trace(t).is_ok());
    }

    #[test]
    fn rejects_unbalanced_duration_events() {
        let unclosed = "{\"traceEvents\":[\
                        {\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":1,\"name\":\"a\"}]}";
        assert!(validate_chrome_trace(unclosed)
            .unwrap_err()
            .contains("unclosed"));
        let stray_end = "{\"traceEvents\":[\
                         {\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":1,\"name\":\"a\"}]}";
        assert!(validate_chrome_trace(stray_end)
            .unwrap_err()
            .contains("without matching"));
        let balanced = "{\"traceEvents\":[\
                        {\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":1,\"name\":\"a\"},\
                        {\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":2,\"name\":\"a\"}]}";
        assert!(validate_chrome_trace(balanced).is_ok());
    }

    #[test]
    fn rejects_schema_violations() {
        for (bad, why) in [
            ("nonsense", "not valid JSON"),
            ("{}", "missing \"traceEvents\""),
            ("5", "top level"),
            ("{\"traceEvents\":[5]}", "not an object"),
            ("{\"traceEvents\":[{\"pid\":0}]}", "missing \"ph\""),
            (
                "{\"traceEvents\":[{\"ph\":\"i\",\"tid\":0,\"ts\":0,\"name\":\"x\"}]}",
                "missing numeric \"pid\"",
            ),
            (
                "{\"traceEvents\":[{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":0}]}",
                "missing string \"name\"",
            ),
            (
                "{\"traceEvents\":[{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"name\":\"x\"}]}",
                "missing numeric \"ts\"",
            ),
            (
                "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"name\":\"x\"}]}",
                "missing numeric \"dur\"",
            ),
            (
                "{\"traceEvents\":[{\"ph\":\"i\",\"pid\":-1,\"tid\":0,\"ts\":0,\"name\":\"x\"}]}",
                "non-negative",
            ),
        ] {
            let err = validate_chrome_trace(bad).unwrap_err();
            assert!(err.contains(why), "{bad:?}: got {err:?}, want {why:?}");
        }
    }

    #[test]
    fn metadata_events_need_no_timestamp() {
        let t = "{\"traceEvents\":[\
                 {\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
                  \"args\":{\"name\":\"p\"}}]}";
        let stats = validate_chrome_trace(t).unwrap();
        assert_eq!(stats.events, 1);
        assert_eq!(stats.tracks, 0);
    }
}
