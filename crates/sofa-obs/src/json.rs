//! A minimal self-contained JSON parser — just enough for the trace-validity
//! checker to re-read the Chrome trace-event files this crate writes (and
//! any spec-conformant trace). No serde: the build environment is offline
//! and the repo's JSON needs are deliberately tiny.

use std::collections::BTreeMap;

/// A parsed JSON value. Numbers are kept as `f64` (Chrome trace timestamps
/// fit exactly below 2^53 cycles, far beyond any simulated run).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted map; duplicate keys keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|o| o.get(key))
    }
}

/// Parses `text` as one JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{what} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut arr = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(arr));
        }
        loop {
            self.skip_ws();
            arr.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(arr));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this repo's
                            // writers; map lone surrogates to the replacement
                            // character rather than failing the checker.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always a valid boundary walk).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return self.err("raw control character in string");
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".to_string()));
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".to_string()));
    }

    #[test]
    fn parses_nested_structure() {
        let v = parse("{\"a\":[1,{\"b\":null},\"x\"],\"c\":{}}").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert!(v.get("c").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn round_trips_own_writers() {
        let mut m = crate::metrics::MetricsRegistry::new();
        m.inc("a.b", 3);
        m.set_gauge("g", 0.25);
        m.observe("h", &[1.0, 2.0], 1.5);
        let v = parse(&m.to_json()).unwrap();
        assert_eq!(
            v.get("counters").unwrap().get("a.b").unwrap().as_num(),
            Some(3.0)
        );
        assert_eq!(
            v.get("gauges").unwrap().get("g").unwrap().as_num(),
            Some(0.25)
        );
        let h = v.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_num(), Some(1.0));
    }
}
