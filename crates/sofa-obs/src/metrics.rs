//! A deterministic metrics registry: counters, gauges and fixed-bucket
//! histograms keyed by name, with stable (sorted) iteration order and a
//! single-line JSON snapshot export.
//!
//! All maps are `BTreeMap`s so a snapshot never depends on hash ordering —
//! the exported JSON is a pure function of the recorded values and can be
//! golden-tested byte-for-byte.
//!
//! Naming convention (see the README "Observability" section): metric names
//! are `subsystem.entity.quantity` in `snake_case` dotted paths, e.g.
//! `sim.dram.bytes_read`, `serve.inst0.requests_completed`,
//! `dse.evaluator.fidelity_hits`, `core.ops.mul`.

use std::collections::BTreeMap;

/// A fixed-bucket histogram: `bounds.len() + 1` buckets where bucket `i`
/// counts observations `v <= bounds[i]` (the last bucket is the overflow).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bucket bounds, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Per-bucket counts (`bounds.len() + 1` entries, last is overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    fn to_json(&self) -> String {
        let bounds = self
            .bounds
            .iter()
            .map(|b| fmt_f64(*b))
            .collect::<Vec<_>>()
            .join(",");
        let buckets = self
            .buckets
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let (min, max) = if self.count == 0 {
            ("null".to_string(), "null".to_string())
        } else {
            (fmt_f64(self.min), fmt_f64(self.max))
        };
        format!(
            "{{\"bounds\":[{bounds}],\"buckets\":[{buckets}],\"count\":{},\
             \"sum\":{},\"min\":{min},\"max\":{max}}}",
            self.count,
            fmt_f64(self.sum),
        )
    }
}

/// Deterministic JSON rendering of a finite float: Rust's shortest
/// round-trip `Display`, which is platform-independent. Non-finite values
/// (not representable in JSON) render as `null`.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Named counters, gauges and histograms with stable iteration order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name` (created at zero on first use).
    pub fn inc(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets gauge `name` to `v` (last write wins).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records `v` into histogram `name`, creating it with `bounds` on first
    /// use. Later calls ignore `bounds` (the first registration pins them).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not strictly increasing on first registration.
    pub fn observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Current value of counter `name` (zero when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Single-line JSON snapshot:
    /// `{"counters":{…},"gauges":{…},"histograms":{…}}`, keys sorted — a
    /// pure function of the recorded values, byte-stable across runs and
    /// thread counts.
    pub fn to_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| format!("{}:{v}", json_string(k)))
            .collect::<Vec<_>>()
            .join(",");
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| format!("{}:{}", json_string(k), fmt_f64(*v)))
            .collect::<Vec<_>>()
            .join(",");
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| format!("{}:{}", json_string(k), h.to_json()))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\
             \"histograms\":{{{histograms}}}}}"
        )
    }
}

/// Escapes `s` as a JSON string literal (same escaping as the bench-table
/// artifact writer, so all repo JSON speaks one dialect).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("a"), 0);
        m.inc("a", 2);
        m.inc("a", 3);
        assert_eq!(m.counter("a"), 5);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.gauge("g"), None);
        m.set_gauge("g", 1.5);
        m.set_gauge("g", 2.5);
        assert_eq!(m.gauge("g"), Some(2.5));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut m = MetricsRegistry::new();
        for v in [0.5, 1.0, 3.0, 100.0] {
            m.observe("h", &[1.0, 10.0], v);
        }
        let h = m.histogram("h").unwrap();
        assert_eq!(h.buckets(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 104.5).abs() < 1e-12);
        assert!((h.mean() - 26.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let mut m = MetricsRegistry::new();
        m.observe("h", &[2.0, 1.0], 0.0);
    }

    #[test]
    fn json_snapshot_is_sorted_and_single_line() {
        let mut m = MetricsRegistry::new();
        m.inc("z.count", 1);
        m.inc("a.count", 2);
        m.set_gauge("m.level", 0.25);
        m.observe("h.lat", &[10.0], 5.0);
        let j = m.to_json();
        assert_eq!(j.lines().count(), 1);
        assert!(j.find("\"a.count\"").unwrap() < j.find("\"z.count\"").unwrap());
        assert_eq!(
            j,
            "{\"counters\":{\"a.count\":2,\"z.count\":1},\
             \"gauges\":{\"m.level\":0.25},\
             \"histograms\":{\"h.lat\":{\"bounds\":[10],\"buckets\":[1,0],\
             \"count\":1,\"sum\":5,\"min\":5,\"max\":5}}}"
        );
    }

    #[test]
    fn empty_histogram_min_max_render_null() {
        let h = Histogram::new(&[1.0]);
        assert!(h.to_json().contains("\"min\":null,\"max\":null"));
        assert_eq!(h.mean(), 0.0);
    }
}
