//! A deterministic span/event recorder stamped in simulated cycles, with
//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! Tracks are addressed by `(pid, tid)` exactly as in the Chrome format:
//! instrumented layers pick a process id per simulated entity (a pipeline
//! instance, the serving scheduler) and a thread id per track within it
//! (one per pipeline stage, per request, per counter series), then name
//! them with [`TraceRecorder::process_name`] / [`TraceRecorder::thread_name`]
//! metadata events.
//!
//! Determinism:
//!
//! * a [`TraceRecorder::disabled`] recorder is a `bool` branch at the top of
//!   every record method — no allocation, no formatting, so traced code
//!   paths cost nothing and stay bit-identical with tracing off;
//! * parallel sections [`TraceRecorder::fork`] one child recorder per work
//!   item and [`TraceRecorder::absorb`] them back **in caller order** after
//!   the parallel map returns (the execution engine returns results in input
//!   order), so the same run produces a byte-identical trace at any
//!   `SOFA_THREADS`;
//! * timestamps are simulated cycles from the event-driven simulators, never
//!   wall clock, so repeated runs are byte-identical too.

use crate::metrics::{fmt_f64, json_string};

/// A typed argument value attached to a trace event. `Str` is restricted to
/// `&'static str` so building an argument list never allocates — the
/// disabled-recorder fast path stays allocation-free at every call site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer argument.
    U64(u64),
    /// A float argument (rendered with shortest round-trip formatting).
    F64(f64),
    /// A static string argument.
    Str(&'static str),
}

impl ArgValue {
    fn to_json(self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::F64(v) => fmt_f64(v),
            ArgValue::Str(s) => json_string(s),
        }
    }
}

/// One recorded trace event (internal representation; serialised by
/// [`TraceRecorder::to_chrome_json`]).
#[derive(Debug, Clone, PartialEq)]
enum TraceEvent {
    /// A Chrome `"X"` complete event: a span of `dur` cycles from `ts`.
    Complete {
        pid: u64,
        tid: u64,
        ts: u64,
        dur: u64,
        name: String,
        args: Vec<(String, ArgValue)>,
    },
    /// A Chrome `"i"` thread-scoped instant event.
    Instant {
        pid: u64,
        tid: u64,
        ts: u64,
        name: String,
        args: Vec<(String, ArgValue)>,
    },
    /// A Chrome `"C"` counter sample: one or more named series values.
    Counter {
        pid: u64,
        tid: u64,
        ts: u64,
        name: String,
        series: Vec<(String, f64)>,
    },
    /// A Chrome `"M"` `process_name` metadata event.
    ProcessName { pid: u64, name: String },
    /// A Chrome `"M"` `thread_name` metadata event.
    ThreadName { pid: u64, tid: u64, name: String },
}

impl TraceEvent {
    fn to_json(&self) -> String {
        let args_json = |args: &[(String, ArgValue)]| {
            args.iter()
                .map(|(k, v)| format!("{}:{}", json_string(k), v.to_json()))
                .collect::<Vec<_>>()
                .join(",")
        };
        match self {
            TraceEvent::Complete {
                pid,
                tid,
                ts,
                dur,
                name,
                args,
            } => format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
                 \"name\":{},\"args\":{{{}}}}}",
                json_string(name),
                args_json(args),
            ),
            TraceEvent::Instant {
                pid,
                tid,
                ts,
                name,
                args,
            } => format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\
                 \"name\":{},\"args\":{{{}}}}}",
                json_string(name),
                args_json(args),
            ),
            TraceEvent::Counter {
                pid,
                tid,
                ts,
                name,
                series,
            } => format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"name\":{},\
                 \"args\":{{{}}}}}",
                json_string(name),
                series
                    .iter()
                    .map(|(k, v)| format!("{}:{}", json_string(k), fmt_f64(*v)))
                    .collect::<Vec<_>>()
                    .join(","),
            ),
            TraceEvent::ProcessName { pid, name } => format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":{}}}}}",
                json_string(name),
            ),
            TraceEvent::ThreadName { pid, tid, name } => format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                json_string(name),
            ),
        }
    }
}

/// The cycle-domain trace recorder. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceRecorder {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// A recorder that drops everything: every record call is one branch,
    /// no allocation. This is the default sink of all instrumented layers.
    pub fn disabled() -> Self {
        TraceRecorder {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// A recorder that keeps events for export.
    pub fn enabled() -> Self {
        TraceRecorder {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Whether this recorder keeps events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A child recorder with the same enabled flag and an empty buffer
    /// (`Vec::new` does not allocate). Parallel sections fork one child per
    /// work item and [`TraceRecorder::absorb`] them in caller order.
    pub fn fork(&self) -> Self {
        TraceRecorder {
            enabled: self.enabled,
            events: Vec::new(),
        }
    }

    /// Appends `child`'s events to this buffer. Call in the caller-order
    /// sequence of the forked work items to keep traces thread-count
    /// independent.
    pub fn absorb(&mut self, child: TraceRecorder) {
        if !self.enabled {
            return;
        }
        self.events.extend(child.events);
    }

    /// Names process `pid` in the trace viewer.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent::ProcessName {
            pid,
            name: name.to_string(),
        });
    }

    /// Names track `(pid, tid)` in the trace viewer.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent::ThreadName {
            pid,
            tid,
            name: name.to_string(),
        });
    }

    /// Records a complete span of `dur` cycles starting at `ts` on track
    /// `(pid, tid)`.
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts: u64,
        dur: u64,
        args: &[(&str, ArgValue)],
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent::Complete {
            pid,
            tid,
            ts,
            dur,
            name: name.to_string(),
            args: args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Records an instant event at `ts` on track `(pid, tid)`.
    pub fn instant(&mut self, pid: u64, tid: u64, name: &str, ts: u64, args: &[(&str, ArgValue)]) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent::Instant {
            pid,
            tid,
            ts,
            name: name.to_string(),
            args: args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Records a counter sample at `ts`: each `(series, value)` pair becomes
    /// one stacked series of the counter track `name`.
    pub fn counter(&mut self, pid: u64, tid: u64, name: &str, ts: u64, series: &[(&str, f64)]) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent::Counter {
            pid,
            tid,
            ts,
            name: name.to_string(),
            series: series.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Exports the buffer as Chrome trace-event JSON — one event per line so
    /// golden-trace diffs stay reviewable. Timestamps are simulated cycles
    /// (the viewer's time unit is nominal). Load the file in
    /// <https://ui.perfetto.dev> or `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"otherData\":{\"timebase\":\"simulated-cycles\"},");
        out.push_str("\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(&ev.to_json());
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = TraceRecorder::disabled();
        r.process_name(0, "p");
        r.thread_name(0, 1, "t");
        r.complete(0, 1, "span", 10, 5, &[("k", ArgValue::U64(1))]);
        r.instant(0, 1, "hit", 12, &[]);
        r.counter(0, 2, "depth", 12, &[("depth", 3.0)]);
        assert!(r.is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn enabled_recorder_exports_chrome_events() {
        let mut r = TraceRecorder::enabled();
        r.process_name(0, "pipeline");
        r.thread_name(0, 1, "sort");
        r.complete(
            0,
            1,
            "tile0",
            10,
            5,
            &[("kept", ArgValue::U64(7)), ("cls", ArgValue::Str("decode"))],
        );
        r.instant(0, 1, "reroute", 15, &[("to", ArgValue::F64(0.5))]);
        r.counter(0, 2, "queue", 15, &[("depth", 3.0)]);
        let j = r.to_chrome_json();
        assert!(j.contains("\"traceEvents\":["));
        assert!(j.contains(
            "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":10,\"dur\":5,\
             \"name\":\"tile0\",\"args\":{\"kept\":7,\"cls\":\"decode\"}}"
        ));
        assert!(j.contains("\"ph\":\"i\",\"s\":\"t\""));
        assert!(j.contains("\"name\":\"queue\",\"args\":{\"depth\":3}"));
        assert!(j.contains("\"process_name\""));
        assert!(j.contains("\"thread_name\""));
        // One event per line between the brackets.
        assert_eq!(j.lines().count(), 2 + r.len());
    }

    #[test]
    fn fork_absorb_preserves_caller_order() {
        let mut main = TraceRecorder::enabled();
        let mut kids: Vec<TraceRecorder> = (0..3).map(|_| main.fork()).collect();
        // Simulate out-of-order parallel completion: record in reverse.
        for (i, k) in kids.iter_mut().enumerate().rev() {
            k.instant(0, i as u64, "ev", i as u64, &[]);
        }
        for k in kids {
            main.absorb(k);
        }
        let j = main.to_chrome_json();
        let pos: Vec<usize> = (0..3)
            .map(|i| j.find(&format!("\"tid\":{i},")).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[1] < pos[2]);
    }

    #[test]
    fn fork_inherits_enabled_flag() {
        assert!(TraceRecorder::enabled().fork().is_enabled());
        assert!(!TraceRecorder::disabled().fork().is_enabled());
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let mut r = TraceRecorder::enabled();
            r.complete(1, 2, "s", 0, 4, &[("x", ArgValue::F64(0.125))]);
            r.to_chrome_json()
        };
        assert_eq!(build(), build());
    }
}
