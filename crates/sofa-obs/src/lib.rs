//! Deterministic observability for the SOFA reproduction stack.
//!
//! Two complementary sinks, both designed so their output can be
//! golden-tested byte-for-byte like every other artifact in this repo:
//!
//! * [`metrics::MetricsRegistry`] — named counters, gauges and fixed-bucket
//!   histograms with *stable iteration order* (sorted maps, no hash
//!   nondeterminism) and a single-line JSON snapshot export.
//! * [`trace::TraceRecorder`] — a span/event recorder stamped in **simulated
//!   cycles, not wall clock**, exporting Chrome trace-event JSON that loads
//!   directly in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Plus one streaming aggregate: [`sketch::QuantileSketch`], the
//! log-bucketed histogram serving reports use for O(1) latency percentiles
//! at fleet scale (deterministic, mergeable, ≤1/128 relative error).
//!
//! Determinism contract: a disabled recorder is a branch and nothing else
//! (no allocation, no formatting), so instrumented code paths produce
//! bit-identical results with tracing off; with tracing on, per-worker
//! buffers forked with [`trace::TraceRecorder::fork`] and merged in caller
//! order with [`trace::TraceRecorder::absorb`] make the trace byte-identical
//! at any `SOFA_THREADS`.
//!
//! [`check::validate_chrome_trace`] is a small self-contained validity
//! checker (schema, per-track timestamp monotonicity, balanced begin/end)
//! used by the CI regression gate on the exported trace artifact.

pub mod check;
pub mod json;
pub mod metrics;
pub mod sketch;
pub mod trace;

pub use check::{validate_chrome_trace, TraceStats};
pub use metrics::MetricsRegistry;
pub use sketch::QuantileSketch;
pub use trace::{ArgValue, TraceRecorder};
