//! Streaming quantile sketch for cycle-valued latency distributions.
//!
//! Serving reports used to keep every per-request latency and clone + sort
//! the whole vector on *each* percentile call — fine for hundreds of
//! requests, quadratic pain at fleet scale (a 1M-request trace asking for
//! p50/p95/p99 sorts three million-element vectors). [`QuantileSketch`] is
//! the HDR-histogram-style replacement: O(1) insertion into
//! exponentially-spaced buckets with 128 sub-buckets per octave, so any
//! quantile is answered in one bucket walk with a relative error of at most
//! 1/128 (≈0.8%) while values below 256 cycles stay exact.
//!
//! The sketch is deterministic (bucket index is a pure function of the
//! value; no sampling) and mergeable — node-level sketches combine into a
//! fleet-level one without re-touching any request.

/// Values below this resolve to their own exact bucket.
const EXACT: u64 = 256;
/// Sub-buckets per octave above the exact range.
const SUBBUCKETS: u64 = 128;

/// A fixed-shape log-bucketed histogram answering nearest-rank quantiles.
///
/// Recorded values land in buckets whose width is at most `value / 128`;
/// quantile queries return the bucket's lower bound (clamped to the observed
/// min/max), giving a deterministic under-estimate within 0.8% of the true
/// order statistic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuantileSketch {
    /// Bucket counts, grown on demand (index space is bounded: ≤ 7552 for
    /// the full `u64` range).
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index of `v`: identity below [`EXACT`], log-spaced with
/// [`SUBBUCKETS`] sub-buckets per octave above.
fn bucket_of(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    // Shift so the mantissa `v >> e` lands in [128, 256).
    let e = (63 - v.leading_zeros() as u64) - 7;
    (EXACT + (e - 1) * SUBBUCKETS + ((v >> e) - SUBBUCKETS)) as usize
}

/// Lower bound of bucket `idx` (exact inverse of [`bucket_of`]'s floor).
fn bucket_floor(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < EXACT {
        return idx;
    }
    let i = idx - EXACT;
    let e = i / SUBBUCKETS + 1;
    (i % SUBBUCKETS + SUBBUCKETS) << e
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sketch of every value yielded by `values`.
    pub fn collect(values: impl IntoIterator<Item = u64>) -> Self {
        let mut s = Self::new();
        for v in values {
            s.record(v);
        }
        s
    }

    /// Records one value. O(1); never samples or drops.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_of(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Folds another sketch into this one; equivalent to having recorded
    /// both value streams into one sketch.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of all recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Nearest-rank percentile `p`: a lower bound on the value whose rank is
    /// `ceil(p/100 · count)`, within 1/128 relative error (exact below 256).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]` or the sketch is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range");
        assert!(self.count > 0, "quantile of an empty sketch");
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        if rank == self.count {
            // The top rank is the observed maximum — report it exactly.
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_floor_inverts_bucket_of() {
        for v in (0..4096u64).chain([
            1 << 20,
            (1 << 20) + 137,
            u64::MAX / 3,
            u64::MAX - 1,
            u64::MAX,
        ]) {
            let idx = bucket_of(v);
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} above value {v}");
            // The bucket's floor maps back to the same bucket, and the error
            // is bounded by the bucket width (v/128 above the exact range).
            assert_eq!(bucket_of(floor), idx, "value {v}");
            if v >= EXACT {
                assert!(v - floor <= v / SUBBUCKETS, "value {v} floor {floor}");
            } else {
                assert_eq!(floor, v);
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let s = QuantileSketch::collect((1..=100).map(|v| v * 2));
        assert_eq!(s.percentile(50.0), 100);
        assert_eq!(s.percentile(95.0), 190);
        assert_eq!(s.percentile(100.0), 200);
        assert_eq!(s.percentile(1.0), 2);
        assert_eq!(s.count(), 100);
        assert_eq!(s.min(), 2);
        assert_eq!(s.max(), 200);
        assert!((s.mean() - 101.0).abs() < 1e-12);
    }

    #[test]
    fn large_values_stay_within_the_error_bound() {
        let values: Vec<u64> = (0..1000u64).map(|i| 10_000 + i * 997).collect();
        let s = QuantileSketch::collect(values.iter().copied());
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for p in [1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            let exact = sorted[rank.clamp(1, sorted.len()) - 1];
            let approx = s.percentile(p);
            assert!(approx <= exact, "p{p}: {approx} above exact {exact}");
            assert!(
                exact - approx <= exact / SUBBUCKETS,
                "p{p}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let s = QuantileSketch::collect((0..500u64).map(|i| i * i + 7));
        let mut last = 0;
        for p in 1..=100 {
            let v = s.percentile(p as f64);
            assert!(v >= last, "p{p} regressed: {v} < {last}");
            last = v;
        }
        assert_eq!(last, s.max());
    }

    #[test]
    fn merge_equals_recording_both_streams() {
        let a: Vec<u64> = (0..300).map(|i| i * 31).collect();
        let b: Vec<u64> = (0..200).map(|i| 100_000 + i * 53).collect();
        let mut merged = QuantileSketch::collect(a.iter().copied());
        merged.merge(&QuantileSketch::collect(b.iter().copied()));
        let direct = QuantileSketch::collect(a.into_iter().chain(b));
        assert_eq!(merged, direct);
    }

    #[test]
    fn single_value_answers_every_percentile() {
        let s = QuantileSketch::collect([123_456_789]);
        // Clamping to [min, max] makes a one-value sketch exact even far
        // above the exact range.
        assert_eq!(s.percentile(0.001), 123_456_789);
        assert_eq!(s.percentile(100.0), 123_456_789);
        assert_eq!(s.min(), s.max());
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn zero_percentile_panics() {
        QuantileSketch::collect([1]).percentile(0.0);
    }

    #[test]
    #[should_panic(expected = "empty sketch")]
    fn empty_sketch_panics() {
        QuantileSketch::new().percentile(50.0);
    }
}
