//! The event-driven cycle-level simulator of the four-stage SOFA pipeline.
//!
//! [`CycleSim`] replays an [`AttentionTask`] tile by tile through
//! DLZS predict → SADS sort → on-demand KV generation → SU-FA formal compute,
//! with the structural constraints the analytic model abstracts away:
//!
//! * stages communicate through double-buffered (ping-pong) SRAM banks — a
//!   producer stalls when both banks are occupied, a consumer starves when
//!   none is ready;
//! * all off-chip traffic shares one DRAM channel with round-robin
//!   arbitration and per-burst latency — on-demand KV fetches contend with
//!   prediction streams and output writeback;
//! * the selected-KV fetch of a tile can only be *issued* once the sorting
//!   stage has decided which keys the tile needs (the on-demand property);
//! * per-tile work comes from [`SofaAccelerator::tile_descriptors`], so real
//!   per-tile selection counts (Distributed Cluster Effect imbalance) shift
//!   load between tiles.
//!
//! On compute-bound configurations the simulated cycle count converges to the
//! analytic `SimReport` (same engine throughput models, same traffic); on
//! memory-bound configurations it diverges upward and attributes the gap to
//! per-stage DRAM stalls — the behaviour [`CycleSim::validate`] checks.

use crate::dram::{DramChannel, DramRequest};
use crate::event::{EventKind, QueueKind, SimQueue};
use crate::pingpong::PingPongBuffer;
use crate::report::{
    BufferActivity, CycleComparison, CycleReport, DramActivity, StageActivity, TimelineEntry,
};
use crate::tracks::{announce_pipeline, bank_track, PID_SINGLE, TID_BANK_BASE, TID_DRAM_QUEUE};
use sofa_core::tiling::TileSelectionStats;
use sofa_hw::accel::{AttentionTask, SofaAccelerator, StageCycles};
use sofa_hw::config::HwConfig;
use sofa_hw::descriptor::TileWork;
use sofa_hw::engines::{DlzsWork, KvGenWork, SortWork, SuFaWork};
use sofa_obs::{ArgValue, TraceRecorder};

pub(crate) const STAGES: usize = 4;

/// Structural knobs of the simulated microarchitecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimParams {
    /// Ping-pong banks per stage boundary (the paper's design uses 2).
    pub buffer_depth: usize,
    /// Fixed DRAM latency from request issue to first data beat (cycles).
    pub burst_latency: u64,
    /// How many tiles ahead the prediction stage prefetches its key stream
    /// (0 is treated as 1, i.e. fetch-on-demand).
    pub prefetch_depth: usize,
    /// Minimum cycles a tile occupies a stage (control overhead floor).
    pub min_tile_cycles: u64,
    /// DRAM queueing delay beyond which a request overrides round-robin
    /// arbitration (priority aging); `u64::MAX` disables aging. Mostly
    /// relevant to multi-instance simulation, where streams can starve
    /// each other.
    pub dram_age_threshold: u64,
    /// Channel cycles every DRAM request occupies beyond its transfer time
    /// (row activation / command serialisation). 0 — the default — keeps the
    /// classic bandwidth-only channel; the hardware-aware DSE evaluator sets
    /// it so fine tilings pay for their extra requests.
    pub dram_command_cycles: u64,
    /// Event-queue implementation the simulation schedules through. Both
    /// kinds pop in the identical order (earliest first, FIFO ties), so
    /// this is a pure performance knob: [`QueueKind::Heap`] (default) for
    /// small runs, [`QueueKind::Calendar`] for fleet-scale event volumes.
    pub queue_kind: QueueKind,
}

impl SimParams {
    /// Returns these parameters with `dram_command_cycles` calibrated
    /// against the burst-latency model for `cfg`'s bandwidth
    /// ([`crate::dram::calibrate_dram_command_cycles`]). At the
    /// paper-default timing the calibration lands on 32 cycles. The DSE
    /// evaluator and the serving simulations both run with this enabled, so
    /// request-granularity DRAM effects (many small scattered fetches under
    /// fine tilings) are visible to the latency percentiles and to routing
    /// decisions; the plain [`Default`] keeps the classic bandwidth-only
    /// channel for the single-task experiments and their goldens.
    pub fn with_dram_command_calibration(mut self, cfg: &HwConfig) -> Self {
        let bytes_per_cycle = cfg.dram_bandwidth_bps / cfg.freq_hz;
        self.dram_command_cycles =
            crate::dram::calibrate_dram_command_cycles(self.burst_latency, bytes_per_cycle);
        self
    }
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            buffer_depth: 2,
            burst_latency: 64,
            prefetch_depth: 2,
            min_tile_cycles: 1,
            dram_age_threshold: u64::MAX,
            dram_command_cycles: 0,
            queue_kind: QueueKind::Heap,
        }
    }
}

/// The cycle-level simulator. Construct with [`CycleSim::new`], optionally
/// toggle the ablation flags on [`CycleSim::accel`], then [`CycleSim::run`].
#[derive(Debug, Clone, Copy)]
pub struct CycleSim {
    /// The accelerator being simulated; its `rass` / `sufa` /
    /// `include_kv_generation` flags steer the per-tile descriptors.
    pub accel: SofaAccelerator,
    /// Microarchitectural parameters of the simulation.
    pub params: SimParams,
}

impl CycleSim {
    /// Creates a simulator of the full-featured accelerator at `cfg`.
    pub fn new(cfg: HwConfig) -> Self {
        CycleSim {
            accel: SofaAccelerator::new(cfg),
            params: SimParams::default(),
        }
    }

    /// Wraps an existing (possibly ablated) accelerator model.
    pub fn from_accelerator(accel: SofaAccelerator, params: SimParams) -> Self {
        CycleSim { accel, params }
    }

    /// Simulates `task` with expected-value per-tile selection counts.
    pub fn run(&self, task: &AttentionTask) -> CycleReport {
        self.run_with_stats(task, None)
    }

    /// Simulates `task` and cross-checks against the analytic model.
    pub fn validate(&self, task: &AttentionTask) -> (CycleReport, CycleComparison) {
        let report = self.run(task);
        let analytic = self.accel.simulate(task);
        let cmp = report.compare(&analytic, self.accel.config().freq_hz);
        (report, cmp)
    }

    /// Simulates `task`, optionally driven by real per-tile selection counts
    /// from `sofa_core::pipeline::PipelineResult::tile_selection_stats`.
    pub fn run_with_stats(
        &self,
        task: &AttentionTask,
        stats: Option<&TileSelectionStats>,
    ) -> CycleReport {
        self.run_traced(task, stats, &mut TraceRecorder::disabled())
    }

    /// [`CycleSim::run_with_stats`] with a trace sink: per-stage busy/stall
    /// spans, the DRAM queue-depth counter and the ping-pong bank-occupancy
    /// counters are recorded into `obs` in simulated cycles (see
    /// [`crate::tracks`] for the track layout). A disabled recorder costs a
    /// branch per record point and the report is bit-identical either way.
    /// Use a fresh recorder per run — every run restarts simulated time at
    /// cycle zero, so appending two runs to one buffer would violate the
    /// per-track timestamp monotonicity the trace checker enforces.
    pub fn run_traced(
        &self,
        task: &AttentionTask,
        stats: Option<&TileSelectionStats>,
        obs: &mut TraceRecorder,
    ) -> CycleReport {
        let PipelineJob { work, cycles } = self.job(task, stats);
        Engine::new(self, &work, cycles, obs).run()
    }

    /// Replays an already-lowered [`PipelineJob`] (see [`CycleSim::job`]).
    /// Identical to [`CycleSim::run_with_stats`] on the task the job was
    /// lowered from; callers that need both the descriptors and the
    /// simulation pay the lowering once.
    pub fn run_job(&self, job: &PipelineJob) -> CycleReport {
        self.run_job_traced(job, &mut TraceRecorder::disabled())
    }

    /// [`CycleSim::run_job`] with a trace sink (see [`CycleSim::run_traced`]).
    pub fn run_job_traced(&self, job: &PipelineJob, obs: &mut TraceRecorder) -> CycleReport {
        Engine::new(self, &job.work, job.cycles.clone(), obs).run()
    }

    /// Lowers `task` into a replayable [`PipelineJob`]: the per-tile work
    /// descriptors plus the per-tile stage cycle counts this simulator would
    /// charge. The multi-instance simulator (`crate::multi`) and the serving
    /// scheduler consume jobs instead of tasks so the lowering cost is paid
    /// once per request, not once per simulation.
    pub fn job(&self, task: &AttentionTask, stats: Option<&TileSelectionStats>) -> PipelineJob {
        let work = self.accel.tile_descriptors(task, stats);
        let cycles = self.tile_cycles(task, &work);
        PipelineJob { work, cycles }
    }

    /// Per-tile compute cycles of each stage.
    ///
    /// Each stage's *whole-task* cycle count comes from the same engine
    /// models the analytic `SofaAccelerator::simulate` uses (including the
    /// fill latency and the query-line utilization scaling), evaluated on the
    /// summed per-tile work. That total is then distributed over the tiles
    /// proportionally to each tile's share of the stage's work — so the
    /// simulated stage-busy totals match the analytic stage cycles exactly,
    /// and every deviation of the end-to-end cycle count is attributable to
    /// pipeline structure (buffers, DRAM, imbalance), not to a different
    /// compute model.
    fn tile_cycles(&self, task: &AttentionTask, work: &[TileWork]) -> Vec<[u64; STAGES]> {
        let cfg = self.accel.config();
        let util = task.line_utilization(cfg.query_parallelism);
        let floor = self.params.min_tile_cycles;
        let n = work.len();

        // Aggregate work per stage (equals the analytic model's amounts when
        // the descriptors come from expected values).
        let agg = work.iter().fold(
            (
                DlzsWork::default(),
                SortWork::default(),
                KvGenWork::default(),
                SuFaWork::default(),
            ),
            |mut acc, w| {
                acc.0.shift_ops += w.dlzs.shift_ops;
                acc.0.lz_encodes += w.dlzs.lz_encodes;
                acc.1.elements += w.sort.elements;
                acc.2.macs += w.kvgen.macs;
                acc.3.macs += w.sufa.macs;
                acc.3.exps += w.sufa.exps;
                acc.3.divs += w.sufa.divs;
                acc
            },
        );
        let totals = StageCycles::from_work(cfg, &agg.0, &agg.1, &agg.2, &agg.3, util);
        let stage_totals = [
            totals.prediction,
            totals.sorting,
            totals.kv_generation,
            totals.formal,
        ];

        // Per-tile share of each stage's work (uniform when a stage has no
        // work at all, so fixed costs still spread over the tiles).
        let weights: [Vec<f64>; STAGES] = [
            work.iter()
                .map(|w| {
                    (w.dlzs.shift_ops as f64 / cfg.dlzs_ops_per_cycle())
                        .max(w.dlzs.lz_encodes as f64 / cfg.query_parallelism as f64)
                })
                .collect(),
            work.iter().map(|w| w.sort.elements as f64).collect(),
            work.iter().map(|w| w.kvgen.macs as f64).collect(),
            work.iter()
                .map(|w| {
                    (w.sufa.macs as f64 / cfg.sufa_macs_per_cycle())
                        .max((w.sufa.exps + w.sufa.divs) as f64 / cfg.exp_units as f64)
                })
                .collect(),
        ];

        let mut cycles = vec![[floor; STAGES]; n];
        for s in 0..STAGES {
            let sum: f64 = weights[s].iter().sum();
            for (t, row) in cycles.iter_mut().enumerate() {
                let share = if sum > 0.0 {
                    weights[s][t] / sum
                } else {
                    1.0 / n as f64
                };
                row[s] = ((stage_totals[s] * share).ceil() as u64).max(floor);
            }
        }
        cycles
    }
}

/// One task lowered to per-tile descriptors and stage cycle counts — the unit
/// of work the multi-instance simulator schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineJob {
    /// Per-tile work descriptors (dataflow order along the context).
    pub work: Vec<TileWork>,
    /// Per-tile `[predict, sort, kv, formal]` stage cycles.
    pub cycles: Vec<[u64; STAGES]>,
}

impl PipelineJob {
    /// Number of context tiles.
    pub fn num_tiles(&self) -> usize {
        self.work.len()
    }

    /// Total DRAM bytes the job moves across all tiles and stages.
    pub fn total_dram_bytes(&self) -> u64 {
        self.work.iter().map(|w| w.total_dram_bytes()).sum()
    }

    /// Number of DRAM requests the job issues: one per non-empty traffic
    /// stream (prediction read, KV read, extra formal read, writeback) per
    /// tile. The shared request count behind the per-request activation
    /// energy charge of the DSE evaluator and the serving layer's energy
    /// projections — keeping them on one definition keeps the energy model
    /// the routing decisions trust consistent with the one that built the
    /// Pareto front.
    pub fn dram_requests(&self) -> u64 {
        self.work
            .iter()
            .map(|w| {
                u64::from(w.pred_read_bytes > 0)
                    + u64::from(w.kv_read_bytes > 0)
                    + u64::from(w.extra_formal_read_bytes > 0)
                    + u64::from(w.write_bytes > 0)
            })
            .sum()
    }

    /// The largest per-tile DRAM footprint — the bytes one resident tile of
    /// this request can pin in on-chip buffers, used by admission control.
    pub fn peak_tile_bytes(&self) -> u64 {
        self.work
            .iter()
            .map(|w| w.total_dram_bytes())
            .max()
            .unwrap_or(0)
    }
}

/// Which stage a DRAM read feeds, per tile.
pub(crate) fn read_bytes(work: &TileWork, stage: usize) -> u64 {
    match stage {
        0 => work.pred_read_bytes,
        2 => work.kv_read_bytes,
        3 => work.extra_formal_read_bytes,
        _ => 0,
    }
}

/// Run state of one simulation.
struct Engine<'a> {
    sim: &'a CycleSim,
    work: &'a [TileWork],
    cycles: Vec<[u64; STAGES]>,
    n: usize,
    queue: SimQueue<EventKind>,
    dram: DramChannel,
    buffers: Vec<PingPongBuffer>,
    busy: [bool; STAGES],
    next_tile: [usize; STAGES],
    idle_since: [u64; STAGES],
    read_done: Vec<Vec<Option<u64>>>,
    acts: [StageActivity; STAGES],
    timeline: Vec<TimelineEntry>,
    end_time: u64,
    obs: &'a mut TraceRecorder,
}

impl<'a> Engine<'a> {
    fn new(
        sim: &'a CycleSim,
        work: &'a [TileWork],
        cycles: Vec<[u64; STAGES]>,
        obs: &'a mut TraceRecorder,
    ) -> Self {
        let cfg = sim.accel.config();
        let bytes_per_cycle = cfg.dram_bandwidth_bps / cfg.freq_hz;
        let n = work.len();
        let mut read_done = vec![vec![None; n]; STAGES];
        // The sorting stage never touches DRAM.
        read_done[1] = vec![Some(0); n];
        Engine {
            sim,
            work,
            cycles,
            n,
            queue: SimQueue::new(sim.params.queue_kind),
            dram: DramChannel::with_timing(
                STAGES,
                bytes_per_cycle,
                sim.params.burst_latency,
                sim.params.dram_age_threshold,
                sim.params.dram_command_cycles,
            ),
            buffers: (0..STAGES - 1)
                .map(|_| PingPongBuffer::new(sim.params.buffer_depth))
                .collect(),
            busy: [false; STAGES],
            next_tile: [0; STAGES],
            idle_since: [0; STAGES],
            read_done,
            acts: [StageActivity::default(); STAGES],
            timeline: Vec::new(),
            end_time: 0,
            obs,
        }
    }

    /// Samples the DRAM queue-depth counter track.
    fn sample_dram(&mut self, now: u64) {
        if !self.obs.is_enabled() {
            return;
        }
        self.obs.counter(
            PID_SINGLE,
            TID_DRAM_QUEUE,
            "dram.queue_depth",
            now,
            &[("requests", self.dram.queued_requests() as f64)],
        );
    }

    /// Samples the ping-pong occupancy counter of stage boundary `b`.
    fn sample_bank(&mut self, b: usize, now: u64) {
        if !self.obs.is_enabled() {
            return;
        }
        self.obs.counter(
            PID_SINGLE,
            TID_BANK_BASE + b as u64,
            &bank_track(b),
            now,
            &[("occupied", self.buffers[b].occupancy() as f64)],
        );
    }

    fn prefetch_depth(&self) -> usize {
        // Depth 0 would never prime a read and the run would silently be
        // empty; clamp to fetch-on-demand.
        self.sim.params.prefetch_depth.max(1)
    }

    fn run(mut self) -> CycleReport {
        announce_pipeline(self.obs, PID_SINGLE, "pipeline");
        if self.obs.is_enabled() {
            self.obs.thread_name(PID_SINGLE, TID_DRAM_QUEUE, "dram");
        }
        // Prime the prediction stage's double-buffered fetch unit.
        for t in 0..self.prefetch_depth().min(self.n) {
            self.issue_read(0, t, 0);
        }
        self.try_start_all(0);

        while let Some((now, kind)) = self.queue.pop() {
            self.end_time = self.end_time.max(now);
            match kind {
                EventKind::StageDone { stage, tile } => self.on_stage_done(stage, tile, now),
                EventKind::DramFree => {
                    self.dram.release();
                    self.pump_dram(now);
                }
                EventKind::DramDone { stage, tile, write } => {
                    if !write {
                        self.read_done[stage][tile] = Some(now);
                        self.try_start_all(now);
                    }
                }
            }
        }

        let buffers = [0, 1, 2].map(|i| BufferActivity {
            average_occupancy: self.buffers[i].average_occupancy(self.end_time),
            capacity: self.sim.params.buffer_depth,
        });
        CycleReport {
            total_cycles: self.end_time,
            stages: self.acts,
            dram: DramActivity {
                bytes_read: self.dram.bytes_read(),
                bytes_written: self.dram.bytes_written(),
                busy_cycles: self.dram.busy_cycles(),
            },
            buffers,
            timeline: self.timeline,
            num_tiles: self.n,
        }
    }

    fn on_stage_done(&mut self, stage: usize, tile: usize, now: u64) {
        self.busy[stage] = false;
        self.idle_since[stage] = now;
        if stage > 0 {
            // Drained the upstream bank: the producer may refill it.
            self.buffers[stage - 1].release(tile, now);
            self.sample_bank(stage - 1, now);
        }
        if stage < STAGES - 1 {
            self.buffers[stage].mark_ready(tile, now);
        }
        match stage {
            0 => {
                // Keep the key-stream prefetcher `prefetch_depth` tiles ahead.
                let ahead = tile + self.prefetch_depth();
                if ahead < self.n {
                    self.issue_read(0, ahead, now);
                }
            }
            // The sorted selection exists now: the tile's KV fetch can go out
            // (on-demand generation / RASS-deduplicated fetch).
            1 => self.issue_read(2, tile, now),
            // Without RASS, the formal stage refetches shared vectors.
            2 => self.issue_read(3, tile, now),
            3 => {
                let bytes = self.work[tile].write_bytes;
                if bytes > 0 {
                    self.dram.enqueue(
                        DramRequest {
                            port: 3,
                            stage: 3,
                            tile,
                            bytes,
                            write: true,
                        },
                        now,
                    );
                    self.pump_dram(now);
                }
            }
            _ => unreachable!(),
        }
        self.try_start_all(now);
    }

    fn issue_read(&mut self, stage: usize, tile: usize, now: u64) {
        let bytes = read_bytes(&self.work[tile], stage);
        if bytes == 0 {
            self.read_done[stage][tile] = Some(now);
            return;
        }
        self.dram.enqueue(
            DramRequest {
                port: stage,
                stage,
                tile,
                bytes,
                write: false,
            },
            now,
        );
        self.pump_dram(now);
    }

    fn pump_dram(&mut self, now: u64) {
        if let Some(issued) = self.dram.try_issue(now) {
            self.queue.push(issued.free_at, EventKind::DramFree);
            self.queue.push(
                issued.done_at,
                EventKind::DramDone {
                    stage: issued.request.stage,
                    tile: issued.request.tile,
                    write: issued.request.write,
                },
            );
        }
        self.sample_dram(now);
    }

    fn try_start_all(&mut self, now: u64) {
        // A start can unblock nothing mid-cycle (banks free on *completion*),
        // so one pass over the stages suffices per event.
        for s in 0..STAGES {
            self.try_start(s, now);
        }
    }

    fn try_start(&mut self, stage: usize, now: u64) {
        if self.busy[stage] {
            return;
        }
        let tile = self.next_tile[stage];
        if tile >= self.n {
            return;
        }
        // Input bank ready? (The prediction stage reads the raw key stream.)
        let input_at = if stage == 0 {
            0
        } else {
            match self.buffers[stage - 1].ready_time(tile) {
                Some(t) => t,
                None => return,
            }
        };
        // Operand data arrived from DRAM?
        let read_at = match self.read_done[stage][tile] {
            Some(t) => t,
            None => return,
        };
        // Downstream bank free to fill?
        let out_at = if stage == STAGES - 1 {
            0
        } else {
            if !self.buffers[stage].has_free_slot() {
                return;
            }
            self.buffers[stage].last_release_time()
        };

        // Attribute the idle gap to the constraint that resolved last.
        let waited = now - self.idle_since[stage];
        let mut stall_name = "";
        if waited > 0 {
            if read_at >= input_at && read_at >= out_at {
                self.acts[stage].stall_dram += waited;
                stall_name = "stall:dram";
            } else if input_at >= out_at {
                self.acts[stage].stall_input += waited;
                stall_name = "stall:input";
            } else {
                self.acts[stage].stall_output += waited;
                stall_name = "stall:output";
            }
        }

        let dur = self.cycles[tile][stage];
        let end = now + dur;
        self.busy[stage] = true;
        self.next_tile[stage] = tile + 1;
        self.acts[stage].busy += dur;
        self.acts[stage].tiles += 1;
        if stage < STAGES - 1 {
            self.buffers[stage].reserve(tile, now);
            self.sample_bank(stage, now);
        }
        if self.obs.is_enabled() {
            if waited > 0 {
                self.obs.complete(
                    PID_SINGLE,
                    stage as u64,
                    stall_name,
                    self.idle_since[stage],
                    waited,
                    &[],
                );
            }
            self.obs.complete(
                PID_SINGLE,
                stage as u64,
                &format!("tile{tile}"),
                now,
                dur,
                &[("tile", ArgValue::U64(tile as u64))],
            );
        }
        self.timeline.push(TimelineEntry {
            stage,
            tile,
            start: now,
            end,
        });
        self.queue.push(end, EventKind::StageDone { stage, tile });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_task() -> AttentionTask {
        AttentionTask::new(16, 512, 256, 4, 0.25, 32)
    }

    #[test]
    fn all_tiles_flow_through_every_stage() {
        let sim = CycleSim::new(HwConfig::small());
        let r = sim.run(&small_task());
        assert_eq!(r.num_tiles, 16);
        for s in &r.stages {
            assert_eq!(s.tiles, 16);
        }
        assert_eq!(r.timeline.len(), 4 * 16);
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn timeline_respects_dataflow_order() {
        let sim = CycleSim::new(HwConfig::small());
        let r = sim.run(&small_task());
        let find = |stage, tile| {
            r.timeline
                .iter()
                .find(|e| e.stage == stage && e.tile == tile)
                .copied()
                .expect("entry exists")
        };
        for tile in 0..r.num_tiles {
            for stage in 1..4 {
                assert!(
                    find(stage, tile).start >= find(stage - 1, tile).end,
                    "stage {stage} of tile {tile} started before its input was ready"
                );
            }
        }
        for stage in 0..4 {
            for tile in 1..r.num_tiles {
                assert!(
                    find(stage, tile).start >= find(stage, tile - 1).end,
                    "stage {stage} processed tiles out of order"
                );
            }
        }
    }

    #[test]
    fn dram_traffic_matches_descriptors() {
        let sim = CycleSim::new(HwConfig::small());
        let task = small_task();
        let work = sim.accel.tile_descriptors(&task, None);
        let r = sim.run(&task);
        let want_read: u64 = work
            .iter()
            .map(|w| w.pred_read_bytes + w.kv_read_bytes + w.extra_formal_read_bytes)
            .sum();
        let want_write: u64 = work.iter().map(|w| w.write_bytes).sum();
        assert_eq!(r.dram.bytes_read, want_read);
        assert_eq!(r.dram.bytes_written, want_write);
    }

    #[test]
    fn busy_plus_stall_never_exceeds_total() {
        let sim = CycleSim::new(HwConfig::small());
        let r = sim.run(&small_task());
        for s in &r.stages {
            assert!(s.busy + s.total_stall() <= r.total_cycles);
        }
    }

    #[test]
    fn single_tile_task_runs_stages_serially() {
        // Tile larger than the sequence: one tile, no pipelining possible.
        let sim = CycleSim::new(HwConfig::small());
        let task = AttentionTask::new(8, 48, 64, 2, 0.5, 64);
        let r = sim.run(&task);
        assert_eq!(r.num_tiles, 1);
        assert_eq!(r.timeline.len(), 4);
        for w in r.timeline.windows(2) {
            assert!(w[1].start >= w[0].end, "single tile cannot pipeline");
        }
    }

    #[test]
    fn zero_kept_keys_still_drains_the_pipeline() {
        // A mask that kept nothing: formal/kv stages see zero work but every
        // tile still flows through (control overhead floor).
        use sofa_core::topk::TopKMask;
        let mask = TopKMask::new(96, vec![vec![]; 8]);
        let stats = TileSelectionStats::from_mask(&mask, 32);
        let task = AttentionTask::new(8, 96, 64, 2, 0.01, 32);
        let sim = CycleSim::new(HwConfig::small());
        let r = sim.run_with_stats(&task, Some(&stats));
        assert_eq!(r.num_tiles, 3);
        assert_eq!(r.stages[3].tiles, 3);
        assert_eq!(r.dram.bytes_written, 8 * 64 * 2);
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn imbalanced_stats_slow_the_pipeline_down() {
        use sofa_core::topk::TopKMask;
        let task = AttentionTask::new(16, 512, 256, 4, 0.125, 32);
        let sim = CycleSim::new(HwConfig::small());
        let balanced = sim.run(&task);
        // All 64 selections of every query crammed into the first two tiles.
        let rows: Vec<Vec<usize>> = (0..16).map(|_| (0..64).collect()).collect();
        let stats = TileSelectionStats::from_mask(&TopKMask::new(512, rows), 32);
        let skewed = sim.run_with_stats(&task, Some(&stats));
        assert!(
            skewed.total_cycles > balanced.total_cycles,
            "clustered selections must serialise the formal stage: {} vs {}",
            skewed.total_cycles,
            balanced.total_cycles
        );
    }

    #[test]
    fn zero_prefetch_depth_degrades_to_fetch_on_demand() {
        let mut sim = CycleSim::new(HwConfig::small());
        sim.params.prefetch_depth = 0;
        let r = sim.run(&small_task());
        assert_eq!(r.stages[0].tiles, r.num_tiles, "run must not be empty");
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let sim = CycleSim::new(HwConfig::small());
        let a = sim.run(&small_task());
        let b = sim.run(&small_task());
        assert_eq!(a, b);
    }

    #[test]
    fn traced_run_matches_untraced_and_trace_validates() {
        let sim = CycleSim::new(HwConfig::small());
        let task = small_task();
        let plain = sim.run(&task);
        let mut obs = TraceRecorder::enabled();
        let traced = sim.run_traced(&task, None, &mut obs);
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        let stats = sofa_obs::validate_chrome_trace(&obs.to_chrome_json()).expect("valid trace");
        // One busy span per timeline entry, plus stall spans.
        assert!(stats.spans >= plain.timeline.len());
        assert!(stats.counter_samples > 0, "queue/bank counters must sample");
        assert!(stats.max_ts <= plain.total_cycles);
    }

    #[test]
    fn traced_export_is_byte_identical_across_runs() {
        let sim = CycleSim::new(HwConfig::small());
        let run = || {
            let mut obs = TraceRecorder::enabled();
            sim.run_traced(&small_task(), None, &mut obs);
            obs.to_chrome_json()
        };
        assert_eq!(run(), run());
    }
}
