//! Shared DRAM channel with bandwidth arbitration and per-burst latency.
//!
//! All requesters contend for one off-chip channel: the prediction stage
//! streams low-precision keys, the KV path fetches the RASS-deduplicated
//! selected vectors, and the formal stage writes outputs back. In
//! multi-instance simulation every instance's four stages map to their own
//! ports, so one channel arbitrates across all concurrent requests. Requests
//! queue per requester port; when the channel is free the next request is
//! chosen round-robin across ports, occupies the channel for
//! `command_cycles + bytes / bytes_per_cycle` and delivers its data one
//! burst latency later (the latency of later bursts pipelines behind the
//! first). `command_cycles` models the row-activation/command serialisation
//! a request pays regardless of its size — zero by default (the classic
//! bandwidth-only channel), nonzero when a consumer wants many small
//! scattered requests to cost real channel time, as the hardware-aware DSE
//! evaluator does.
//!
//! On top of plain round-robin the channel supports **priority aging**
//! ([`DramChannel::with_aging`]): a request whose queueing delay exceeds the
//! aging threshold jumps the rotation and the oldest such request is served
//! first. Round-robin alone is fair in *turns*, not in *time* — a port behind
//! a string of large streaming transfers can starve even while being offered
//! turns, which under multi-instance sharing turns into tail-latency
//! outliers for whole requests.
//!
//! This is the contention the analytic model's `max(compute, memory)` folds
//! away — and the reason the cycle simulator can report *which* stage was
//! starved.

use std::collections::VecDeque;

/// Calibrates the per-request command occupancy ([`DramChannel`]'s
/// `command_cycles`) against the burst-latency model instead of hardwiring a
/// value.
///
/// The model: `burst_latency` is the request→first-data-beat delay
/// (≈ tRCD + tCL at the simulator's clock), and an HBM2-class row cycle tRC
/// — the time the bank and command bus are held per activation — is about
/// 1.5× that. A request therefore occupies the channel for the part of tRC
/// the data transfer does not cover. The calibration sweeps candidate
/// occupancies (0, ⅛, ¼, ½ and 1× the burst latency) and picks the one whose
/// implied single-burst channel time `command + transfer + burst_latency`
/// lands closest to the tRC target for a reference 64-byte burst, preferring
/// the smaller candidate on ties.
///
/// At the paper-default timing (64-cycle burst latency, ~60 B/cycle) this
/// selects **32 cycles** — the value the hardware-aware DSE evaluator used
/// to hardwire, now derived and shared with the serving simulations.
pub fn calibrate_dram_command_cycles(burst_latency: u64, bytes_per_cycle: f64) -> u64 {
    assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
    let target = burst_latency + burst_latency / 2; // tRC ≈ 1.5 × first-beat latency
    let transfer = (64.0 / bytes_per_cycle).ceil() as u64; // one 64 B burst
    [
        0,
        burst_latency / 8,
        burst_latency / 4,
        burst_latency / 2,
        burst_latency,
    ]
    .into_iter()
    .min_by_key(|&c| ((c + transfer + burst_latency).abs_diff(target), c))
    .expect("candidate sweep is non-empty")
}

/// One queued DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Requesting port. Single-pipeline simulation uses the stage index;
    /// multi-instance simulation uses `instance * 4 + stage`.
    pub port: usize,
    /// Stage the request belongs to (0 = predict … 3 = formal).
    pub stage: usize,
    /// Tile the data belongs to.
    pub tile: usize,
    /// Transfer size.
    pub bytes: u64,
    /// Whether this is a writeback (completion is not waited on by a stage).
    pub write: bool,
}

/// Completion handed back by the channel when a request finishes issuing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Issued {
    /// The request now occupying the channel.
    pub request: DramRequest,
    /// When the channel becomes free again.
    pub free_at: u64,
    /// When the requester has all of the data.
    pub done_at: u64,
}

/// The shared channel: per-port queues, round-robin pick with optional
/// priority aging, busy bookkeeping.
#[derive(Debug)]
pub struct DramChannel {
    /// Sustained bandwidth in bytes per cycle.
    bytes_per_cycle: f64,
    /// Fixed latency from issue to first data beat (cycles).
    burst_latency: u64,
    /// Channel cycles a request occupies beyond its transfer (row
    /// activation / command serialisation); zero for the classic
    /// bandwidth-only channel.
    command_cycles: u64,
    /// Queueing delay beyond which a request overrides round-robin
    /// (`u64::MAX` disables aging).
    age_threshold: u64,
    queues: Vec<VecDeque<(DramRequest, u64)>>,
    /// One bit per port, set while the port's queue is non-empty — the
    /// round-robin pick reads these words instead of touching every queue.
    nonempty: Vec<u64>,
    /// Requests waiting across all port queues (excluding the in-flight one).
    queued: usize,
    /// Lower bound on the oldest queued request's enqueue stamp
    /// (`u64::MAX` when provably nothing is queued). Lets [`Self::try_issue`]
    /// skip the aging scan while no head can have reached the threshold;
    /// tightened back to the exact minimum whenever a scan comes up empty.
    oldest_pending: u64,
    next_port: usize,
    busy: bool,
    busy_cycles: u64,
    bytes_read: u64,
    bytes_written: u64,
    aged_issues: u64,
    queue_wait_cycles: u64,
    issued_requests: u64,
}

impl DramChannel {
    /// Creates a channel with `ports` requester ports and plain round-robin
    /// arbitration.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive or `ports` is zero.
    pub fn new(ports: usize, bytes_per_cycle: f64, burst_latency: u64) -> Self {
        Self::with_aging(ports, bytes_per_cycle, burst_latency, u64::MAX)
    }

    /// Creates a channel whose arbitration ages: a queued request that has
    /// waited at least `age_threshold` cycles is served before the round-robin
    /// rotation, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive or `ports` is zero.
    pub fn with_aging(
        ports: usize,
        bytes_per_cycle: f64,
        burst_latency: u64,
        age_threshold: u64,
    ) -> Self {
        Self::with_timing(ports, bytes_per_cycle, burst_latency, age_threshold, 0)
    }

    /// Creates a channel with full timing control: aging arbitration plus a
    /// per-request command occupancy of `command_cycles` (the channel is
    /// held for `command_cycles + transfer` per request).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive or `ports` is zero.
    pub fn with_timing(
        ports: usize,
        bytes_per_cycle: f64,
        burst_latency: u64,
        age_threshold: u64,
        command_cycles: u64,
    ) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        assert!(ports > 0, "need at least one port");
        DramChannel {
            bytes_per_cycle,
            burst_latency,
            command_cycles,
            age_threshold,
            queues: (0..ports).map(|_| VecDeque::new()).collect(),
            nonempty: vec![0; ports.div_ceil(64)],
            queued: 0,
            oldest_pending: u64::MAX,
            next_port: 0,
            busy: false,
            busy_cycles: 0,
            bytes_read: 0,
            bytes_written: 0,
            aged_issues: 0,
            queue_wait_cycles: 0,
            issued_requests: 0,
        }
    }

    /// Queues a request on its port, stamping the enqueue time for aging and
    /// queueing-delay accounting.
    ///
    /// # Panics
    ///
    /// Panics if the request's port does not exist.
    pub fn enqueue(&mut self, req: DramRequest, now: u64) {
        assert!(req.port < self.queues.len(), "no such DRAM port");
        self.queues[req.port].push_back((req, now));
        self.nonempty[req.port / 64] |= 1 << (req.port % 64);
        self.queued += 1;
        self.oldest_pending = self.oldest_pending.min(now);
    }

    /// The port an aged request would be served from: the head request with
    /// the longest wait among those at or beyond the threshold, ties broken
    /// by port index so arbitration stays deterministic.
    ///
    /// Per-port enqueue stamps are nondecreasing (requests arrive in
    /// simulated-time order), so each queue's head is its oldest entry and
    /// the global oldest pending request is the minimum over heads. The
    /// `oldest_pending` lower bound therefore proves, without touching the
    /// queues, that no head can have aged yet; a scan that finds nothing
    /// aged tightens the bound back to the exact head minimum.
    fn aged_port(&mut self, now: u64) -> Option<usize> {
        if self.age_threshold == u64::MAX
            || now.saturating_sub(self.oldest_pending) < self.age_threshold
        {
            return None;
        }
        let picked = self
            .queues
            .iter()
            .enumerate()
            .filter_map(|(p, q)| q.front().map(|&(_, at)| (p, now.saturating_sub(at))))
            .filter(|&(_, wait)| wait >= self.age_threshold)
            .max_by_key(|&(p, wait)| (wait, std::cmp::Reverse(p)))
            .map(|(p, _)| p);
        if picked.is_none() {
            self.oldest_pending = self
                .queues
                .iter()
                .filter_map(|q| q.front().map(|&(_, at)| at))
                .min()
                .unwrap_or(u64::MAX);
        }
        picked
    }

    /// First port with queued work in cyclic order starting at `start`,
    /// resolved from the non-empty bitmask.
    fn next_nonempty(&self, start: usize) -> Option<usize> {
        let nwords = self.nonempty.len();
        let (w0, b0) = (start / 64, start % 64);
        let first = self.nonempty[w0] & (!0u64 << b0);
        if first != 0 {
            return Some(w0 * 64 + first.trailing_zeros() as usize);
        }
        for k in 1..=nwords {
            let i = (w0 + k) % nwords;
            let word = if i == w0 {
                // Wrapped back around: only the ports below `start` remain.
                self.nonempty[i] & !(!0u64 << b0)
            } else {
                self.nonempty[i]
            };
            if word != 0 {
                return Some(i * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// If the channel is idle and work is queued, issues the next request
    /// (aged request first, else round-robin over ports) and returns its
    /// timing. The caller is responsible for scheduling the returned
    /// `free_at` / `done_at` events and for calling [`DramChannel::release`]
    /// at `free_at`.
    pub fn try_issue(&mut self, now: u64) -> Option<Issued> {
        if self.busy || self.queued == 0 {
            return None;
        }
        let ports = self.queues.len();
        let pick = if let Some(aged) = self.aged_port(now) {
            self.aged_issues += 1;
            Some(aged)
        } else {
            self.next_nonempty(self.next_port)
        };
        let port = pick?;
        let (req, enqueued_at) = self.queues[port].pop_front().expect("picked port has work");
        if self.queues[port].is_empty() {
            self.nonempty[port / 64] &= !(1 << (port % 64));
        }
        self.queued -= 1;
        self.next_port = (port + 1) % ports;
        let transfer =
            self.command_cycles + (req.bytes as f64 / self.bytes_per_cycle).ceil() as u64;
        self.busy = true;
        self.busy_cycles += transfer;
        self.queue_wait_cycles += now.saturating_sub(enqueued_at);
        self.issued_requests += 1;
        if req.write {
            self.bytes_written += req.bytes;
        } else {
            self.bytes_read += req.bytes;
        }
        Some(Issued {
            request: req,
            free_at: now + transfer,
            done_at: now + transfer + self.burst_latency,
        })
    }

    /// Marks the channel free again (call at the issued request's `free_at`).
    pub fn release(&mut self) {
        self.busy = false;
    }

    /// Whether any request is queued or in flight.
    pub fn is_active(&self) -> bool {
        self.busy || self.queued > 0
    }

    /// Requests currently waiting across all port queues (excluding the one
    /// in flight) — the queue-depth signal of the trace counter track.
    pub fn queued_requests(&self) -> usize {
        self.queued
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Cycles the channel spent transferring data.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// How many issues were decided by aging rather than round-robin.
    pub fn aged_issues(&self) -> u64 {
        self.aged_issues
    }

    /// Mean cycles a request waited in its port queue before issue.
    pub fn mean_queue_wait(&self) -> f64 {
        if self.issued_requests == 0 {
            return 0.0;
        }
        self.queue_wait_cycles as f64 / self.issued_requests as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(port: usize, tile: usize, bytes: u64) -> DramRequest {
        DramRequest {
            port,
            stage: port % 4,
            tile,
            bytes,
            write: false,
        }
    }

    #[test]
    fn calibration_matches_the_paper_default_timing() {
        // 64-cycle burst latency at ~60 B/cycle: the sweep must land on the
        // half-latency candidate the DSE evaluator used to hardwire.
        assert_eq!(calibrate_dram_command_cycles(64, 59.8), 32);
        // A channel so slow that the transfer alone covers the row cycle
        // needs no extra command occupancy.
        assert_eq!(calibrate_dram_command_cycles(64, 2.0), 0);
        // Calibration scales with the burst latency.
        assert_eq!(calibrate_dram_command_cycles(128, 59.8), 64);
    }

    #[test]
    fn transfer_time_is_bandwidth_limited_plus_latency() {
        let mut ch = DramChannel::new(4, 64.0, 100);
        ch.enqueue(req(0, 0, 6400), 0);
        let issued = ch.try_issue(0).unwrap();
        assert_eq!(issued.free_at, 100, "6400 B / 64 B-per-cycle");
        assert_eq!(issued.done_at, 200, "plus one burst latency");
        assert_eq!(ch.busy_cycles(), 100);
        assert_eq!(ch.bytes_read(), 6400);
    }

    #[test]
    fn command_cycles_occupy_the_channel_per_request() {
        let mut ch = DramChannel::with_timing(2, 64.0, 100, u64::MAX, 30);
        ch.enqueue(req(0, 0, 6400), 0);
        let issued = ch.try_issue(0).unwrap();
        assert_eq!(issued.free_at, 130, "30 command + 100 transfer");
        assert_eq!(issued.done_at, 230, "plus one burst latency");
        assert_eq!(ch.busy_cycles(), 130);
        // The default constructors keep the classic bandwidth-only channel.
        let mut classic = DramChannel::new(2, 64.0, 100);
        classic.enqueue(req(0, 0, 6400), 0);
        assert_eq!(classic.try_issue(0).unwrap().free_at, 100);
    }

    #[test]
    fn channel_serialises_requests() {
        let mut ch = DramChannel::new(2, 1.0, 0);
        ch.enqueue(req(0, 0, 10), 0);
        ch.enqueue(req(1, 0, 10), 0);
        let first = ch.try_issue(0).unwrap();
        assert!(ch.try_issue(0).is_none(), "channel busy");
        ch.release();
        let second = ch.try_issue(first.free_at).unwrap();
        assert_eq!(second.free_at, 20);
    }

    #[test]
    fn arbitration_is_round_robin_across_ports() {
        let mut ch = DramChannel::new(3, 1.0, 0);
        // Port 2 queues two requests, ports 0 and 1 one each.
        ch.enqueue(req(2, 0, 1), 0);
        ch.enqueue(req(2, 1, 1), 0);
        ch.enqueue(req(0, 0, 1), 0);
        ch.enqueue(req(1, 0, 1), 0);
        let mut order = Vec::new();
        let mut now = 0;
        while ch.is_active() {
            let issued = ch.try_issue(now).unwrap();
            order.push(issued.request.port);
            now = issued.free_at;
            ch.release();
        }
        // Starting at port 0: 0, 1, 2, then 2's second request.
        assert_eq!(order, vec![0, 1, 2, 2]);
    }

    #[test]
    fn aged_request_overrides_round_robin() {
        let mut ch = DramChannel::with_aging(3, 1.0, 0, 50);
        // Port 2's request has been waiting since cycle 0; ports 0 and 1 just
        // arrived. Plain round-robin would serve port 0 first.
        ch.enqueue(req(2, 0, 1), 0);
        ch.enqueue(req(0, 0, 1), 60);
        ch.enqueue(req(1, 0, 1), 60);
        let first = ch.try_issue(60).unwrap();
        assert_eq!(first.request.port, 2, "starved port must jump the queue");
        assert_eq!(ch.aged_issues(), 1);
        ch.release();
        // Below the threshold arbitration falls back to the rotation.
        let second = ch.try_issue(61).unwrap();
        assert_eq!(second.request.port, 0);
        assert_eq!(ch.aged_issues(), 1);
    }

    #[test]
    fn oldest_aged_request_wins() {
        let mut ch = DramChannel::with_aging(4, 1.0, 0, 10);
        ch.enqueue(req(3, 0, 1), 5);
        ch.enqueue(req(1, 0, 1), 0); // oldest
        ch.enqueue(req(2, 0, 1), 5);
        let first = ch.try_issue(100).unwrap();
        assert_eq!(first.request.port, 1);
        ch.release();
        // Equal waits: the lowest port index is served first.
        let second = ch.try_issue(100).unwrap();
        assert_eq!(second.request.port, 2);
    }

    #[test]
    fn queue_wait_is_accounted() {
        let mut ch = DramChannel::new(1, 1.0, 0);
        ch.enqueue(req(0, 0, 4), 10);
        let _ = ch.try_issue(30).unwrap();
        assert!((ch.mean_queue_wait() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn writes_and_reads_are_tracked_separately() {
        let mut ch = DramChannel::new(1, 8.0, 0);
        ch.enqueue(
            DramRequest {
                port: 0,
                stage: 3,
                tile: 0,
                bytes: 64,
                write: true,
            },
            0,
        );
        let issued = ch.try_issue(0).unwrap();
        assert!(issued.request.write);
        assert_eq!(ch.bytes_written(), 64);
        assert_eq!(ch.bytes_read(), 0);
    }

    #[test]
    fn zero_byte_request_frees_immediately() {
        let mut ch = DramChannel::new(1, 64.0, 5);
        ch.enqueue(req(0, 0, 0), 7);
        let issued = ch.try_issue(7).unwrap();
        assert_eq!(issued.free_at, 7);
        assert_eq!(issued.done_at, 12);
    }

    #[test]
    fn idle_channel_issues_nothing() {
        let mut ch = DramChannel::new(2, 4.0, 1);
        assert!(ch.try_issue(0).is_none());
        assert!(!ch.is_active());
        assert_eq!(ch.mean_queue_wait(), 0.0);
    }
}
