//! Shared DRAM channel with bandwidth arbitration and per-burst latency.
//!
//! All four stages contend for one off-chip channel: the prediction stage
//! streams low-precision keys, the KV path fetches the RASS-deduplicated
//! selected vectors, and the formal stage writes outputs back. Requests queue
//! per requester port; when the channel is free the next request is chosen
//! round-robin across ports, occupies the channel for `bytes / bytes_per_cycle`
//! and delivers its data one burst latency later (the latency of later bursts
//! pipelines behind the first). This is the contention the analytic model's
//! `max(compute, memory)` folds away — and the reason the cycle simulator can
//! report *which* stage was starved.

use std::collections::VecDeque;

/// One queued DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Requesting stage (also the arbitration port).
    pub stage: usize,
    /// Tile the data belongs to.
    pub tile: usize,
    /// Transfer size.
    pub bytes: u64,
    /// Whether this is a writeback (completion is not waited on by a stage).
    pub write: bool,
}

/// Completion handed back by the channel when a request finishes issuing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Issued {
    /// The request now occupying the channel.
    pub request: DramRequest,
    /// When the channel becomes free again.
    pub free_at: u64,
    /// When the requester has all of the data.
    pub done_at: u64,
}

/// The shared channel: per-port queues, round-robin pick, busy bookkeeping.
#[derive(Debug)]
pub struct DramChannel {
    /// Sustained bandwidth in bytes per cycle.
    bytes_per_cycle: f64,
    /// Fixed latency from issue to first data beat (cycles).
    burst_latency: u64,
    queues: Vec<VecDeque<DramRequest>>,
    next_port: usize,
    busy: bool,
    busy_cycles: u64,
    bytes_read: u64,
    bytes_written: u64,
}

impl DramChannel {
    /// Creates a channel with `ports` requester ports.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive or `ports` is zero.
    pub fn new(ports: usize, bytes_per_cycle: f64, burst_latency: u64) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        assert!(ports > 0, "need at least one port");
        DramChannel {
            bytes_per_cycle,
            burst_latency,
            queues: (0..ports).map(|_| VecDeque::new()).collect(),
            next_port: 0,
            busy: false,
            busy_cycles: 0,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    /// Queues a request on its stage's port.
    ///
    /// # Panics
    ///
    /// Panics if the request's stage has no port.
    pub fn enqueue(&mut self, req: DramRequest) {
        assert!(req.stage < self.queues.len(), "no port for stage");
        self.queues[req.stage].push_back(req);
    }

    /// If the channel is idle and work is queued, issues the next request
    /// (round-robin over ports) and returns its timing. The caller is
    /// responsible for scheduling the returned `free_at` / `done_at` events
    /// and for calling [`DramChannel::release`] at `free_at`.
    pub fn try_issue(&mut self, now: u64) -> Option<Issued> {
        if self.busy {
            return None;
        }
        let ports = self.queues.len();
        for i in 0..ports {
            let port = (self.next_port + i) % ports;
            if let Some(req) = self.queues[port].pop_front() {
                self.next_port = (port + 1) % ports;
                let transfer = (req.bytes as f64 / self.bytes_per_cycle).ceil() as u64;
                self.busy = true;
                self.busy_cycles += transfer;
                if req.write {
                    self.bytes_written += req.bytes;
                } else {
                    self.bytes_read += req.bytes;
                }
                return Some(Issued {
                    request: req,
                    free_at: now + transfer,
                    done_at: now + transfer + self.burst_latency,
                });
            }
        }
        None
    }

    /// Marks the channel free again (call at the issued request's `free_at`).
    pub fn release(&mut self) {
        self.busy = false;
    }

    /// Whether any request is queued or in flight.
    pub fn is_active(&self) -> bool {
        self.busy || self.queues.iter().any(|q| !q.is_empty())
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Cycles the channel spent transferring data.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(stage: usize, tile: usize, bytes: u64) -> DramRequest {
        DramRequest {
            stage,
            tile,
            bytes,
            write: false,
        }
    }

    #[test]
    fn transfer_time_is_bandwidth_limited_plus_latency() {
        let mut ch = DramChannel::new(4, 64.0, 100);
        ch.enqueue(req(0, 0, 6400));
        let issued = ch.try_issue(0).unwrap();
        assert_eq!(issued.free_at, 100, "6400 B / 64 B-per-cycle");
        assert_eq!(issued.done_at, 200, "plus one burst latency");
        assert_eq!(ch.busy_cycles(), 100);
        assert_eq!(ch.bytes_read(), 6400);
    }

    #[test]
    fn channel_serialises_requests() {
        let mut ch = DramChannel::new(2, 1.0, 0);
        ch.enqueue(req(0, 0, 10));
        ch.enqueue(req(1, 0, 10));
        let first = ch.try_issue(0).unwrap();
        assert!(ch.try_issue(0).is_none(), "channel busy");
        ch.release();
        let second = ch.try_issue(first.free_at).unwrap();
        assert_eq!(second.free_at, 20);
    }

    #[test]
    fn arbitration_is_round_robin_across_ports() {
        let mut ch = DramChannel::new(3, 1.0, 0);
        // Port 2 queues two requests, ports 0 and 1 one each.
        ch.enqueue(req(2, 0, 1));
        ch.enqueue(req(2, 1, 1));
        ch.enqueue(req(0, 0, 1));
        ch.enqueue(req(1, 0, 1));
        let mut order = Vec::new();
        let mut now = 0;
        while ch.is_active() {
            let issued = ch.try_issue(now).unwrap();
            order.push(issued.request.stage);
            now = issued.free_at;
            ch.release();
        }
        // Starting at port 0: 0, 1, 2, then 2's second request.
        assert_eq!(order, vec![0, 1, 2, 2]);
    }

    #[test]
    fn writes_and_reads_are_tracked_separately() {
        let mut ch = DramChannel::new(1, 8.0, 0);
        ch.enqueue(DramRequest {
            stage: 0,
            tile: 0,
            bytes: 64,
            write: true,
        });
        let issued = ch.try_issue(0).unwrap();
        assert!(issued.request.write);
        assert_eq!(ch.bytes_written(), 64);
        assert_eq!(ch.bytes_read(), 0);
    }

    #[test]
    fn zero_byte_request_frees_immediately() {
        let mut ch = DramChannel::new(1, 64.0, 5);
        ch.enqueue(req(0, 0, 0));
        let issued = ch.try_issue(7).unwrap();
        assert_eq!(issued.free_at, 7);
        assert_eq!(issued.done_at, 12);
    }

    #[test]
    fn idle_channel_issues_nothing() {
        let mut ch = DramChannel::new(2, 4.0, 1);
        assert!(ch.try_issue(0).is_none());
        assert!(!ch.is_active());
    }
}
