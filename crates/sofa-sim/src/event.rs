//! Deterministic time-ordered event queue.
//!
//! The simulator advances by popping the earliest pending event; ties are
//! broken by insertion order so runs are bit-reproducible regardless of the
//! heap's internal layout.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happened at an event's timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A pipeline stage finished processing one tile.
    StageDone {
        /// Stage index (0 = predict … 3 = formal).
        stage: usize,
        /// Tile index.
        tile: usize,
    },
    /// The DRAM channel finished streaming the current request's burst train
    /// and can issue the next queued request.
    DramFree,
    /// A DRAM request's data has fully arrived at its requester.
    DramDone {
        /// Stage the request belonged to.
        stage: usize,
        /// Tile the request belonged to.
        tile: usize,
        /// Whether the request was a write (writes complete silently).
        write: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of future events with FIFO tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at `time`.
    pub fn push(&mut self, time: u64, kind: EventKind) {
        self.heap.push(Scheduled {
            time,
            seq: self.next_seq,
            kind,
        });
        self.next_seq += 1;
    }

    /// Pops the earliest event, returning `(time, kind)`.
    pub fn pop(&mut self) -> Option<(u64, EventKind)> {
        self.heap.pop().map(|s| (s.time, s.kind))
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, EventKind::DramFree);
        q.push(10, EventKind::StageDone { stage: 0, tile: 0 });
        q.push(20, EventKind::StageDone { stage: 1, tile: 0 });
        assert_eq!(q.pop().unwrap().0, 10);
        assert_eq!(q.pop().unwrap().0, 20);
        assert_eq!(q.pop().unwrap().0, 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for stage in 0..4 {
            q.push(5, EventKind::StageDone { stage, tile: 9 });
        }
        for stage in 0..4 {
            let (t, kind) = q.pop().unwrap();
            assert_eq!(t, 5);
            assert_eq!(kind, EventKind::StageDone { stage, tile: 9 });
        }
    }

    #[test]
    fn is_empty_reflects_state() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, EventKind::DramFree);
        assert!(!q.is_empty());
        let _ = q.pop();
        assert!(q.is_empty());
    }
}
