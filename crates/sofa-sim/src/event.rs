//! Deterministic time-ordered event queue.
//!
//! The simulator advances by popping the earliest pending event. Ties are
//! broken **explicitly FIFO**: every push stamps a monotonically increasing
//! sequence number and [`EventQueue::pop`] orders equal timestamps by that
//! stamp, so runs are bit-reproducible regardless of the heap's internal
//! layout — the property the multi-instance simulation depends on, where
//! several instances routinely schedule events at the same cycle.
//!
//! The queue is generic over the event payload so the single-pipeline
//! simulator ([`EventKind`]) and the multi-instance simulator
//! (`crate::multi`) share one implementation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happened at an event's timestamp (single-pipeline simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A pipeline stage finished processing one tile.
    StageDone {
        /// Stage index (0 = predict … 3 = formal).
        stage: usize,
        /// Tile index.
        tile: usize,
    },
    /// The DRAM channel finished streaming the current request's burst train
    /// and can issue the next queued request.
    DramFree,
    /// A DRAM request's data has fully arrived at its requester.
    DramDone {
        /// Stage the request belonged to.
        stage: usize,
        /// Tile the request belonged to.
        tile: usize,
        /// Whether the request was a write (writes complete silently).
        write: bool,
    },
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Scheduled<K> {
    pub(crate) time: u64,
    pub(crate) seq: u64,
    pub(crate) kind: K,
}

// Ordering is keyed on (time, seq) only — the payload never participates, so
// no bounds leak onto `K` and equal-time events keep their insertion order.
impl<K> PartialEq for Scheduled<K> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<K> Eq for Scheduled<K> {}

impl<K> Ord for Scheduled<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first; on
        // equal times the *lowest* sequence number (earliest push) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<K> PartialOrd for Scheduled<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of future events with FIFO tie-breaking on equal timestamps.
#[derive(Debug)]
pub struct EventQueue<K = EventKind> {
    heap: BinaryHeap<Scheduled<K>>,
    next_seq: u64,
}

impl<K> Default for EventQueue<K> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<K> EventQueue<K> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at `time`.
    pub fn push(&mut self, time: u64, kind: K) {
        self.heap.push(Scheduled {
            time,
            seq: self.next_seq,
            kind,
        });
        self.next_seq += 1;
    }

    /// Pops the earliest event, returning `(time, kind)`. Among events with
    /// equal timestamps the one pushed first is returned first (FIFO).
    pub fn pop(&mut self) -> Option<(u64, K)> {
        self.heap.pop().map(|s| (s.time, s.kind))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Which event-queue implementation a simulation schedules through.
///
/// Both implementations produce the **same pop order** (earliest timestamp
/// first, FIFO among ties) — the choice is purely a data-structure trade:
/// the binary heap is compact and branch-cheap for the small queues of
/// single-task runs, the calendar queue ([`crate::calendar::CalendarQueue`])
/// scans in near-constant time when millions of events cluster around the
/// simulation cursor, as fleet-scale serving runs do. The differential
/// proptest in `tests/property_tests.rs` enforces the equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Binary min-heap ([`EventQueue`]) — the default.
    #[default]
    Heap,
    /// Calendar queue / time wheel ([`crate::calendar::CalendarQueue`]).
    Calendar,
}

/// An event queue of either [`QueueKind`], dispatching the common API.
#[derive(Debug)]
pub(crate) enum SimQueue<K> {
    Heap(EventQueue<K>),
    Calendar(crate::calendar::CalendarQueue<K>),
}

impl<K> SimQueue<K> {
    pub(crate) fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Heap => SimQueue::Heap(EventQueue::new()),
            QueueKind::Calendar => SimQueue::Calendar(crate::calendar::CalendarQueue::new()),
        }
    }

    pub(crate) fn push(&mut self, time: u64, kind: K) {
        match self {
            SimQueue::Heap(q) => q.push(time, kind),
            SimQueue::Calendar(q) => q.push(time, kind),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<(u64, K)> {
        match self {
            SimQueue::Heap(q) => q.pop(),
            SimQueue::Calendar(q) => q.pop(),
        }
    }

    pub(crate) fn peek_time(&self) -> Option<u64> {
        match self {
            SimQueue::Heap(q) => q.peek_time(),
            SimQueue::Calendar(q) => q.peek_time(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, EventKind::DramFree);
        q.push(10, EventKind::StageDone { stage: 0, tile: 0 });
        q.push(20, EventKind::StageDone { stage: 1, tile: 0 });
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop().unwrap().0, 10);
        assert_eq!(q.pop().unwrap().0, 20);
        assert_eq!(q.pop().unwrap().0, 30);
        assert!(q.pop().is_none());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for stage in 0..4 {
            q.push(5, EventKind::StageDone { stage, tile: 9 });
        }
        for stage in 0..4 {
            let (t, kind) = q.pop().unwrap();
            assert_eq!(t, 5);
            assert_eq!(kind, EventKind::StageDone { stage, tile: 9 });
        }
    }

    #[test]
    fn ties_stay_fifo_under_interleaved_push_and_pop() {
        // Pops in between pushes reshuffle the heap's internal layout; the
        // sequence stamp must still serve equal-time events oldest-first.
        let mut q = EventQueue::new();
        q.push(7, 0u32);
        q.push(7, 1);
        q.push(3, 99);
        assert_eq!(q.pop(), Some((3, 99)));
        q.push(7, 2);
        q.push(5, 98);
        assert_eq!(q.pop(), Some((5, 98)));
        q.push(7, 3);
        for expect in 0..4 {
            assert_eq!(q.pop(), Some((7, expect)), "FIFO violated at {expect}");
        }
        assert!(q.is_empty());
    }

    #[test]
    fn generic_payloads_are_supported() {
        // The multi-instance simulator uses its own event enum; the queue
        // must order payloads it knows nothing about.
        let mut q: EventQueue<(usize, &str)> = EventQueue::new();
        q.push(2, (1, "b"));
        q.push(1, (0, "a"));
        q.push(2, (2, "c"));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((1, (0, "a"))));
        assert_eq!(q.pop(), Some((2, (1, "b"))));
        assert_eq!(q.pop(), Some((2, (2, "c"))));
    }

    #[test]
    fn is_empty_reflects_state() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        q.push(1, EventKind::DramFree);
        assert!(!q.is_empty());
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
    }
}
