//! Event-driven cycle-level simulator of the SOFA cross-stage tiled pipeline.
//!
//! The analytic models in `sofa-hw` reduce a task to closed-form stage cycle
//! counts and a `max(compute, memory)` latency. That cannot show *why* a
//! configuration is slow: ping-pong buffer back-pressure, DRAM channel
//! contention between on-demand KV fetches and output writeback, or per-tile
//! load imbalance from the Distributed Cluster Effect. This crate simulates
//! the four-stage pipeline tile by tile instead:
//!
//! * [`event`] — deterministic time-ordered event queue.
//! * [`pingpong`] — double-buffered SRAM banks with fill/drain occupancy.
//! * [`dram`] — shared DRAM channel: per-port queues, round-robin
//!   arbitration, bandwidth-limited transfers, per-burst latency.
//! * [`sim`] — [`CycleSim`]: the event loop driving per-tile work descriptors
//!   (from `sofa_hw::descriptor`) through the four stages.
//! * [`multi`] — [`MultiPipelineSim`]: several pipeline instances, each with
//!   its own ping-pong buffer pool, sharing one DRAM channel; request streams
//!   are submitted reactively so a serving scheduler (`sofa-serve`) can feed
//!   admission decisions back into simulated time.
//! * [`report`] — [`CycleReport`]: per-stage busy/stall accounting, DRAM and
//!   buffer statistics, a stage-by-stage timeline, and the
//!   [`CycleComparison`] cross-check against the analytic `SimReport`.
//! * [`tracks`] — the trace track layout both simulators use when recording
//!   into a `sofa_obs::TraceRecorder` (per-stage busy/stall spans, DRAM
//!   queue-depth and ping-pong occupancy counters, in simulated cycles).
//!
//! The simulator is validated against the analytic model: on compute-bound
//! configurations the two agree within a tolerance band (same engine
//! throughput models, same traffic volumes), while at high token parallelism
//! the simulation correctly diverges memory-bound and reports a nonzero DRAM
//! stall fraction — see `tests/integration_sim.rs` at the workspace root.
//!
//! # Example
//!
//! ```
//! use sofa_hw::accel::AttentionTask;
//! use sofa_hw::config::HwConfig;
//! use sofa_sim::CycleSim;
//!
//! let sim = CycleSim::new(HwConfig::small());
//! let task = AttentionTask::new(16, 512, 256, 4, 0.25, 32);
//! let (report, cmp) = sim.validate(&task);
//! assert_eq!(report.num_tiles, 16);
//! assert!(report.total_cycles > 0);
//! assert!(cmp.analytic_cycles > 0.0);
//! ```

pub mod calendar;
pub mod dram;
pub mod event;
pub mod fleet;
pub mod multi;
pub mod pingpong;
pub mod report;
pub mod sim;
pub mod tracks;

pub use calendar::CalendarQueue;
pub use dram::calibrate_dram_command_cycles;
pub use event::QueueKind;
pub use fleet::{
    Fabric, FabricParams, FabricReport, FleetCompletion, FleetSim, FleetSimReport, NodeSim,
};
pub use multi::{Completion, InstanceActivity, MultiPipelineSim, MultiReport, Step};
pub use report::{CycleComparison, CycleReport, DramActivity, StageActivity, TimelineEntry};
pub use sim::{CycleSim, PipelineJob, SimParams};
