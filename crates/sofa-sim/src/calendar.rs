//! Calendar-queue (time-wheel) event scheduling.
//!
//! [`CalendarQueue`] is a drop-in alternative to the binary-heap
//! [`crate::event::EventQueue`]: same `(time, kind)` API, same **exact**
//! pop order — earliest timestamp first, equal timestamps FIFO by push
//! order. Instead of one heap over all pending events it hashes events
//! into time buckets of a fixed `width` and pops by scanning the bucket
//! that covers the current simulated time window, the classic O(1)
//! calendar-queue structure (R. Brown, CACM 1988). Fleet-scale serving
//! runs schedule tens of millions of events whose timestamps cluster
//! tightly around the cursor, which is exactly the access pattern the
//! calendar shape is built for.
//!
//! Determinism contract: equal-time events land in the *same* bucket
//! (the bucket index is a pure function of the timestamp) and each bucket
//! is kept sorted by `(time, seq)`, so FIFO tie-breaking is preserved
//! bit-for-bit — `tests/property_tests.rs` differentially checks any
//! interleaving of pushes and pops against the heap queue. Resizing is
//! triggered by pure functions of the queue's length and rebuilds the
//! calendar in one deterministic pass; no wall-clock or randomised
//! heuristics are involved.

use crate::event::Scheduled;
use std::cell::Cell;
use std::collections::VecDeque;

/// Initial (and minimum) number of buckets; always a power of two.
const MIN_BUCKETS: usize = 64;

/// A time-wheel priority queue with FIFO tie-breaking, pop-order-identical
/// to [`crate::event::EventQueue`].
#[derive(Debug)]
pub struct CalendarQueue<K> {
    /// `buckets[i]` holds events with `(time / width) % nbuckets == i`,
    /// sorted ascending by `(time, seq)`.
    buckets: Vec<VecDeque<Scheduled<K>>>,
    /// Bucket time span in cycles — always a power of two, so the per-push
    /// and per-seek window arithmetic is a shift/mask instead of a u64
    /// division (`width == 1 << width_shift`).
    width: u64,
    /// `width.trailing_zeros()`, cached for the hot-path shifts.
    width_shift: u32,
    /// Bucket the pop cursor is currently scanning. A `Cell` so
    /// [`Self::peek_time`] can advance the cursor past provably-empty
    /// windows and the following `pop` starts where the peek left off —
    /// the simulators peek before every pop, and rescanning the same empty
    /// buckets twice per event dominated fleet-scale wall time. Cursor
    /// position is a pure function of the push/pop/peek sequence, so
    /// determinism is unaffected.
    cursor: Cell<usize>,
    /// Exclusive upper bound of the cursor bucket's current time window.
    window_end: Cell<u64>,
    /// Total pending events.
    len: usize,
    /// Monotonic push stamp for FIFO tie-breaking.
    next_seq: u64,
    /// Rehash scratch reused across [`Self::resize`] calls, so a queue that
    /// oscillates around a resize threshold does not reallocate its whole
    /// pending set every time.
    scratch: Vec<Scheduled<K>>,
}

impl<K> Default for CalendarQueue<K> {
    fn default() -> Self {
        Self::with_width(64)
    }
}

impl<K> CalendarQueue<K> {
    /// Creates an empty calendar with the default bucket width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty calendar whose buckets each span `width` cycles
    /// (rounded up to a power of two, at least 1). The width adapts on
    /// resize; the initial value only matters until the first rehash.
    pub fn with_width(width: u64) -> Self {
        let width = width.max(1).next_power_of_two();
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            width,
            width_shift: width.trailing_zeros(),
            cursor: Cell::new(0),
            window_end: Cell::new(width),
            len: 0,
            next_seq: 0,
            scratch: Vec::new(),
        }
    }

    /// Bucket index of timestamp `time`. Bucket count is a power of two
    /// (MIN_BUCKETS doubled/halved), so the modulo is a mask.
    fn bucket_of(&self, time: u64) -> usize {
        ((time >> self.width_shift) as usize) & (self.buckets.len() - 1)
    }

    /// Exclusive end of the window that contains `time`.
    fn window_end_of(&self, time: u64) -> u64 {
        ((time >> self.width_shift) + 1).saturating_mul(self.width)
    }

    /// Schedules `kind` to fire at `time`.
    pub fn push(&mut self, time: u64, kind: K) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.len + 1 > 4 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
        let idx = self.bucket_of(time);
        let bucket = &mut self.buckets[idx];
        // Sorted insert by (time, seq); seq is monotone, so among pushes of
        // the same timestamp partition_point lands past all earlier ones —
        // the FIFO order the heap queue guarantees. Most pushes schedule at
        // or after everything already in their bucket, so try the append
        // fast path before the binary search.
        if bucket.back().is_none_or(|s| (s.time, s.seq) < (time, seq)) {
            bucket.push_back(Scheduled { time, seq, kind });
        } else {
            let at = bucket.partition_point(|s| (s.time, s.seq) < (time, seq));
            bucket.insert(at, Scheduled { time, seq, kind });
        }
        self.len += 1;
        // An event scheduled before the cursor's current window (possible
        // when the cursor raced ahead over empty buckets) pulls the cursor
        // back so the pop scan cannot skip it.
        let ev_end = self.window_end_of(time);
        if ev_end < self.window_end.get() {
            self.window_end.set(ev_end);
            self.cursor.set(idx);
        }
    }

    /// Advances the cursor to the first bucket whose front event lies in the
    /// current window, jumping straight to the global minimum after one
    /// empty lap. Only skips provably-empty windows, so the event it lands
    /// on is exactly the one `pop` would return. Requires `len > 0`.
    fn seek(&self) {
        let nb = self.buckets.len();
        let mut scanned = 0usize;
        loop {
            let front_in_window = self.buckets[self.cursor.get()]
                .front()
                .is_some_and(|s| s.time < self.window_end.get());
            if front_in_window {
                return;
            }
            self.cursor.set((self.cursor.get() + 1) & (nb - 1));
            self.window_end.set(self.window_end.get() + self.width);
            scanned += 1;
            if scanned >= nb {
                // A full lap found nothing in the current year: the next
                // event is far ahead. Jump straight to the global minimum
                // instead of spinning year by year.
                let (idx, time) = self
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| b.front().map(|s| (i, s.time, s.seq)))
                    .min_by_key(|&(_, t, seq)| (t, seq))
                    .map(|(i, t, _)| (i, t))
                    .expect("len > 0 but every bucket is empty");
                self.cursor.set(idx);
                self.window_end.set(self.window_end_of(time));
                scanned = 0;
            }
        }
    }

    /// Pops the earliest event, returning `(time, kind)`; equal timestamps
    /// come back in push order (FIFO), exactly like the heap queue.
    pub fn pop(&mut self) -> Option<(u64, K)> {
        if self.len == 0 {
            return None;
        }
        self.seek();
        let ev = self.buckets[self.cursor.get()]
            .pop_front()
            .expect("seek stopped on a front event");
        self.len -= 1;
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        Some((ev.time, ev.kind))
    }

    /// Timestamp of the next event without popping it.
    ///
    /// Seeks the shared cursor to the next event — the same scan [`Self::pop`]
    /// performs, so peek-then-pop always agree and the pop right after a peek
    /// finds its bucket without rescanning.
    pub fn peek_time(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.seek();
        self.buckets[self.cursor.get()].front().map(|s| s.time)
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Rebuilds the calendar with `nbuckets` buckets and a width derived
    /// from the pending events' time span (mean inter-event gap, clamped) —
    /// a pure function of the queue contents, so resize points and the
    /// post-resize layout are identical across runs.
    fn resize(&mut self, nbuckets: usize) {
        let nbuckets = nbuckets.max(MIN_BUCKETS);
        // Drain into the reusable scratch (and reuse the existing buckets'
        // allocations) rather than rebuilding both vectors from scratch.
        let mut events = std::mem::take(&mut self.scratch);
        events.clear();
        events.extend(self.buckets.iter_mut().flat_map(|b| b.drain(..)));
        events.sort_by_key(|s| (s.time, s.seq));
        if let (Some(first), Some(last)) = (events.first(), events.last()) {
            let span = last.time - first.time;
            self.width = (span / events.len() as u64)
                .clamp(1, 1 << 20)
                .next_power_of_two();
            self.width_shift = self.width.trailing_zeros();
        }
        if nbuckets < self.buckets.len() {
            self.buckets.truncate(nbuckets);
        } else {
            self.buckets.resize_with(nbuckets, VecDeque::new);
        }
        // Re-inserting in (time, seq) order keeps every bucket sorted
        // without per-element search.
        let start = events.first().map(|s| s.time).unwrap_or(0);
        self.cursor.set(self.bucket_of(start));
        self.window_end.set(self.window_end_of(start));
        for ev in events.drain(..) {
            let idx = self.bucket_of(ev.time);
            self.buckets[idx].push_back(ev);
        }
        self.scratch = events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, EventQueue};

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(30, EventKind::DramFree);
        q.push(10, EventKind::StageDone { stage: 0, tile: 0 });
        q.push(20, EventKind::StageDone { stage: 1, tile: 0 });
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop().unwrap().0, 10);
        assert_eq!(q.pop().unwrap().0, 20);
        assert_eq!(q.pop().unwrap().0, 30);
        assert!(q.pop().is_none());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = CalendarQueue::new();
        for stage in 0..4 {
            q.push(5, EventKind::StageDone { stage, tile: 9 });
        }
        for stage in 0..4 {
            let (t, kind) = q.pop().unwrap();
            assert_eq!(t, 5);
            assert_eq!(kind, EventKind::StageDone { stage, tile: 9 });
        }
    }

    #[test]
    fn far_future_events_are_reached_via_the_lap_fallback() {
        let mut q = CalendarQueue::with_width(4);
        q.push(1_000_000_000, 1u32);
        q.push(3, 0u32);
        assert_eq!(q.pop(), Some((3, 0)));
        assert_eq!(q.pop(), Some((1_000_000_000, 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn past_inserts_pull_the_cursor_back() {
        let mut q = CalendarQueue::with_width(8);
        q.push(1000, 0u32);
        assert_eq!(q.pop(), Some((1000, 0)));
        // The cursor now sits at t=1000's window; an earlier event must
        // still come out first.
        q.push(5, 1u32);
        q.push(2000, 2u32);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((2000, 2)));
    }

    #[test]
    fn growth_and_shrink_keep_order() {
        let mut q = CalendarQueue::with_width(2);
        let n = 4096u64;
        for i in 0..n {
            // Clustered but out-of-order pushes with duplicates.
            q.push((i * 37) % 501, i as u32);
        }
        assert_eq!(q.len(), n as usize);
        let mut prev = (0u64, 0u64);
        let mut popped = 0;
        let mut seen_seq_at_time = std::collections::HashMap::new();
        while let Some((t, v)) = q.pop() {
            assert!(t >= prev.0, "time order violated: {t} after {}", prev.0);
            // FIFO among equal timestamps: push stamps (== payload here)
            // must increase.
            let last = seen_seq_at_time.entry(t).or_insert(0u32);
            assert!(v >= *last, "FIFO violated at t={t}: {v} after {last}");
            *last = v;
            prev = (t, v as u64);
            popped += 1;
        }
        assert_eq!(popped, n);
    }

    #[test]
    fn differential_vs_heap_on_interleaved_ops() {
        // A deterministic pseudo-random interleaving of pushes and pops;
        // the proptest in tests/property_tests.rs explores random ones.
        let mut heap = EventQueue::<u64>::new();
        let mut cal = CalendarQueue::<u64>::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..10_000u64 {
            if step() % 3 == 0 {
                assert_eq!(heap.pop(), cal.pop(), "pop {i} diverged");
            } else {
                let t = step() % 997;
                heap.push(t, i);
                cal.push(t, i);
            }
            assert_eq!(heap.len(), cal.len());
            assert_eq!(heap.peek_time(), cal.peek_time());
        }
        loop {
            let (h, c) = (heap.pop(), cal.pop());
            assert_eq!(h, c);
            if h.is_none() {
                break;
            }
        }
    }
}
