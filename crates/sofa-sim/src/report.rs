//! Cycle-level simulation results and the cross-check against the analytic
//! model.

use sofa_hw::accel::SimReport;

/// The four pipeline stages, in dataflow order.
pub const STAGE_NAMES: [&str; 4] = ["predict", "sort", "kv", "formal"];

/// Busy/stall breakdown of one stage over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageActivity {
    /// Cycles spent processing tiles.
    pub busy: u64,
    /// Cycles stalled waiting for the upstream ping-pong bank (starvation).
    pub stall_input: u64,
    /// Cycles stalled waiting for a free downstream bank (back-pressure).
    pub stall_output: u64,
    /// Cycles stalled waiting for DRAM data.
    pub stall_dram: u64,
    /// Tiles processed.
    pub tiles: usize,
}

impl StageActivity {
    /// All stall cycles of the stage.
    pub fn total_stall(&self) -> u64 {
        self.stall_input + self.stall_output + self.stall_dram
    }

    /// Busy fraction of the run (`busy / total`).
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            return 0.0;
        }
        self.busy as f64 / total_cycles as f64
    }
}

/// DRAM channel statistics of a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DramActivity {
    /// Bytes read over the run.
    pub bytes_read: u64,
    /// Bytes written over the run.
    pub bytes_written: u64,
    /// Cycles the channel spent transferring.
    pub busy_cycles: u64,
}

impl DramActivity {
    /// Total traffic.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Channel utilization over the run.
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            return 0.0;
        }
        self.busy_cycles as f64 / total_cycles as f64
    }
}

/// One processed tile in the stage-by-stage timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Stage index (see [`STAGE_NAMES`]).
    pub stage: usize,
    /// Tile index.
    pub tile: usize,
    /// Cycle the stage started the tile.
    pub start: u64,
    /// Cycle the stage finished the tile.
    pub end: u64,
}

/// Average ping-pong bank occupancy at each stage boundary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BufferActivity {
    /// Mean occupied banks over the run.
    pub average_occupancy: f64,
    /// Bank count of the boundary.
    pub capacity: usize,
}

/// The outcome of one cycle-level simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleReport {
    /// End-to-end cycles from first fetch to last writeback.
    pub total_cycles: u64,
    /// Per-stage busy/stall accounting.
    pub stages: [StageActivity; 4],
    /// DRAM channel accounting.
    pub dram: DramActivity,
    /// Ping-pong occupancy at the three stage boundaries.
    pub buffers: [BufferActivity; 3],
    /// Stage-by-stage tile timeline, in start order.
    pub timeline: Vec<TimelineEntry>,
    /// Number of context tiles the task was split into.
    pub num_tiles: usize,
}

impl CycleReport {
    /// Latency in seconds at clock `freq_hz`.
    pub fn latency_s(&self, freq_hz: f64) -> f64 {
        self.total_cycles as f64 / freq_hz
    }

    /// Fraction of the run during which the DRAM channel — not any engine —
    /// was the limiting resource: the channel-busy cycles in excess of the
    /// busiest stage's compute, over the whole run. Zero on compute-bound
    /// configurations (where fetch latency hides behind the pipeline) and
    /// grows toward the analytic memory-time share on memory-bound ones. For
    /// per-stage wait diagnosis use [`StageActivity::stall_dram`] instead.
    pub fn dram_stall_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let busiest = self.stages.iter().map(|s| s.busy).max().unwrap_or(0);
        self.dram.busy_cycles.saturating_sub(busiest) as f64 / self.total_cycles as f64
    }

    /// The stage with the highest busy cycle count (the pipeline bottleneck).
    pub fn bottleneck_stage(&self) -> usize {
        self.stages
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.busy)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Compares this run against the analytic model's report.
    pub fn compare(&self, analytic: &SimReport, freq_hz: f64) -> CycleComparison {
        let analytic_cycles = analytic.latency_s * freq_hz;
        let simulated = self.total_cycles as f64;
        CycleComparison {
            analytic_cycles,
            simulated_cycles: simulated,
            relative_error: (simulated - analytic_cycles) / analytic_cycles,
            analytic_memory_bound: analytic.memory_time_s > analytic.compute_time_s,
            dram_stall_fraction: self.dram_stall_fraction(),
        }
    }

    /// Renders a compact per-stage summary (one line per stage).
    pub fn stage_summary(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(&format!(
                "{:<8} busy {:>10}  in-stall {:>8}  out-stall {:>8}  dram-stall {:>8}  util {:>5.1}%\n",
                STAGE_NAMES[i],
                s.busy,
                s.stall_input,
                s.stall_output,
                s.stall_dram,
                100.0 * s.utilization(self.total_cycles),
            ));
        }
        out
    }
}

/// Agreement between the cycle simulator and the analytic model on one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleComparison {
    /// Cycles the analytic model predicts (latency × clock).
    pub analytic_cycles: f64,
    /// Cycles the event-driven simulation took.
    pub simulated_cycles: f64,
    /// Signed relative error of the simulation versus the analytic model.
    pub relative_error: f64,
    /// Whether the analytic model classified the task memory-bound.
    pub analytic_memory_bound: bool,
    /// The run's [`CycleReport::dram_stall_fraction`]: the fraction of the
    /// run during which the DRAM channel, not any engine, was the limiting
    /// resource (channel-busy cycles in excess of the busiest stage).
    pub dram_stall_fraction: f64,
}

impl CycleComparison {
    /// Whether the two models agree within `tolerance` (e.g. `0.15`).
    pub fn agrees_within(&self, tolerance: f64) -> bool {
        self.relative_error.abs() <= tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CycleReport {
        let mut stages = [StageActivity::default(); 4];
        stages[0].busy = 500;
        stages[3].busy = 800;
        stages[3].stall_dram = 200;
        CycleReport {
            total_cycles: 1000,
            stages,
            dram: DramActivity {
                bytes_read: 4000,
                bytes_written: 1000,
                busy_cycles: 1000,
            },
            buffers: [BufferActivity::default(); 3],
            timeline: vec![],
            num_tiles: 8,
        }
    }

    #[test]
    fn fractions_and_bottleneck() {
        let r = report();
        assert_eq!(r.bottleneck_stage(), 3);
        // Channel busy 1000 vs busiest stage 800 → 200 excess over 1000 cycles.
        assert!((r.dram_stall_fraction() - 0.2).abs() < 1e-12);
        assert!((r.dram.utilization(r.total_cycles) - 1.0).abs() < 1e-12);
        assert!((r.stages[3].utilization(r.total_cycles) - 0.8).abs() < 1e-12);
        assert_eq!(r.dram.total_bytes(), 5000);
        assert!((r.latency_s(1e9) - 1e-6).abs() < 1e-18);
        assert_eq!(r.stages[3].total_stall(), 200);
    }

    #[test]
    fn summary_mentions_every_stage() {
        let s = report().stage_summary();
        for name in STAGE_NAMES {
            assert!(s.contains(name), "{name} missing from summary");
        }
    }

    #[test]
    fn comparison_tolerance() {
        let c = CycleComparison {
            analytic_cycles: 1000.0,
            simulated_cycles: 1100.0,
            relative_error: 0.1,
            analytic_memory_bound: false,
            dram_stall_fraction: 0.0,
        };
        assert!(c.agrees_within(0.15));
        assert!(!c.agrees_within(0.05));
    }

    #[test]
    fn zero_cycle_report_has_zero_fractions() {
        let mut r = report();
        r.total_cycles = 0;
        assert_eq!(r.dram_stall_fraction(), 0.0);
        assert_eq!(r.dram.utilization(0), 0.0);
        assert_eq!(r.stages[0].utilization(0), 0.0);
    }
}
