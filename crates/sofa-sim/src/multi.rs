//! Multi-instance cycle-level simulation: several SOFA pipelines sharing one
//! DRAM channel.
//!
//! [`MultiPipelineSim`] steps `N` independent four-stage pipeline instances —
//! each with its own per-instance [`PingPongBuffer`] pool — whose tile
//! streams all contend for a single [`DramChannel`]. Each instance carries a
//! *stream* of [`PipelineJob`]s (one per serving request): tiles of
//! consecutive requests flow back-to-back through the stages without
//! draining the pipeline in between, which is what makes request-level
//! continuous batching profitable at the tile level.
//!
//! The simulator is *reactive*: a scheduler (see the `sofa-serve` crate)
//! submits jobs with [`MultiPipelineSim::submit`] at simulated arrival or
//! admission times and advances the clock one event at a time with
//! [`MultiPipelineSim::step`], which reports request completions so
//! admission decisions can feed back into the simulation. DRAM arbitration
//! is round-robin across all `N × 4` ports with optional priority aging
//! (see [`SimParams::dram_age_threshold`]), so no instance's fetch stream
//! can starve indefinitely behind another's bulk transfers.
//!
//! Determinism: the event queue breaks timestamp ties FIFO, instances are
//! scanned in index order, and the channel arbitrates deterministically —
//! two runs over the same submissions are bit-identical.

use crate::dram::{DramChannel, DramRequest};
use crate::event::SimQueue;
use crate::pingpong::PingPongBuffer;
use crate::report::{DramActivity, StageActivity};
use crate::sim::{read_bytes, PipelineJob, SimParams, STAGES};
use crate::tracks::{announce_pipeline, bank_track, PID_SHARED_DRAM, TID_BANK_BASE};
use sofa_hw::config::HwConfig;
use sofa_hw::descriptor::TileWork;
use sofa_obs::{ArgValue, TraceRecorder};

/// Events of the multi-instance simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MultiEvent {
    /// `stage` of `instance` finished its tile at local index `tile`.
    StageDone {
        instance: usize,
        stage: usize,
        tile: usize,
    },
    /// The shared channel can issue the next request.
    DramFree,
    /// A DRAM request's data arrived at its requester.
    DramDone {
        instance: usize,
        stage: usize,
        tile: usize,
        write: bool,
    },
}

/// One tile of one request in an instance's stream.
#[derive(Debug, Clone, Copy)]
struct TileSlot {
    /// Request the tile belongs to.
    request: u64,
    /// Whether this is the request's final tile (its completion marker).
    last: bool,
    work: TileWork,
    cycles: [u64; STAGES],
}

/// Tiles a drained prefix must reach before the stream storage is
/// compacted (amortises the `drain` shift).
const COMPACT_THRESHOLD: usize = 1024;

/// Per-instance pipeline state: stream of tiles, buffer pool, stage status.
///
/// Tile indices are *stream positions* — monotonically increasing over the
/// instance's lifetime and used as identifiers in events and ping-pong
/// bookkeeping. Storage is compacted: tiles every stage has fully retired
/// are dropped from the front of `tiles`/`read_done` and `base` records how
/// many, so month-long serving streams hold only the in-flight window in
/// memory (the fleet simulator feeds millions of requests through one
/// instance). Compaction never changes timing — it only frees storage that
/// can no longer be referenced.
#[derive(Debug)]
struct Instance {
    /// Stream positions `base..base + tiles.len()`; index with
    /// [`Instance::slot`].
    tiles: Vec<TileSlot>,
    /// Stream position of `tiles[0]`.
    base: usize,
    buffers: Vec<PingPongBuffer>,
    busy: [bool; STAGES],
    next_tile: [usize; STAGES],
    idle_since: [u64; STAGES],
    /// `read_done[tile - base][stage]`: when the stage's operand fetch for
    /// the tile arrived. One row per tile (not one column per stage) so a
    /// tile's submit is a single push and `try_start`'s lookup stays on the
    /// row the `tiles` access just touched.
    read_done: Vec<[Option<u64>; STAGES]>,
    /// Tiles whose stage-0 key-stream read has been issued (prefetch window).
    pred_issued: usize,
    acts: [StageActivity; STAGES],
}

impl Instance {
    fn new(buffer_depth: usize) -> Self {
        Instance {
            tiles: Vec::new(),
            base: 0,
            buffers: (0..STAGES - 1)
                .map(|_| PingPongBuffer::new(buffer_depth))
                .collect(),
            busy: [false; STAGES],
            next_tile: [0; STAGES],
            idle_since: [0; STAGES],
            read_done: Vec::new(),
            pred_issued: 0,
            acts: [StageActivity::default(); STAGES],
        }
    }

    /// Total tiles ever appended to the stream (accepted, in flight or
    /// retired).
    fn stream_len(&self) -> usize {
        self.base + self.tiles.len()
    }

    /// The tile at stream position `tile` (must not be retired).
    fn slot(&self, tile: usize) -> &TileSlot {
        &self.tiles[tile - self.base]
    }

    fn read_done_at(&self, stage: usize, tile: usize) -> Option<u64> {
        self.read_done[tile - self.base][stage]
    }

    fn set_read_done(&mut self, stage: usize, tile: usize, now: u64) {
        let i = tile - self.base;
        self.read_done[i][stage] = Some(now);
    }

    /// Drops retired tiles from the front of the stream storage. A tile is
    /// retired once the formal stage's `StageDone` for it has been
    /// processed: every later event referencing it (earlier-stage work,
    /// operand fetches) has necessarily fired, and write-back `DramDone`s
    /// never index the stream.
    fn compact(&mut self) {
        let retired = self.next_tile[STAGES - 1] - usize::from(self.busy[STAGES - 1]);
        let drop = retired.saturating_sub(self.base);
        if drop < COMPACT_THRESHOLD {
            return;
        }
        self.tiles.drain(..drop);
        self.read_done.drain(..drop);
        self.base += drop;
    }
}

/// A request that finished its formal-compute stage (output produced; the
/// writeback drains asynchronously but is still accounted in the DRAM stats
/// and the end-to-end cycle count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Instance the request ran on.
    pub instance: usize,
    /// Request identifier given at [`MultiPipelineSim::submit`].
    pub request: u64,
}

/// Outcome of processing one simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Simulated time of the event.
    pub time: u64,
    /// The request that completed at this event, if any.
    pub completed: Option<Completion>,
}

/// Activity of one instance over a multi-instance run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceActivity {
    /// Per-stage busy/stall accounting.
    pub stages: [StageActivity; STAGES],
    /// Tiles the instance processed (through the formal stage).
    pub tiles: usize,
    /// Requests the instance completed.
    pub requests: usize,
    /// Mean ping-pong occupancy at the three stage boundaries.
    pub buffer_occupancy: [f64; STAGES - 1],
}

impl InstanceActivity {
    /// Busy fraction of the instance's bottleneck stage over `total` cycles —
    /// the serving-level notion of instance utilization.
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            return 0.0;
        }
        let busiest = self.stages.iter().map(|s| s.busy).max().unwrap_or(0);
        busiest as f64 / total_cycles as f64
    }
}

/// Aggregate outcome of a multi-instance run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiReport {
    /// End-to-end cycles from the first fetch to the last event.
    pub total_cycles: u64,
    /// Per-instance activity.
    pub instances: Vec<InstanceActivity>,
    /// Shared-channel accounting across all instances.
    pub dram: DramActivity,
    /// Issues decided by priority aging rather than round-robin.
    pub dram_aged_issues: u64,
    /// Mean cycles a DRAM request queued before issue.
    pub dram_mean_queue_wait: f64,
}

/// `N` pipeline instances over one shared DRAM channel.
#[derive(Debug)]
pub struct MultiPipelineSim {
    params: SimParams,
    instances: Vec<Instance>,
    queue: SimQueue<MultiEvent>,
    dram: DramChannel,
    end_time: u64,
    requests_completed: Vec<usize>,
    obs: TraceRecorder,
    /// Trace pid of instance 0 (instance `i` records at `pid_base + i`).
    pid_base: u64,
    /// Trace pid of the shared DRAM channel.
    dram_pid: u64,
}

impl MultiPipelineSim {
    /// Creates `instances` pipelines at `cfg`, all sharing one DRAM channel
    /// with `instances × 4` arbitration ports.
    ///
    /// # Panics
    ///
    /// Panics if `instances` is zero.
    pub fn new(cfg: &HwConfig, instances: usize, params: SimParams) -> Self {
        assert!(instances > 0, "need at least one instance");
        let bytes_per_cycle = cfg.dram_bandwidth_bps / cfg.freq_hz;
        MultiPipelineSim {
            params,
            instances: (0..instances)
                .map(|_| Instance::new(params.buffer_depth))
                .collect(),
            queue: SimQueue::new(params.queue_kind),
            dram: DramChannel::with_timing(
                instances * STAGES,
                bytes_per_cycle,
                params.burst_latency,
                params.dram_age_threshold,
                params.dram_command_cycles,
            ),
            end_time: 0,
            requests_completed: vec![0; instances],
            obs: TraceRecorder::disabled(),
            pid_base: 0,
            dram_pid: PID_SHARED_DRAM,
        }
    }

    /// Switches the simulation's trace sink on: per-instance stage
    /// busy/stall spans and bank-occupancy counters (process id = instance
    /// index) plus the shared channel's queue-depth counter (process
    /// [`PID_SHARED_DRAM`]), all in simulated cycles. Call before the first
    /// submission; collect with [`MultiPipelineSim::take_trace`].
    pub fn enable_tracing(&mut self) {
        self.enable_tracing_with_pids(0, PID_SHARED_DRAM, "");
    }

    /// [`MultiPipelineSim::enable_tracing`] with an explicit track layout:
    /// instance `i` records at pid `pid_base + i`, the shared channel at
    /// `dram_pid`, and `label` prefixes the process names. The fleet
    /// simulator gives each node a disjoint pid window
    /// ([`crate::tracks::node_pid_base`]) so node traces merge without
    /// collisions.
    pub fn enable_tracing_with_pids(&mut self, pid_base: u64, dram_pid: u64, label: &str) {
        self.pid_base = pid_base;
        self.dram_pid = dram_pid;
        self.obs = TraceRecorder::enabled();
        self.obs
            .process_name(dram_pid, &format!("{label}dram-channel"));
        self.obs.thread_name(dram_pid, 0, "dram.queue_depth");
        for i in 0..self.instances.len() {
            announce_pipeline(
                &mut self.obs,
                pid_base + i as u64,
                &format!("{label}inst{i}"),
            );
        }
    }

    /// Takes the recorded trace, leaving a disabled recorder behind.
    pub fn take_trace(&mut self) -> TraceRecorder {
        std::mem::replace(&mut self.obs, TraceRecorder::disabled())
    }

    /// Samples the shared-channel queue-depth counter track.
    fn sample_dram(&mut self, now: u64) {
        if !self.obs.is_enabled() {
            return;
        }
        self.obs.counter(
            self.dram_pid,
            0,
            "dram.queue_depth",
            now,
            &[("requests", self.dram.queued_requests() as f64)],
        );
    }

    /// Samples instance `inst`'s ping-pong occupancy counter at boundary `b`.
    fn sample_bank(&mut self, inst: usize, b: usize, now: u64) {
        if !self.obs.is_enabled() {
            return;
        }
        self.obs.counter(
            self.pid_base + inst as u64,
            TID_BANK_BASE + b as u64,
            &bank_track(b),
            now,
            &[(
                "occupied",
                self.instances[inst].buffers[b].occupancy() as f64,
            )],
        );
    }

    /// Number of pipeline instances.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Tiles instance `inst` has accepted but not yet pushed through the
    /// formal stage — the scheduler's backlog signal.
    pub fn pending_tiles(&self, inst: usize) -> usize {
        self.instances[inst].stream_len() - self.instances[inst].next_tile[STAGES - 1]
    }

    /// Appends `job`'s tiles to instance `inst`'s stream at time `now` on
    /// behalf of request `request`. Tiles of earlier submissions still in
    /// flight keep the pipeline full; the new tiles enter right behind them.
    ///
    /// # Panics
    ///
    /// Panics if `inst` does not exist or `job` has no tiles.
    pub fn submit(&mut self, inst: usize, request: u64, job: &PipelineJob, now: u64) {
        assert!(inst < self.instances.len(), "no such instance");
        assert!(!job.work.is_empty(), "cannot submit an empty job");
        let stage_was_drained: [bool; STAGES] = {
            let ins = &self.instances[inst];
            std::array::from_fn(|s| !ins.busy[s] && ins.next_tile[s] == ins.stream_len())
        };
        let n = job.work.len();
        let ins = &mut self.instances[inst];
        ins.tiles.reserve(n);
        ins.read_done.reserve(n);
        for (i, (&work, &cycles)) in job.work.iter().zip(job.cycles.iter()).enumerate() {
            ins.tiles.push(TileSlot {
                request,
                last: i + 1 == n,
                work,
                cycles,
            });
            // The sorting stage never reads DRAM; everything else resolves
            // its operand fetch per tile.
            ins.read_done
                .push(std::array::from_fn(|s| (s == 1).then_some(now)));
        }
        // A stage that had drained its stream was idle for lack of work, not
        // stalled on a resource — restart its idle clock at the submission.
        for (s, drained) in stage_was_drained.iter().enumerate() {
            if *drained {
                ins.idle_since[s] = now;
            }
        }
        self.pump_prefetch(inst, now);
        self.try_start_all(inst, now);
    }

    /// Timestamp of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<u64> {
        self.queue.peek_time()
    }

    /// Processes the earliest pending event. Returns `None` when the
    /// simulation is drained (no events left).
    pub fn step(&mut self) -> Option<Step> {
        let (now, ev) = self.queue.pop()?;
        self.end_time = self.end_time.max(now);
        let completed = match ev {
            MultiEvent::StageDone {
                instance,
                stage,
                tile,
            } => self.on_stage_done(instance, stage, tile, now),
            MultiEvent::DramFree => {
                self.dram.release();
                self.pump_dram(now);
                None
            }
            MultiEvent::DramDone {
                instance,
                stage,
                tile,
                write,
            } => {
                if !write {
                    self.instances[instance].set_read_done(stage, tile, now);
                    // Operand arrival only relaxes the receiving stage's
                    // read constraint — the other stages cannot newly start.
                    self.try_start(instance, stage, now);
                }
                None
            }
        };
        Some(Step {
            time: now,
            completed,
        })
    }

    /// Drains all pending events, returning every completion in time order.
    pub fn run_to_idle(&mut self) -> Vec<(u64, Completion)> {
        let mut done = Vec::new();
        while let Some(step) = self.step() {
            if let Some(c) = step.completed {
                done.push((step.time, c));
            }
        }
        done
    }

    /// Snapshot of the run's accounting.
    pub fn report(&self) -> MultiReport {
        MultiReport {
            total_cycles: self.end_time,
            instances: self
                .instances
                .iter()
                .zip(self.requests_completed.iter())
                .map(|(ins, &reqs)| InstanceActivity {
                    stages: ins.acts,
                    tiles: ins.acts[STAGES - 1].tiles,
                    requests: reqs,
                    buffer_occupancy: std::array::from_fn(|i| {
                        ins.buffers[i].average_occupancy(self.end_time)
                    }),
                })
                .collect(),
            dram: DramActivity {
                bytes_read: self.dram.bytes_read(),
                bytes_written: self.dram.bytes_written(),
                busy_cycles: self.dram.busy_cycles(),
            },
            dram_aged_issues: self.dram.aged_issues(),
            dram_mean_queue_wait: self.dram.mean_queue_wait(),
        }
    }

    fn prefetch_depth(&self) -> usize {
        self.params.prefetch_depth.max(1)
    }

    /// Keeps instance `inst`'s key-stream prefetcher `prefetch_depth` tiles
    /// ahead of its prediction stage.
    fn pump_prefetch(&mut self, inst: usize, now: u64) {
        let window = self.instances[inst].next_tile[0] + self.prefetch_depth();
        while self.instances[inst].pred_issued < self.instances[inst].stream_len().min(window) {
            let tile = self.instances[inst].pred_issued;
            self.instances[inst].pred_issued += 1;
            self.issue_read(inst, 0, tile, now);
        }
    }

    fn issue_read(&mut self, inst: usize, stage: usize, tile: usize, now: u64) {
        let bytes = read_bytes(&self.instances[inst].slot(tile).work, stage);
        if bytes == 0 {
            self.instances[inst].set_read_done(stage, tile, now);
            return;
        }
        self.dram.enqueue(
            DramRequest {
                port: inst * STAGES + stage,
                stage,
                tile,
                bytes,
                write: false,
            },
            now,
        );
        self.pump_dram(now);
    }

    fn pump_dram(&mut self, now: u64) {
        if let Some(issued) = self.dram.try_issue(now) {
            self.queue.push(issued.free_at, MultiEvent::DramFree);
            self.queue.push(
                issued.done_at,
                MultiEvent::DramDone {
                    instance: issued.request.port / STAGES,
                    stage: issued.request.stage,
                    tile: issued.request.tile,
                    write: issued.request.write,
                },
            );
        }
        self.sample_dram(now);
    }

    fn on_stage_done(
        &mut self,
        inst: usize,
        stage: usize,
        tile: usize,
        now: u64,
    ) -> Option<Completion> {
        let mut completed = None;
        {
            let ins = &mut self.instances[inst];
            ins.busy[stage] = false;
            ins.idle_since[stage] = now;
            if stage > 0 {
                ins.buffers[stage - 1].release(tile, now);
            }
            if stage < STAGES - 1 {
                ins.buffers[stage].mark_ready(tile, now);
            }
        }
        if stage > 0 {
            self.sample_bank(inst, stage - 1, now);
        }
        match stage {
            0 => self.pump_prefetch(inst, now),
            // The sorted selection exists: the tile's KV fetch can go out.
            1 => self.issue_read(inst, 2, tile, now),
            // Without RASS, the formal stage refetches shared vectors.
            2 => self.issue_read(inst, 3, tile, now),
            3 => {
                let slot = *self.instances[inst].slot(tile);
                if slot.work.write_bytes > 0 {
                    self.dram.enqueue(
                        DramRequest {
                            port: inst * STAGES + 3,
                            stage: 3,
                            tile,
                            bytes: slot.work.write_bytes,
                            write: true,
                        },
                        now,
                    );
                    self.pump_dram(now);
                }
                if slot.last {
                    self.requests_completed[inst] += 1;
                    completed = Some(Completion {
                        instance: inst,
                        request: slot.request,
                    });
                }
            }
            _ => unreachable!(),
        }
        if stage == STAGES - 1 {
            self.instances[inst].compact();
        }
        // A StageDone only relaxes constraints of its neighbourhood: the
        // stage itself went idle, the upstream stage's output bank gained a
        // free slot, the downstream stage's input bank gained a ready tile
        // (and a zero-byte operand fetch issued above resolves downstream
        // immediately). Stages further away cannot newly start, and the
        // starts are mutually independent, so skipping them is
        // behaviour-identical to the full scan.
        for s in stage.saturating_sub(1)..=(stage + 1).min(STAGES - 1) {
            self.try_start(inst, s, now);
        }
        completed
    }

    fn try_start_all(&mut self, inst: usize, now: u64) {
        for s in 0..STAGES {
            self.try_start(inst, s, now);
        }
    }

    fn try_start(&mut self, inst: usize, stage: usize, now: u64) {
        let ins = &mut self.instances[inst];
        if ins.busy[stage] {
            return;
        }
        let tile = ins.next_tile[stage];
        if tile >= ins.stream_len() {
            return;
        }
        // Input bank ready? (The prediction stage reads the raw key stream.)
        let input_at = if stage == 0 {
            0
        } else {
            match ins.buffers[stage - 1].ready_time(tile) {
                Some(t) => t,
                None => return,
            }
        };
        // Operand data arrived from DRAM?
        let read_at = match ins.read_done_at(stage, tile) {
            Some(t) => t,
            None => return,
        };
        // Downstream bank free to fill?
        let out_at = if stage == STAGES - 1 {
            0
        } else {
            if !ins.buffers[stage].has_free_slot() {
                return;
            }
            ins.buffers[stage].last_release_time()
        };

        // Attribute the idle gap to the constraint that resolved last.
        let idle_since = ins.idle_since[stage];
        let waited = now - idle_since;
        let mut stall_name = "";
        if waited > 0 {
            if read_at >= input_at && read_at >= out_at {
                ins.acts[stage].stall_dram += waited;
                stall_name = "stall:dram";
            } else if input_at >= out_at {
                ins.acts[stage].stall_input += waited;
                stall_name = "stall:input";
            } else {
                ins.acts[stage].stall_output += waited;
                stall_name = "stall:output";
            }
        }

        let slot = ins.slot(tile);
        let dur = slot.cycles[stage];
        let request = slot.request;
        let end = now + dur;
        ins.busy[stage] = true;
        ins.next_tile[stage] = tile + 1;
        ins.acts[stage].busy += dur;
        ins.acts[stage].tiles += 1;
        if stage < STAGES - 1 {
            ins.buffers[stage].reserve(tile, now);
            self.sample_bank(inst, stage, now);
        }
        if self.obs.is_enabled() {
            if waited > 0 {
                self.obs.complete(
                    self.pid_base + inst as u64,
                    stage as u64,
                    stall_name,
                    idle_since,
                    waited,
                    &[],
                );
            }
            self.obs.complete(
                self.pid_base + inst as u64,
                stage as u64,
                &format!("req{request}:tile{tile}"),
                now,
                dur,
                &[
                    ("request", ArgValue::U64(request)),
                    ("tile", ArgValue::U64(tile as u64)),
                ],
            );
        }
        self.queue.push(
            end,
            MultiEvent::StageDone {
                instance: inst,
                stage,
                tile,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::CycleSim;
    use sofa_hw::accel::AttentionTask;

    fn small_task() -> AttentionTask {
        AttentionTask::new(16, 512, 256, 4, 0.25, 32)
    }

    fn small_job(sim: &CycleSim) -> PipelineJob {
        sim.job(&small_task(), None)
    }

    #[test]
    fn one_instance_matches_the_single_pipeline_engine() {
        // With one instance and one job submitted at time zero the multi
        // simulator must reproduce CycleSim exactly: same event structure,
        // same buffers, same arbitration.
        let sim = CycleSim::new(HwConfig::small());
        let single = sim.run(&small_task());
        let mut multi = MultiPipelineSim::new(sim.accel.config(), 1, sim.params);
        multi.submit(0, 7, &small_job(&sim), 0);
        let done = multi.run_to_idle();
        let report = multi.report();
        assert_eq!(report.total_cycles, single.total_cycles);
        assert_eq!(report.instances[0].stages, single.stages);
        assert_eq!(report.dram.bytes_read, single.dram.bytes_read);
        assert_eq!(report.dram.bytes_written, single.dram.bytes_written);
        assert_eq!(done.len(), 1);
        assert_eq!(
            done[0].1,
            Completion {
                instance: 0,
                request: 7
            }
        );
    }

    #[test]
    fn back_to_back_jobs_pipeline_on_one_instance() {
        let sim = CycleSim::new(HwConfig::small());
        let job = small_job(&sim);
        let single_cycles = sim.run(&small_task()).total_cycles;

        let mut multi = MultiPipelineSim::new(sim.accel.config(), 1, sim.params);
        multi.submit(0, 0, &job, 0);
        multi.submit(0, 1, &job, 0);
        let done = multi.run_to_idle();
        assert_eq!(done.len(), 2);
        assert!(done[0].0 <= done[1].0);
        let report = multi.report();
        assert!(
            report.total_cycles < 2 * single_cycles,
            "consecutive requests must overlap in the pipeline: {} vs 2x{}",
            report.total_cycles,
            single_cycles
        );
        assert_eq!(report.instances[0].requests, 2);
        assert_eq!(
            report.dram.bytes_read,
            2 * {
                let j = &job;
                j.total_dram_bytes() - j.work.iter().map(|w| w.write_bytes).sum::<u64>()
            }
        );
    }

    #[test]
    fn shared_channel_slows_concurrent_instances() {
        let sim = CycleSim::new(HwConfig::small());
        let job = small_job(&sim);
        let mut one = MultiPipelineSim::new(sim.accel.config(), 1, sim.params);
        one.submit(0, 0, &job, 0);
        one.run_to_idle();
        let alone = one.report().total_cycles;

        let mut two = MultiPipelineSim::new(sim.accel.config(), 2, sim.params);
        two.submit(0, 0, &job, 0);
        two.submit(1, 1, &job, 0);
        let done = two.run_to_idle();
        let report = two.report();
        assert_eq!(done.len(), 2);
        assert!(
            report.total_cycles >= alone,
            "sharing one channel cannot beat running alone"
        );
        // Conservation: the shared channel moved both requests' bytes.
        assert_eq!(report.dram.total_bytes(), 2 * job.total_dram_bytes());
        assert_eq!(report.instances[0].requests, 1);
        assert_eq!(report.instances[1].requests, 1);
    }

    #[test]
    fn late_submission_does_not_count_arrival_gap_as_stall() {
        // Running the same job a second time after a long idle gap must add
        // the same stalls the first run had (pipeline fill etc.) — the gap
        // itself is idle-for-lack-of-work, not a stall.
        let sim = CycleSim::new(HwConfig::small());
        let job = small_job(&sim);
        let mut multi = MultiPipelineSim::new(sim.accel.config(), 1, sim.params);
        multi.submit(0, 0, &job, 0);
        multi.run_to_idle();
        let first: u64 = multi.report().instances[0]
            .stages
            .iter()
            .map(|s| s.total_stall())
            .sum();
        let first_end = multi.report().total_cycles;
        let gap = 1_000_000;
        multi.submit(0, 1, &job, first_end + gap);
        multi.run_to_idle();
        let total: u64 = multi.report().instances[0]
            .stages
            .iter()
            .map(|s| s.total_stall())
            .sum();
        let second = total - first;
        assert!(
            second <= first + 8,
            "second run booked {second} stall cycles vs {first} for an \
             identical first run — the {gap}-cycle arrival gap leaked in"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let sim = CycleSim::new(HwConfig::small());
        let job = small_job(&sim);
        let run = || {
            let mut m = MultiPipelineSim::new(sim.accel.config(), 3, sim.params);
            for i in 0..6u64 {
                m.submit((i % 3) as usize, i, &job, i * 100);
            }
            let done = m.run_to_idle();
            (done, m.report())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn aging_kicks_in_under_contention() {
        let sim = CycleSim::new(HwConfig::small());
        let job = small_job(&sim);
        let mut params = sim.params;
        params.dram_age_threshold = 1;
        let mut m = MultiPipelineSim::new(sim.accel.config(), 4, params);
        for i in 0..4u64 {
            m.submit(i as usize, i, &job, 0);
        }
        m.run_to_idle();
        let report = m.report();
        assert!(
            report.dram_aged_issues > 0,
            "four instances over one channel must age requests at threshold 1"
        );
        assert!(report.dram_mean_queue_wait > 0.0);
    }

    #[test]
    fn tracing_does_not_perturb_the_run_and_validates() {
        let sim = CycleSim::new(HwConfig::small());
        let job = small_job(&sim);
        let run = |traced: bool| {
            let mut m = MultiPipelineSim::new(sim.accel.config(), 2, sim.params);
            if traced {
                m.enable_tracing();
            }
            m.submit(0, 0, &job, 0);
            m.submit(1, 1, &job, 50);
            let done = m.run_to_idle();
            let trace = m.take_trace();
            (done, m.report(), trace)
        };
        let (done_off, report_off, trace_off) = run(false);
        let (done_on, report_on, trace_on) = run(true);
        assert_eq!(done_off, done_on);
        assert_eq!(report_off, report_on);
        assert!(trace_off.is_empty());
        let stats =
            sofa_obs::validate_chrome_trace(&trace_on.to_chrome_json()).expect("valid trace");
        assert!(stats.spans > 0);
        assert!(stats.tracks >= 2, "both instances must own tracks");
        // Repeat runs export byte-identical traces.
        let again = run(true).2;
        assert_eq!(trace_on.to_chrome_json(), again.to_chrome_json());
    }

    #[test]
    #[should_panic(expected = "empty job")]
    fn empty_job_panics() {
        let sim = CycleSim::new(HwConfig::small());
        let mut m = MultiPipelineSim::new(sim.accel.config(), 1, sim.params);
        m.submit(
            0,
            0,
            &PipelineJob {
                work: vec![],
                cycles: vec![],
            },
            0,
        );
    }
}
