//! Trace track layout of the cycle simulators.
//!
//! Chrome trace events address tracks by `(pid, tid)`. The simulators map
//! simulated entities onto that space deterministically:
//!
//! * **pid** — one per pipeline instance: [`PID_SINGLE`] (= instance 0) for
//!   [`crate::CycleSim`], instance index for [`crate::MultiPipelineSim`].
//!   The shared DRAM channel of a multi-instance run is its own process,
//!   [`PID_SHARED_DRAM`]; higher layers (the serving scheduler) start at
//!   [`PID_SERVE_BASE`].
//! * **tid** — within a pipeline process: tids `0..=3` carry the per-stage
//!   busy/stall spans (in [`crate::report::STAGE_NAMES`] order),
//!   [`TID_DRAM_QUEUE`] the channel queue-depth counter (single-instance
//!   runs only), and [`TID_BANK_BASE`]`+b` the ping-pong occupancy counter
//!   of stage boundary `b` (0–2).

use crate::report::STAGE_NAMES;
use crate::sim::STAGES;
use sofa_obs::TraceRecorder;

/// Process id of a single-pipeline (`CycleSim`) trace.
pub const PID_SINGLE: u64 = 0;
/// Process id of the shared DRAM channel in a multi-instance trace.
pub const PID_SHARED_DRAM: u64 = 99;
/// First process id available to layers above the simulator (serving).
pub const PID_SERVE_BASE: u64 = 100;
/// Process id of the fleet router's counter tracks (per-node booked bytes,
/// wait-queue depth).
pub const PID_FLEET_ROUTER: u64 = 998;
/// Process id of the inter-node fabric's counter tracks (tid = node index).
pub const PID_FABRIC: u64 = 999;
/// First process id of fleet node 0; node `n` owns the pid window
/// `[node_pid_base(n), node_pid_base(n) + PID_NODE_STRIDE)`.
pub const PID_FLEET_BASE: u64 = 1000;
/// Pid window size per fleet node: instance `i` of a node records at
/// `node_pid_base(n) + i`, the node's private DRAM channel at
/// `node_pid_base(n) + PID_NODE_DRAM`.
pub const PID_NODE_STRIDE: u64 = 100;
/// Offset, within a node's pid window, of its private DRAM channel.
pub const PID_NODE_DRAM: u64 = PID_NODE_STRIDE - 1;

/// First pid of fleet node `node`'s trace-track window.
pub fn node_pid_base(node: usize) -> u64 {
    PID_FLEET_BASE + node as u64 * PID_NODE_STRIDE
}
/// Track id of the DRAM queue-depth counter within a pipeline process.
pub const TID_DRAM_QUEUE: u64 = 4;
/// First track id of the three ping-pong bank-occupancy counters.
pub const TID_BANK_BASE: u64 = 5;

/// Names the stage and counter tracks of pipeline process `pid` in the
/// trace viewer. A disabled recorder drops everything.
pub fn announce_pipeline(obs: &mut TraceRecorder, pid: u64, process: &str) {
    if !obs.is_enabled() {
        return;
    }
    obs.process_name(pid, process);
    for (s, name) in STAGE_NAMES.iter().enumerate() {
        obs.thread_name(pid, s as u64, name);
    }
    for b in 0..STAGES - 1 {
        obs.thread_name(pid, TID_BANK_BASE + b as u64, &bank_track(b));
    }
}

/// Counter-track name of ping-pong stage boundary `b` (0–2).
pub fn bank_track(b: usize) -> String {
    format!("banks.{}-{}", STAGE_NAMES[b], STAGE_NAMES[b + 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_tracks_follow_stage_names() {
        assert_eq!(bank_track(0), "banks.predict-sort");
        assert_eq!(bank_track(2), "banks.kv-formal");
    }

    #[test]
    fn announce_emits_metadata_only_when_enabled() {
        let mut off = TraceRecorder::disabled();
        announce_pipeline(&mut off, 0, "pipeline");
        assert!(off.is_empty());
        let mut on = TraceRecorder::enabled();
        announce_pipeline(&mut on, 0, "pipeline");
        // 1 process name + 4 stages + 3 bank tracks.
        assert_eq!(on.len(), 8);
    }
}
