//! Fleet-scale hierarchical simulation: instances → nodes → fabric.
//!
//! [`crate::MultiPipelineSim`] models one *node*: `N` pipeline instances
//! contending for one private DRAM channel. [`FleetSim`] composes many such
//! nodes the way Occamy composes silicon — cores into chiplets behind
//! private HBM, chiplets behind an inter-chiplet fabric: every node keeps
//! its own event queue and DRAM channel, and nodes are joined only by a
//! [`Fabric`] whose per-node ingress links have their own latency and
//! bandwidth model.
//!
//! **Epoch-parallel stepping.** Between synchronization epochs the nodes
//! share nothing, so [`FleetSim::run_until`] steps them concurrently with
//! `sofa_par::par_map_mut` — one contiguous chunk of nodes per worker, no
//! work stealing — and merges completions in node order. Results (and, with
//! tracing on, the trace bytes: each node records into its own pid window,
//! absorbed in node order) are bit-identical at any `SOFA_THREADS`.
//!
//! **Deliveries.** Work enters a node through [`FleetSim::submit`] with an
//! explicit delivery timestamp (computed by the router from the fabric
//! model). The node applies the submission only once its own event stream
//! has caught up to that time, so a delivery can never rewind a node's
//! local clock — the causality guarantee that keeps per-node streams
//! independent between epochs.
//!
//! The serving-layer router that drives this simulator (placement,
//! disaggregation, admission control) lives in `sofa-serve`'s `fleet`
//! module; this module is policy-free mechanism.

use crate::multi::{Completion, MultiPipelineSim, MultiReport};
use crate::sim::{PipelineJob, SimParams};
use crate::tracks::{node_pid_base, PID_NODE_DRAM};
use sofa_hw::config::HwConfig;
use sofa_obs::TraceRecorder;
use std::collections::VecDeque;
use std::sync::Arc;

/// Latency/bandwidth model of the inter-node fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricParams {
    /// Fixed propagation latency of a transfer, in cycles (added after the
    /// serialization delay).
    pub latency_cycles: u64,
    /// Per-node ingress link bandwidth in bytes per cycle; transfers to the
    /// same node serialize at this rate.
    pub bytes_per_cycle: u64,
}

impl Default for FabricParams {
    fn default() -> Self {
        FabricParams {
            latency_cycles: 64,
            bytes_per_cycle: 64,
        }
    }
}

/// Accounting of one node's ingress link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FabricLink {
    /// Transfers the link carried.
    pub transfers: u64,
    /// Payload bytes the link carried.
    pub bytes: u64,
    /// Cycles the link spent serializing payloads.
    pub busy_cycles: u64,
}

/// Per-link fabric accounting of a fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricReport {
    /// One entry per node ingress link.
    pub links: Vec<FabricLink>,
}

impl FabricReport {
    /// Total transfers across all links.
    pub fn total_transfers(&self) -> u64 {
        self.links.iter().map(|l| l.transfers).sum()
    }

    /// Total payload bytes across all links.
    pub fn total_bytes(&self) -> u64 {
        self.links.iter().map(|l| l.bytes).sum()
    }

    /// Busy fraction of link `node` over `total_cycles`.
    pub fn link_utilization(&self, node: usize, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            return 0.0;
        }
        self.links[node].busy_cycles as f64 / total_cycles as f64
    }
}

/// The inter-node fabric: per-node ingress links with serialization and a
/// fixed propagation latency. Deterministic — delivery times are a pure
/// function of the transfer sequence.
#[derive(Debug)]
pub struct Fabric {
    params: FabricParams,
    /// Cycle each node's ingress link finishes its last serialization.
    link_free: Vec<u64>,
    links: Vec<FabricLink>,
}

impl Fabric {
    /// A fabric joining `nodes` nodes under `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params.bytes_per_cycle` is zero.
    pub fn new(params: FabricParams, nodes: usize) -> Self {
        assert!(params.bytes_per_cycle > 0, "fabric needs bandwidth");
        Fabric {
            params,
            link_free: vec![0; nodes],
            links: vec![FabricLink::default(); nodes],
        }
    }

    /// Books a `bytes`-byte transfer to `node` decided at cycle `now` and
    /// returns its delivery cycle: the payload serializes on the node's
    /// ingress link (after any transfer already occupying it) and then pays
    /// the propagation latency.
    pub fn transfer(&mut self, node: usize, bytes: u64, now: u64) -> u64 {
        let xfer = bytes.div_ceil(self.params.bytes_per_cycle);
        let start = now.max(self.link_free[node]);
        let end = start + xfer;
        self.link_free[node] = end;
        let link = &mut self.links[node];
        link.transfers += 1;
        link.bytes += bytes;
        link.busy_cycles += xfer;
        end + self.params.latency_cycles
    }

    /// Cycle `node`'s ingress link becomes free.
    pub fn link_free_at(&self, node: usize) -> u64 {
        self.link_free[node]
    }

    /// Snapshot of the per-link accounting.
    pub fn report(&self) -> FabricReport {
        FabricReport {
            links: self.links.clone(),
        }
    }
}

/// A submission in flight across the fabric, waiting to enter its node.
#[derive(Debug)]
struct Pending {
    deliver_at: u64,
    inst: usize,
    request: u64,
    job: Arc<PipelineJob>,
}

/// One fleet node: a [`MultiPipelineSim`] plus its in-flight deliveries.
#[derive(Debug)]
pub struct NodeSim {
    sim: MultiPipelineSim,
    /// Deliveries not yet applied, in non-decreasing `deliver_at` order
    /// (the per-node fabric link serializes, so the router's decision order
    /// is already delivery order).
    pending: VecDeque<Pending>,
    /// Completion scratch refilled by [`NodeSim::run_until`] — allocated
    /// once and reused across epochs (fleet runs step tens of thousands of
    /// epochs, and a fresh per-epoch vector per node was pure churn).
    done: Vec<(u64, Completion)>,
}

impl NodeSim {
    fn new(cfg: &HwConfig, instances: usize, params: SimParams) -> Self {
        NodeSim {
            sim: MultiPipelineSim::new(cfg, instances, params),
            pending: VecDeque::new(),
            done: Vec::new(),
        }
    }

    /// Queues `job` for instance `inst`, entering the node's tile streams
    /// at `deliver_at`.
    ///
    /// # Panics
    ///
    /// Panics if `deliver_at` precedes an already-queued delivery.
    pub fn submit_at(&mut self, inst: usize, request: u64, job: Arc<PipelineJob>, deliver_at: u64) {
        if let Some(back) = self.pending.back() {
            assert!(
                deliver_at >= back.deliver_at,
                "deliveries must be scheduled in time order"
            );
        }
        self.pending.push_back(Pending {
            deliver_at,
            inst,
            request,
            job,
        });
    }

    /// Earliest future activity: the next simulation event or pending
    /// delivery.
    pub fn next_activity(&self) -> Option<u64> {
        let ev = self.sim.next_event_time();
        let sub = self.pending.front().map(|p| p.deliver_at);
        match (ev, sub) {
            (Some(e), Some(s)) => Some(e.min(s)),
            (a, b) => a.or(b),
        }
    }

    /// Processes every event and delivery with timestamp strictly below
    /// `until`, returning the node's completions in time order. Events run
    /// before deliveries on equal timestamps — a completion at cycle `t`
    /// frees its instance before work delivered at `t` enters, matching the
    /// single-node serving scheduler's tie rule.
    ///
    /// The returned slice borrows the node's reusable scratch buffer; it is
    /// valid until the next `run_until` call.
    pub fn run_until(&mut self, until: u64) -> &[(u64, Completion)] {
        self.done.clear();
        loop {
            let ev = self.sim.next_event_time().filter(|&e| e < until);
            let sub = self
                .pending
                .front()
                .map(|p| p.deliver_at)
                .filter(|&s| s < until);
            let step_event = match (ev, sub) {
                (Some(e), Some(s)) => e <= s,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if step_event {
                let step = self.sim.step().expect("event was pending");
                if let Some(c) = step.completed {
                    self.done.push((step.time, c));
                }
            } else {
                let p = self.pending.pop_front().expect("delivery was pending");
                self.sim.submit(p.inst, p.request, &p.job, p.deliver_at);
            }
        }
        &self.done
    }

    /// The node's underlying multi-instance simulation.
    pub fn sim(&self) -> &MultiPipelineSim {
        &self.sim
    }
}

/// A request completion observed at fleet level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetCompletion {
    /// Node the request ran on.
    pub node: usize,
    /// Instance within the node.
    pub instance: usize,
    /// Request identifier given at [`FleetSim::submit`].
    pub request: u64,
    /// Completion cycle.
    pub time: u64,
}

/// Per-node accounting of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSimReport {
    /// One [`MultiReport`] per node.
    pub nodes: Vec<MultiReport>,
}

impl FleetSimReport {
    /// End-to-end makespan: the latest cycle any node reached.
    pub fn total_cycles(&self) -> u64 {
        self.nodes.iter().map(|n| n.total_cycles).max().unwrap_or(0)
    }
}

/// `nodes` × `instances_per_node` pipeline instances, grouped into nodes
/// with private DRAM channels, stepped epoch-parallel.
#[derive(Debug)]
pub struct FleetSim {
    nodes: Vec<NodeSim>,
    instances_per_node: usize,
    traced: bool,
    /// Merged completion scratch refilled by [`FleetSim::run_until`] —
    /// reused across epochs like the per-node buffers it gathers.
    completions: Vec<FleetCompletion>,
}

impl FleetSim {
    /// Creates `nodes` nodes of `instances_per_node` instances each, every
    /// node at `cfg` with its own DRAM channel.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `instances_per_node` is zero.
    pub fn new(cfg: &HwConfig, nodes: usize, instances_per_node: usize, params: SimParams) -> Self {
        assert!(nodes > 0, "need at least one node");
        FleetSim {
            nodes: (0..nodes)
                .map(|_| NodeSim::new(cfg, instances_per_node, params))
                .collect(),
            instances_per_node,
            traced: false,
            completions: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Instances per node.
    pub fn instances_per_node(&self) -> usize {
        self.instances_per_node
    }

    /// The node at index `node`.
    pub fn node(&self, node: usize) -> &NodeSim {
        &self.nodes[node]
    }

    /// Queues `job` for `inst` of `node`, entering its tile streams at
    /// `deliver_at` (a fabric-computed delivery cycle; per-node deliveries
    /// must be scheduled in time order).
    pub fn submit(
        &mut self,
        node: usize,
        inst: usize,
        request: u64,
        job: Arc<PipelineJob>,
        deliver_at: u64,
    ) {
        self.nodes[node].submit_at(inst, request, job, deliver_at);
    }

    /// Earliest future activity across all nodes.
    pub fn next_activity(&self) -> Option<u64> {
        self.nodes.iter().filter_map(|n| n.next_activity()).min()
    }

    /// Runs every node up to (exclusive) `until` — in parallel, one
    /// contiguous chunk of nodes per `sofa-par` worker — and returns the
    /// epoch's completions grouped by node (node-major, time-ordered within
    /// a node). The grouping is the caller-order reduction that keeps fleet
    /// runs bit-identical at any thread count. The slice borrows the fleet's
    /// reusable scratch buffer and is valid until the next stepping call.
    pub fn run_until(&mut self, until: u64) -> &[FleetCompletion] {
        sofa_par::par_map_mut(&mut self.nodes, |_, node| {
            node.run_until(until);
        });
        self.completions.clear();
        for (node, n) in self.nodes.iter().enumerate() {
            self.completions
                .extend(n.done.iter().map(|&(time, c)| FleetCompletion {
                    node,
                    instance: c.instance,
                    request: c.request,
                    time,
                }));
        }
        &self.completions
    }

    /// Drains all pending events and deliveries on every node.
    ///
    /// Like [`FleetSim::run_until`], the returned slice borrows reusable
    /// scratch and is valid until the next stepping call.
    pub fn run_to_idle(&mut self) -> &[FleetCompletion] {
        self.run_until(u64::MAX)
    }

    /// Switches tracing on for every node: node `n`'s instances record at
    /// pids `node_pid_base(n) + i`, its private DRAM channel at
    /// `node_pid_base(n) +` [`PID_NODE_DRAM`]. Call before the first
    /// submission; collect with [`FleetSim::take_trace`].
    pub fn enable_tracing(&mut self) {
        self.traced = true;
        for (n, node) in self.nodes.iter_mut().enumerate() {
            let base = node_pid_base(n);
            node.sim
                .enable_tracing_with_pids(base, base + PID_NODE_DRAM, &format!("node{n}."));
        }
    }

    /// Merges every node's trace (in node order) into one recorder, leaving
    /// disabled recorders behind.
    pub fn take_trace(&mut self) -> TraceRecorder {
        if !self.traced {
            return TraceRecorder::disabled();
        }
        let mut merged = TraceRecorder::enabled();
        for node in &mut self.nodes {
            merged.absorb(node.sim.take_trace());
        }
        merged
    }

    /// Snapshot of every node's accounting.
    pub fn report(&self) -> FleetSimReport {
        FleetSimReport {
            nodes: self.nodes.iter().map(|n| n.sim.report()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::CycleSim;
    use sofa_hw::accel::AttentionTask;

    fn small_job(sim: &CycleSim) -> Arc<PipelineJob> {
        Arc::new(sim.job(&AttentionTask::new(16, 512, 256, 4, 0.25, 32), None))
    }

    #[test]
    fn fabric_serializes_per_node_and_adds_latency() {
        let mut fabric = Fabric::new(
            FabricParams {
                latency_cycles: 10,
                bytes_per_cycle: 4,
            },
            2,
        );
        // 40 bytes at 4 B/cyc = 10 cycles on the link, +10 latency.
        assert_eq!(fabric.transfer(0, 40, 0), 20);
        // Same node: queues behind the first transfer (link free at 10).
        assert_eq!(fabric.transfer(0, 4, 0), 21);
        // Other node: own link, no queueing.
        assert_eq!(fabric.transfer(1, 4, 0), 11);
        let report = fabric.report();
        assert_eq!(report.total_transfers(), 3);
        assert_eq!(report.total_bytes(), 48);
        assert_eq!(report.links[0].busy_cycles, 11);
        assert_eq!(report.links[1].busy_cycles, 1);
    }

    #[test]
    fn single_node_fleet_matches_multi_pipeline_sim() {
        // One node, one instance, deliveries interleaved exactly as a
        // reference driver would submit them — cycle-for-cycle equal.
        let csim = CycleSim::new(HwConfig::small());
        let job = small_job(&csim);

        let mut reference = MultiPipelineSim::new(csim.accel.config(), 1, csim.params);
        let mut ref_done = Vec::new();
        for (req, at) in [(0u64, 0u64), (1, 100), (2, 5_000)] {
            while reference.next_event_time().is_some_and(|e| e <= at) {
                if let Some(c) = reference
                    .step()
                    .and_then(|s| s.completed.map(|c| (s.time, c)))
                {
                    ref_done.push(c);
                }
            }
            reference.submit(0, req, &job, at);
        }
        for (t, c) in reference.run_to_idle() {
            ref_done.push((t, c));
        }

        let mut fleet = FleetSim::new(csim.accel.config(), 1, 1, csim.params);
        for (req, at) in [(0u64, 0u64), (1, 100), (2, 5_000)] {
            fleet.submit(0, 0, req, Arc::clone(&job), at);
        }
        let fleet_done = fleet.run_to_idle();

        assert_eq!(fleet_done.len(), ref_done.len());
        for (f, (t, c)) in fleet_done.iter().zip(ref_done.iter()) {
            assert_eq!((f.time, f.instance, f.request), (*t, c.instance, c.request));
        }
        assert_eq!(fleet.report().nodes[0], reference.report());
    }

    #[test]
    fn nodes_run_independently_and_deterministically_across_threads() {
        let csim = CycleSim::new(HwConfig::small());
        let job = small_job(&csim);
        let run = |threads: usize| {
            sofa_par::with_threads(threads, || {
                let mut fleet = FleetSim::new(csim.accel.config(), 3, 2, csim.params);
                for r in 0..12u64 {
                    fleet.submit(
                        (r % 3) as usize,
                        (r % 2) as usize,
                        r,
                        Arc::clone(&job),
                        r * 50,
                    );
                }
                let mut done: Vec<FleetCompletion> = Vec::new();
                let mut epoch = 4096u64;
                while fleet.next_activity().is_some() {
                    done.extend(fleet.run_until(epoch));
                    epoch += 4096;
                }
                (done, fleet.report())
            })
        };
        let one = run(1);
        for threads in [2usize, 8] {
            assert_eq!(run(threads), one, "fleet diverged at {threads} threads");
        }
        // Three nodes really ran: each completed its requests.
        for node in &one.1.nodes {
            let reqs: usize = node.instances.iter().map(|i| i.requests).sum();
            assert_eq!(reqs, 4);
        }
    }

    #[test]
    fn epoch_boundaries_do_not_change_the_outcome() {
        let csim = CycleSim::new(HwConfig::small());
        let job = small_job(&csim);
        let run = |epoch: u64| {
            let mut fleet = FleetSim::new(csim.accel.config(), 2, 1, csim.params);
            for r in 0..6u64 {
                fleet.submit((r % 2) as usize, 0, r, Arc::clone(&job), r * 1000);
            }
            let mut done: Vec<FleetCompletion> = Vec::new();
            let mut t = epoch;
            while fleet.next_activity().is_some() {
                done.extend(fleet.run_until(t));
                t += epoch;
            }
            (done, fleet.report())
        };
        // Completions arrive grouped differently per epoch length, but the
        // simulated outcome (times, placements, reports) is identical.
        let fine = run(512);
        let coarse = run(1 << 20);
        let sort = |mut v: Vec<FleetCompletion>| {
            v.sort_by_key(|c| (c.time, c.node, c.request));
            v
        };
        assert_eq!(sort(fine.0), sort(coarse.0));
        assert_eq!(fine.1, coarse.1);
    }

    #[test]
    fn fleet_tracing_uses_disjoint_pid_windows_and_validates() {
        let csim = CycleSim::new(HwConfig::small());
        let job = small_job(&csim);
        let mut fleet = FleetSim::new(csim.accel.config(), 2, 1, csim.params);
        fleet.enable_tracing();
        fleet.submit(0, 0, 0, Arc::clone(&job), 0);
        fleet.submit(1, 0, 1, Arc::clone(&job), 0);
        fleet.run_to_idle();
        let json = fleet.take_trace().to_chrome_json();
        let stats = sofa_obs::validate_chrome_trace(&json).expect("valid trace");
        assert!(stats.spans > 0);
        assert!(json.contains("node0.inst0"));
        assert!(json.contains("node1.inst0"));
        assert!(json.contains("node1.dram-channel"));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_deliveries_panic() {
        let csim = CycleSim::new(HwConfig::small());
        let job = small_job(&csim);
        let mut node = NodeSim::new(csim.accel.config(), 1, csim.params);
        node.submit_at(0, 0, Arc::clone(&job), 100);
        node.submit_at(0, 1, job, 50);
    }
}
