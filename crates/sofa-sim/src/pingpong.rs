//! Double-buffered (ping-pong) SRAM banks between pipeline stages.
//!
//! Each stage boundary of the tiled pipeline owns a small set of SRAM banks
//! (two in the paper's design): the producer fills one bank while the
//! consumer drains the other. A bank is *reserved* when the producer starts a
//! tile, becomes *ready* when the producer finishes it, and is *released*
//! when the consumer finishes draining it. The producer therefore stalls
//! whenever both banks are occupied — exactly the back-pressure mechanism
//! whose occupancy this module tracks.

/// Lifecycle of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Producer is writing the tile into the bank.
    Filling,
    /// Tile is complete and waiting for (or being drained by) the consumer.
    Ready,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    tile: usize,
    state: SlotState,
    /// When the slot became `Ready` (for stall attribution).
    ready_at: u64,
}

/// A ping-pong buffer of `capacity` banks with occupancy accounting.
#[derive(Debug)]
pub struct PingPongBuffer {
    capacity: usize,
    slots: Vec<Slot>,
    /// Last time the occupancy changed, for the occupancy integral.
    last_change: u64,
    /// Σ occupancy · dt, for average-occupancy reporting.
    occupancy_integral: u64,
    /// When a bank was last freed (for back-pressure stall attribution).
    last_release: u64,
}

impl PingPongBuffer {
    /// Creates a buffer of `capacity` banks (the paper's design uses 2).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        PingPongBuffer {
            capacity,
            slots: Vec::new(),
            last_change: 0,
            occupancy_integral: 0,
            last_release: 0,
        }
    }

    fn advance(&mut self, now: u64) {
        self.occupancy_integral += self.slots.len() as u64 * (now - self.last_change);
        self.last_change = now;
    }

    /// Whether the producer can start filling a new bank.
    pub fn has_free_slot(&self) -> bool {
        self.slots.len() < self.capacity
    }

    /// Time the most recent bank was freed — the moment a producer blocked on
    /// back-pressure became unblocked.
    pub fn last_release_time(&self) -> u64 {
        self.last_release
    }

    /// Producer starts filling a bank with `tile`.
    ///
    /// # Panics
    ///
    /// Panics if no bank is free.
    pub fn reserve(&mut self, tile: usize, now: u64) {
        assert!(self.has_free_slot(), "reserve on a full ping-pong buffer");
        self.advance(now);
        self.slots.push(Slot {
            tile,
            state: SlotState::Filling,
            ready_at: u64::MAX,
        });
    }

    /// Producer finished `tile`; the bank becomes consumable.
    ///
    /// # Panics
    ///
    /// Panics if `tile` was never reserved.
    pub fn mark_ready(&mut self, tile: usize, now: u64) {
        let slot = self
            .slots
            .iter_mut()
            .find(|s| s.tile == tile && s.state == SlotState::Filling)
            .expect("mark_ready on unreserved tile");
        slot.state = SlotState::Ready;
        slot.ready_at = now;
    }

    /// When `tile` became ready for the consumer (`None` if not yet ready).
    pub fn ready_time(&self, tile: usize) -> Option<u64> {
        self.slots
            .iter()
            .find(|s| s.tile == tile && s.state == SlotState::Ready)
            .map(|s| s.ready_at)
    }

    /// Consumer finished draining `tile`; the bank is freed.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is not resident and ready.
    pub fn release(&mut self, tile: usize, now: u64) {
        let idx = self
            .slots
            .iter()
            .position(|s| s.tile == tile && s.state == SlotState::Ready)
            .expect("release of a tile that is not resident");
        self.advance(now);
        self.slots.remove(idx);
        self.last_release = now;
    }

    /// Current number of occupied banks (filling or ready).
    pub fn occupancy(&self) -> usize {
        self.slots.len()
    }

    /// Mean occupancy in banks over `[0, now]`.
    pub fn average_occupancy(&self, now: u64) -> f64 {
        if now == 0 {
            return self.slots.len() as f64;
        }
        let integral = self.occupancy_integral + self.slots.len() as u64 * (now - self.last_change);
        integral as f64 / now as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_drain_lifecycle() {
        let mut b = PingPongBuffer::new(2);
        assert!(b.has_free_slot());
        b.reserve(0, 0);
        assert_eq!(b.ready_time(0), None, "filling bank is not consumable");
        b.mark_ready(0, 10);
        assert_eq!(b.ready_time(0), Some(10));
        b.reserve(1, 10);
        assert!(!b.has_free_slot(), "both banks occupied");
        b.release(0, 25);
        assert!(b.has_free_slot());
        assert_eq!(b.last_release_time(), 25);
    }

    #[test]
    fn producer_blocks_when_both_banks_held() {
        let mut b = PingPongBuffer::new(2);
        b.reserve(0, 0);
        b.mark_ready(0, 5);
        b.reserve(1, 5);
        b.mark_ready(1, 9);
        // Tiles 0 and 1 both ready, none drained: a third reserve must wait.
        assert!(!b.has_free_slot());
        b.release(0, 12);
        b.reserve(2, 12);
        assert_eq!(b.occupancy(), 2);
    }

    #[test]
    fn average_occupancy_integrates_over_time() {
        let mut b = PingPongBuffer::new(2);
        b.reserve(0, 0); // occupancy 1 over [0, 10)
        b.mark_ready(0, 4);
        b.reserve(1, 10); // occupancy 2 over [10, 20)
        b.mark_ready(1, 15);
        b.release(0, 20); // occupancy 1 over [20, 40)
                          // Integral = 1·10 + 2·10 + 1·20 = 50 over 40 cycles.
        assert!((b.average_occupancy(40) - 1.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "full ping-pong buffer")]
    fn overfull_reserve_panics() {
        let mut b = PingPongBuffer::new(1);
        b.reserve(0, 0);
        b.reserve(1, 0);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn releasing_unknown_tile_panics() {
        let mut b = PingPongBuffer::new(2);
        b.reserve(0, 0);
        b.release(3, 1);
    }
}
