//! Published characteristics of the SOTA dynamic-sparsity Transformer
//! accelerators SOFA is compared against (paper Tables I & II), plus the
//! technology-normalised comparison metrics.

use sofa_hw::area::{scale_area_to_28nm, scale_freq_to_28nm, scale_power_to_28nm};

/// Whether an accelerator exploits structured or unstructured sparsity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sparsity {
    /// Unstructured (per Q-K pair) sparsity.
    Unstructured,
    /// Structured (block / head / token level) sparsity.
    Structured,
}

/// One row of Table II: the published hardware/software characteristics of an
/// accelerator, at its native technology node.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorRecord {
    /// Accelerator name.
    pub name: &'static str,
    /// Sparsity granularity.
    pub sparsity: Sparsity,
    /// Reported accuracy loss (fraction, e.g. 0.02 = 2 %).
    pub accuracy_loss: f64,
    /// Reported saved computation (fraction of attention work removed, net of
    /// prediction overhead).
    pub saved_computation: f64,
    /// Technology node in nm.
    pub tech_nm: f64,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Core area in mm² at the native node.
    pub area_mm2: f64,
    /// Core power in watts at the native node.
    pub core_power_w: f64,
    /// IO/DRAM power in watts (0 when not reported).
    pub io_power_w: f64,
    /// Effective throughput in GOPS at the native node.
    pub throughput_gops: f64,
    /// Whether the accelerator coordinates optimisation across stages
    /// (Table I "Cross Stage" column) — only SOFA does.
    pub cross_stage: bool,
    /// Whether it optimises attention memory access (Table I).
    pub optimizes_memory: bool,
}

impl AcceleratorRecord {
    /// Core energy efficiency at the native node (GOPS/W).
    pub fn core_energy_efficiency(&self) -> f64 {
        self.throughput_gops / self.core_power_w
    }

    /// Device (core + IO) energy efficiency at the native node (GOPS/W);
    /// falls back to the core-only number when IO power is not reported.
    pub fn device_energy_efficiency(&self) -> f64 {
        let total = self.core_power_w + self.io_power_w;
        self.throughput_gops / total
    }

    /// Throughput scaled to 28 nm (frequency scales with 1/s).
    pub fn throughput_gops_28nm(&self) -> f64 {
        let scale = scale_freq_to_28nm(self.freq_hz, self.tech_nm) / self.freq_hz;
        self.throughput_gops * scale
    }

    /// Area efficiency at 28 nm in GOPS/mm².
    pub fn area_efficiency_28nm(&self) -> f64 {
        self.throughput_gops_28nm() / scale_area_to_28nm(self.area_mm2, self.tech_nm)
    }

    /// Core energy efficiency scaled to 28 nm / 1.0 V in GOPS/W.
    pub fn core_energy_efficiency_28nm(&self, vdd: f64) -> f64 {
        self.throughput_gops_28nm() / scale_power_to_28nm(self.core_power_w, self.tech_nm, vdd)
    }

    /// Latency in seconds to execute an attention workload of `gops` GOPs when
    /// the accelerator is normalised to `multipliers` MAC units at `freq_hz`
    /// (the Table II latency methodology: effective ops per multiplier-cycle
    /// is preserved).
    pub fn normalized_latency_s(&self, gops: f64, multipliers: usize, freq_hz: f64) -> f64 {
        // Effective operations per cycle per multiplier at the native design.
        let native_mults = self.native_multipliers();
        let ops_per_cycle = self.throughput_gops * 1e9 / self.freq_hz / native_mults as f64;
        let scaled_ops_per_s = ops_per_cycle * multipliers as f64 * freq_hz;
        gops * 1e9 / scaled_ops_per_s
    }

    /// Approximate number of multipliers in the native design, used by the
    /// latency normalisation (FACT: 512, others estimated from area).
    pub fn native_multipliers(&self) -> usize {
        match self.name {
            "FACT" => 512,
            "Sanger" => 1024,
            "DOTA" => 512,
            "SOFA" => 128 * 8,
            _ => 256,
        }
    }
}

/// The eight SOTA accelerators of Table II plus SOFA itself (last entry).
pub fn sota_accelerators() -> Vec<AcceleratorRecord> {
    vec![
        AcceleratorRecord {
            name: "A3",
            sparsity: Sparsity::Unstructured,
            accuracy_loss: 0.053,
            saved_computation: 0.40,
            tech_nm: 40.0,
            freq_hz: 1.0e9,
            area_mm2: 2.08,
            core_power_w: 0.205,
            io_power_w: 0.617,
            throughput_gops: 221.0,
            cross_stage: false,
            optimizes_memory: false,
        },
        AcceleratorRecord {
            name: "ELSA",
            sparsity: Sparsity::Unstructured,
            accuracy_loss: 0.02,
            saved_computation: 0.73,
            tech_nm: 40.0,
            freq_hz: 1.0e9,
            area_mm2: 1.26,
            core_power_w: 0.969,
            io_power_w: 0.525,
            throughput_gops: 1090.0,
            cross_stage: false,
            optimizes_memory: false,
        },
        AcceleratorRecord {
            name: "Sanger",
            sparsity: Sparsity::Structured,
            accuracy_loss: 0.0,
            saved_computation: 0.76,
            tech_nm: 55.0,
            freq_hz: 500.0e6,
            area_mm2: 16.9,
            core_power_w: 2.76,
            io_power_w: 0.0,
            throughput_gops: 2285.0,
            cross_stage: false,
            optimizes_memory: false,
        },
        AcceleratorRecord {
            name: "DOTA",
            sparsity: Sparsity::Structured,
            accuracy_loss: 0.008,
            saved_computation: 0.80,
            tech_nm: 22.0,
            freq_hz: 1.0e9,
            area_mm2: 4.44,
            core_power_w: 3.02,
            io_power_w: 0.0,
            throughput_gops: 4905.0,
            cross_stage: false,
            optimizes_memory: false,
        },
        AcceleratorRecord {
            name: "Energon",
            sparsity: Sparsity::Unstructured,
            accuracy_loss: 0.009,
            saved_computation: 0.77,
            tech_nm: 45.0,
            freq_hz: 1.0e9,
            area_mm2: 4.2,
            core_power_w: 0.32,
            io_power_w: 2.4,
            throughput_gops: 1153.0,
            cross_stage: false,
            optimizes_memory: true,
        },
        AcceleratorRecord {
            name: "DTATrans",
            sparsity: Sparsity::Unstructured,
            accuracy_loss: 0.0074,
            saved_computation: 0.74,
            tech_nm: 40.0,
            freq_hz: 1.0e9,
            area_mm2: 1.49,
            core_power_w: 0.734,
            io_power_w: 0.0,
            throughput_gops: 1304.0,
            cross_stage: false,
            optimizes_memory: false,
        },
        AcceleratorRecord {
            name: "SpAtten",
            sparsity: Sparsity::Structured,
            accuracy_loss: 0.009,
            saved_computation: 0.67,
            tech_nm: 40.0,
            freq_hz: 1.0e9,
            area_mm2: 1.55,
            core_power_w: 0.325,
            io_power_w: 0.617,
            throughput_gops: 360.0,
            cross_stage: false,
            optimizes_memory: true,
        },
        AcceleratorRecord {
            name: "FACT",
            sparsity: Sparsity::Unstructured,
            accuracy_loss: 0.0,
            saved_computation: 0.79,
            tech_nm: 28.0,
            freq_hz: 500.0e6,
            area_mm2: 6.03,
            core_power_w: 0.337,
            io_power_w: 0.0,
            throughput_gops: 928.0,
            cross_stage: false,
            optimizes_memory: false,
        },
        AcceleratorRecord {
            name: "SOFA",
            sparsity: Sparsity::Unstructured,
            accuracy_loss: 0.0,
            saved_computation: 0.82,
            tech_nm: 28.0,
            freq_hz: 1.0e9,
            area_mm2: 5.69,
            core_power_w: 0.95,
            io_power_w: 2.45,
            throughput_gops: 24423.0,
            cross_stage: true,
            optimizes_memory: true,
        },
    ]
}

/// Looks up one accelerator by name.
pub fn find(name: &str) -> Option<AcceleratorRecord> {
    sota_accelerators().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_nine_rows_including_sofa() {
        let all = sota_accelerators();
        assert_eq!(all.len(), 9);
        assert!(all.iter().any(|a| a.name == "SOFA"));
        assert!(find("FACT").is_some());
        assert!(find("NotAnAccelerator").is_none());
    }

    #[test]
    fn only_sofa_is_cross_stage() {
        // Table I: every prior accelerator optimises stages in isolation.
        for a in sota_accelerators() {
            assert_eq!(a.cross_stage, a.name == "SOFA", "{}", a.name);
        }
    }

    #[test]
    fn sofa_has_the_highest_saved_computation_at_zero_loss() {
        let sofa = find("SOFA").unwrap();
        for a in sota_accelerators() {
            if a.accuracy_loss <= sofa.accuracy_loss && a.name != "SOFA" {
                assert!(sofa.saved_computation > a.saved_computation, "{}", a.name);
            }
        }
        assert!((sofa.saved_computation - 0.82).abs() < 1e-9);
    }

    #[test]
    fn sofa_device_energy_efficiency_matches_paper() {
        // Table II: SOFA device (core+IO) efficiency is 7183 GOPS/W.
        let sofa = find("SOFA").unwrap();
        let eff = sofa.device_energy_efficiency();
        assert!((eff - 7183.0).abs() / 7183.0 < 0.01, "got {eff}");
        // Core-only: 25708 GOPS/W.
        assert!((sofa.core_energy_efficiency() - 25708.0).abs() / 25708.0 < 0.01);
    }

    #[test]
    fn sofa_beats_every_sota_on_efficiency_after_scaling() {
        let sofa = find("SOFA").unwrap();
        let sofa_area_eff = sofa.area_efficiency_28nm();
        let sofa_core_eff = sofa.core_energy_efficiency_28nm(1.0);
        for a in sota_accelerators() {
            if a.name == "SOFA" {
                continue;
            }
            assert!(
                sofa_core_eff > a.core_energy_efficiency_28nm(1.0),
                "core efficiency vs {}",
                a.name
            );
            assert!(
                sofa_area_eff > a.area_efficiency_28nm(),
                "area eff vs {}",
                a.name
            );
        }
    }

    #[test]
    fn sofa_area_efficiency_is_about_4300_gops_per_mm2() {
        let sofa = find("SOFA").unwrap();
        let eff = sofa.area_efficiency_28nm();
        assert!((eff - 4292.0).abs() / 4292.0 < 0.02, "got {eff}");
    }

    #[test]
    fn fact_normalized_latency_matches_paper_method() {
        // The paper: FACT at 928 GOPS / 500 MHz / 512 multipliers executing a
        // 137-GOP attention slice, normalised to 128 multipliers at 1 GHz,
        // takes 2·137/928 ≈ 0.296 s.
        let fact = find("FACT").unwrap();
        let lat = fact.normalized_latency_s(137.0, 128, 1.0e9);
        assert!((lat - 0.296).abs() < 0.01, "got {lat}");
    }

    #[test]
    fn sofa_normalized_latency_is_lowest() {
        let gops = 137.0;
        let sofa = find("SOFA").unwrap().normalized_latency_s(gops, 128, 1.0e9);
        for a in sota_accelerators() {
            if a.name == "SOFA" {
                continue;
            }
            let lat = a.normalized_latency_s(gops, 128, 1.0e9);
            assert!(sofa < lat, "SOFA {sofa} vs {} {lat}", a.name);
        }
        // Paper Table II reports 45 ms.
        assert!((sofa - 0.045).abs() < 0.015, "SOFA latency {sofa}");
    }

    #[test]
    fn technology_scaling_raises_older_node_throughput() {
        let a3 = find("A3").unwrap();
        assert!(a3.throughput_gops_28nm() > a3.throughput_gops);
        let fact = find("FACT").unwrap();
        assert!((fact.throughput_gops_28nm() - fact.throughput_gops).abs() < 1e-9);
    }
}
