//! Baseline platforms SOFA is compared against (paper §V).
//!
//! * [`gpu`] — roofline-style models of the NVIDIA A100 GPU and a cloud TPU,
//!   including how much of SOFA's software optimisation (LP prediction,
//!   FlashAttention, SU-FA, RASS) each platform can exploit (Figs. 19 & 21).
//! * [`accelerators`] — the published characteristics of the eight SOTA
//!   dynamic-sparsity Transformer accelerators of Table II, plus technology
//!   scaling to a common 28 nm / 1 V node.

pub mod accelerators;
pub mod gpu;

pub use accelerators::{sota_accelerators, AcceleratorRecord, Sparsity};
pub use gpu::{DevicePlatform, GpuModel, SoftwareStack};
