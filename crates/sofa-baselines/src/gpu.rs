//! Roofline-style models of the NVIDIA A100 GPU and a cloud TPU, plus the
//! breakdown of how much of SOFA's mechanism each platform can exploit
//! (paper Figs. 19 and 21).
//!
//! The commodity platforms can run SOFA's *software* (LP prediction, the tiled
//! SU-FA schedule) but lack the dedicated datapaths, so each mechanism only
//! yields a fraction of its ASIC benefit. The per-mechanism gain factors below
//! are the calibration constants reported in the paper's ablation (Fig. 21);
//! multiplying them reproduces the headline 9.5×/11.1× speed-ups.

use sofa_hw::accel::AttentionTask;

/// Which commodity platform is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DevicePlatform {
    /// NVIDIA A100 (FP16 tensor cores).
    GpuA100,
    /// Cloud TPU (bf16 systolic array).
    Tpu,
}

/// How much of the SOFA stack is deployed on the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SoftwareStack {
    /// Low-complexity prediction + SADS software (token pruning the platform
    /// can partially exploit).
    pub software: bool,
    /// A DLZS engine attached to the platform (hardware ablation of Fig. 21).
    pub dlzs_engine: bool,
    /// A SADS engine attached.
    pub sads_engine: bool,
    /// An SU-FA engine attached.
    pub sufa_engine: bool,
    /// A RASS scheduling unit attached.
    pub rass_unit: bool,
}

impl SoftwareStack {
    /// Dense execution: nothing from SOFA.
    pub fn dense() -> Self {
        SoftwareStack::default()
    }

    /// Software-only SOFA (what a GPU/TPU can run today).
    pub fn software_only() -> Self {
        SoftwareStack {
            software: true,
            ..Self::default()
        }
    }

    /// The full stack (software plus every engine) — this is the SOFA ASIC.
    pub fn full() -> Self {
        SoftwareStack {
            software: true,
            dlzs_engine: true,
            sads_engine: true,
            sufa_engine: true,
            rass_unit: true,
        }
    }
}

/// Roofline model of a commodity accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Platform identity.
    pub platform: DevicePlatform,
    /// Peak half-precision throughput in FLOP/s.
    pub peak_flops: f64,
    /// Sustained HBM bandwidth in bytes/s.
    pub mem_bandwidth_bps: f64,
    /// Fraction of peak the platform reaches on attention kernels (launch
    /// overheads, softmax, reshapes).
    pub attention_utilization: f64,
    /// Dynamic power draw under the attention workload, in watts.
    pub dynamic_power_w: f64,
}

impl GpuModel {
    /// NVIDIA A100-80GB.
    pub fn a100() -> Self {
        GpuModel {
            platform: DevicePlatform::GpuA100,
            peak_flops: 312e12,
            mem_bandwidth_bps: 2.0e12,
            attention_utilization: 0.28,
            dynamic_power_w: 300.0,
        }
    }

    /// Cloud TPU (v3-class).
    pub fn tpu() -> Self {
        GpuModel {
            platform: DevicePlatform::Tpu,
            peak_flops: 123e12,
            mem_bandwidth_bps: 0.9e12,
            attention_utilization: 0.22,
            dynamic_power_w: 220.0,
        }
    }

    /// Per-mechanism speed-up factors the platform extracts from SOFA
    /// (Fig. 21(a)): `(software, dlzs, sads, sufa, rass)`.
    fn gain_factors(&self) -> (f64, f64, f64, f64, f64) {
        match self.platform {
            DevicePlatform::GpuA100 => (3.16, 1.65, 1.28, 1.26, 1.14),
            DevicePlatform::Tpu => (2.95, 1.60, 1.56, 1.13, 1.33),
        }
    }

    /// Speed-up over dense execution on this platform for a given stack.
    pub fn speedup(&self, stack: &SoftwareStack) -> f64 {
        let (sw, dlzs, sads, sufa, rass) = self.gain_factors();
        let mut s = 1.0;
        if stack.software {
            s *= sw;
        }
        if stack.dlzs_engine {
            s *= dlzs;
        }
        if stack.sads_engine {
            s *= sads;
        }
        if stack.sufa_engine {
            s *= sufa;
        }
        if stack.rass_unit {
            s *= rass;
        }
        s
    }

    /// Cumulative speed-up after each step of the Fig. 21 breakdown, in order:
    /// dense, +software, +DLZS, +SADS, +SU-FA, +RASS.
    pub fn cumulative_speedups(&self) -> Vec<(&'static str, f64)> {
        let (sw, dlzs, sads, sufa, rass) = self.gain_factors();
        let mut acc = 1.0;
        let mut out = vec![("dense", 1.0)];
        for (name, f) in [
            ("+SOFA software", sw),
            ("+DLZS engine", dlzs),
            ("+SADS engine", sads),
            ("+SU-FA engine", sufa),
            ("+RASS unit", rass),
        ] {
            acc *= f;
            out.push((name, acc));
        }
        out
    }

    /// Roofline execution time of a dense attention task on this platform.
    pub fn dense_attention_time_s(&self, task: &AttentionTask) -> f64 {
        let flops = task.dense_equivalent_ops();
        // Dense attention streams Q, K, V, the score matrix and the output.
        let t = task.queries as f64;
        let s = task.seq_len as f64;
        let h = task.hidden as f64;
        let a = task.heads as f64;
        let bytes = (t * h + 2.0 * s * h + t * h) * 2.0 + 4.0 * a * t * s * 2.0;
        let compute = flops / (self.peak_flops * self.attention_utilization);
        let memory = bytes / self.mem_bandwidth_bps;
        compute.max(memory)
    }

    /// Execution time with a given SOFA stack deployed.
    pub fn attention_time_s(&self, task: &AttentionTask, stack: &SoftwareStack) -> f64 {
        self.dense_attention_time_s(task) / self.speedup(stack)
    }

    /// Effective throughput in GOPS (dense-equivalent ops per second).
    pub fn effective_gops(&self, task: &AttentionTask, stack: &SoftwareStack) -> f64 {
        task.dense_equivalent_ops() / self.attention_time_s(task, stack) / 1e9
    }

    /// Effective energy efficiency in GOPS/W.
    pub fn energy_efficiency_gops_w(&self, task: &AttentionTask, stack: &SoftwareStack) -> f64 {
        self.effective_gops(task, stack) / self.dynamic_power_w
    }

    /// Speed-up the platform obtains from LP token pruning alone at a given
    /// accuracy-loss budget (paper: 1.08–1.78× — the GPU cannot exploit
    /// fine-grained sparsity, so the gain saturates well below `1/keep`).
    pub fn lp_only_speedup(&self, loss_budget: f64) -> f64 {
        if loss_budget >= 0.02 {
            1.76
        } else if loss_budget >= 0.01 {
            1.45
        } else {
            1.08
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> AttentionTask {
        AttentionTask::new(128, 4096, 4096, 32, 0.2, 16)
    }

    #[test]
    fn a100_and_tpu_models_differ() {
        let gpu = GpuModel::a100();
        let tpu = GpuModel::tpu();
        assert!(gpu.peak_flops > tpu.peak_flops);
        assert!(gpu.dense_attention_time_s(&task()) < tpu.dense_attention_time_s(&task()));
    }

    #[test]
    fn full_stack_speedups_match_paper_headlines() {
        // Fig. 21: GPU reaches ~9.5×, TPU ~11.1× with the full SOFA stack.
        let gpu = GpuModel::a100().speedup(&SoftwareStack::full());
        let tpu = GpuModel::tpu().speedup(&SoftwareStack::full());
        assert!((gpu - 9.5).abs() < 0.5, "GPU full-stack speedup {gpu}");
        assert!((tpu - 11.1).abs() < 0.8, "TPU full-stack speedup {tpu}");
    }

    #[test]
    fn software_only_speedups_match_paper() {
        let gpu = GpuModel::a100().speedup(&SoftwareStack::software_only());
        let tpu = GpuModel::tpu().speedup(&SoftwareStack::software_only());
        assert!((gpu - 3.16).abs() < 0.01);
        assert!((tpu - 2.95).abs() < 0.01);
        assert_eq!(GpuModel::a100().speedup(&SoftwareStack::dense()), 1.0);
    }

    #[test]
    fn cumulative_breakdown_is_increasing() {
        for model in [GpuModel::a100(), GpuModel::tpu()] {
            let steps = model.cumulative_speedups();
            assert_eq!(steps.len(), 6);
            assert!(steps.windows(2).all(|w| w[1].1 > w[0].1));
            assert_eq!(steps[0], ("dense", 1.0));
        }
    }

    #[test]
    fn speedup_reduces_time_and_raises_efficiency() {
        let gpu = GpuModel::a100();
        let t = task();
        let dense = gpu.attention_time_s(&t, &SoftwareStack::dense());
        let sw = gpu.attention_time_s(&t, &SoftwareStack::software_only());
        assert!(sw < dense);
        assert!(
            gpu.energy_efficiency_gops_w(&t, &SoftwareStack::software_only())
                > gpu.energy_efficiency_gops_w(&t, &SoftwareStack::dense())
        );
    }

    #[test]
    fn lp_only_speedup_is_modest_and_monotone() {
        let gpu = GpuModel::a100();
        assert!(gpu.lp_only_speedup(0.0) < gpu.lp_only_speedup(0.01));
        assert!(gpu.lp_only_speedup(0.01) < gpu.lp_only_speedup(0.02));
        assert!(gpu.lp_only_speedup(0.02) <= 1.78);
    }

    #[test]
    fn dense_time_is_positive_and_memory_or_compute_bound() {
        let gpu = GpuModel::a100();
        let t = task();
        let time = gpu.dense_attention_time_s(&t);
        assert!(time > 0.0);
        // Doubling both the sequence length and the query count (full prefill)
        // should more than triple the time — the score matrix grows
        // quadratically.
        let t2 = AttentionTask::new(256, 8192, 4096, 32, 0.2, 16);
        assert!(gpu.dense_attention_time_s(&t2) > 3.0 * time);
    }
}
