//! Error metrics and small statistics helpers.
//!
//! The accuracy-proxy evaluation in `sofa-core` compares sparse attention
//! outputs with the dense reference using these metrics; the DSE objective
//! consumes them as its `L_en` term.

use crate::matrix::Matrix;

/// Cosine similarity between two vectors. Returns 1.0 for two zero vectors
/// and 0.0 if exactly one is zero.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vectors must have the same length");
    let dot: f32 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 && nb == 0.0 {
        1.0
    } else if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// Mean over rows of the cosine similarity between corresponding rows of two
/// matrices.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mean_row_cosine(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape(), "matrices must have the same shape");
    if a.rows() == 0 {
        return 1.0;
    }
    let mut acc = 0.0;
    for i in 0..a.rows() {
        acc += cosine_similarity(a.row(i), b.row(i));
    }
    acc / a.rows() as f32
}

/// Relative Frobenius error `‖a − b‖ / ‖a‖` (0 if both are zero).
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn relative_error(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape(), "matrices must have the same shape");
    let diff = a.sub(b).expect("shapes checked").frobenius_norm();
    let norm = a.frobenius_norm();
    if norm == 0.0 {
        if diff == 0.0 {
            0.0
        } else {
            f32::INFINITY
        }
    } else {
        diff / norm
    }
}

/// Maximum absolute element-wise difference.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn max_abs_diff(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape(), "matrices must have the same shape");
    a.as_slice()
        .iter()
        .zip(b.as_slice().iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Mean of a slice (0.0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of a slice of positive values (0.0 for an empty slice).
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geometric mean requires positive values"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Population standard deviation of a slice (0.0 for fewer than two values).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Jaccard overlap between two index sets: `|A ∩ B| / |A ∪ B|`.
/// Returns 1.0 when both sets are empty.
pub fn jaccard(a: &[usize], b: &[usize]) -> f64 {
    use std::collections::HashSet;
    let sa: HashSet<usize> = a.iter().copied().collect();
    let sb: HashSet<usize> = b.iter().copied().collect();
    let union = sa.union(&sb).count();
    if union == 0 {
        return 1.0;
    }
    sa.intersection(&sb).count() as f64 / union as f64
}

/// Recall of `predicted` against `reference`: `|P ∩ R| / |R|`.
/// Returns 1.0 when the reference set is empty.
pub fn recall(predicted: &[usize], reference: &[usize]) -> f64 {
    use std::collections::HashSet;
    if reference.is_empty() {
        return 1.0;
    }
    let p: HashSet<usize> = predicted.iter().copied().collect();
    let hit = reference.iter().filter(|x| p.contains(x)).count();
    hit as f64 / reference.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basic_cases() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn mean_row_cosine_identical_matrices_is_one() {
        let m = Matrix::from_fn(4, 4, |i, j| (i + 2 * j) as f32 + 1.0);
        assert!((mean_row_cosine(&m, &m) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn relative_error_cases() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        let b = Matrix::zeros(1, 2);
        assert!((relative_error(&a, &a)).abs() < 1e-9);
        assert!((relative_error(&a, &b) - 1.0).abs() < 1e-6);
        assert_eq!(relative_error(&b, &b), 0.0);
        assert!(relative_error(&b, &a).is_infinite());
    }

    #[test]
    fn max_abs_diff_finds_largest() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![1.0, 2.5], vec![0.0, 4.0]]).unwrap();
        assert!((max_abs_diff(&a, &b) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn scalar_stats() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((std_dev(&[2.0, 2.0, 2.0])).abs() < 1e-12);
        assert!(std_dev(&[1.0, 3.0]) > 0.9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn set_metrics() {
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(recall(&[1, 2], &[]), 1.0);
        assert!((recall(&[1, 2, 5], &[1, 2, 3, 4]) - 0.5).abs() < 1e-12);
    }
}
