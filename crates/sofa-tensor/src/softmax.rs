//! Numerically stable softmax.
//!
//! The dense reference implementation used throughout the workspace. Sparse
//! and tiled variants (FlashAttention, SU-FA) in `sofa-core` are validated
//! against this module.

use crate::matrix::Matrix;

/// Computes the softmax of a single row in a numerically stable way
/// (subtracting the row maximum before exponentiation).
///
/// Returns a vector of the same length. An empty input yields an empty output.
///
/// # Example
///
/// ```
/// let p = sofa_tensor::softmax::softmax_row(&[1.0, 2.0, 3.0]);
/// assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// assert!(p[2] > p[1] && p[1] > p[0]);
/// ```
pub fn softmax_row(row: &[f32]) -> Vec<f32> {
    if row.is_empty() {
        return Vec::new();
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        // All inputs were -inf; fall back to a uniform distribution.
        return vec![1.0 / row.len() as f32; row.len()];
    }
    let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    if sum == 0.0 {
        return vec![1.0 / row.len() as f32; row.len()];
    }
    exps.into_iter().map(|e| e / sum).collect()
}

/// Applies [`softmax_row`] to every row of `m`.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for i in 0..m.rows() {
        let p = softmax_row(m.row(i));
        out.row_mut(i).copy_from_slice(&p);
    }
    out
}

/// Computes a masked softmax of a row: positions where `mask[j]` is `false`
/// receive probability zero and are excluded from the normalisation.
///
/// This is the semantics of top-k sparse attention — pruned Q-K pairs simply
/// do not participate.
///
/// # Panics
///
/// Panics if `row.len() != mask.len()`.
pub fn masked_softmax_row(row: &[f32], mask: &[bool]) -> Vec<f32> {
    assert_eq!(row.len(), mask.len(), "mask length must match row length");
    let max = row
        .iter()
        .zip(mask.iter())
        .filter(|(_, &m)| m)
        .map(|(&x, _)| x)
        .fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        return vec![0.0; row.len()];
    }
    let exps: Vec<f32> = row
        .iter()
        .zip(mask.iter())
        .map(|(&x, &m)| if m { (x - max).exp() } else { 0.0 })
        .collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_row_sums_to_one_and_is_monotone() {
        let p = softmax_row(&[0.0, 1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        for w in p.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn softmax_row_is_shift_invariant() {
        let a = softmax_row(&[1.0, 2.0, 3.0]);
        let b = softmax_row(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_row_handles_extreme_values() {
        let p = softmax_row(&[-1e30, 0.0, 1e30]);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_empty_and_all_neg_inf() {
        assert!(softmax_row(&[]).is_empty());
        let p = softmax_row(&[f32::NEG_INFINITY, f32::NEG_INFINITY]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_applies_per_row() {
        let m = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 10.0]]).unwrap();
        let s = softmax_rows(&m);
        assert!((s.get(0, 0) - 0.5).abs() < 1e-6);
        assert!(s.get(1, 1) > 0.99);
    }

    #[test]
    fn masked_softmax_excludes_masked_entries() {
        let p = masked_softmax_row(&[5.0, 100.0, 5.0], &[true, false, true]);
        assert_eq!(p[1], 0.0);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn masked_softmax_all_false_is_zero() {
        let p = masked_softmax_row(&[1.0, 2.0], &[false, false]);
        assert_eq!(p, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn masked_softmax_length_mismatch_panics() {
        let _ = masked_softmax_row(&[1.0], &[true, false]);
    }
}
