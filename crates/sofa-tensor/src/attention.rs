//! Dense reference attention.
//!
//! `dense_attention` is the ground truth every approximate scheme in the
//! workspace (DLZS prediction, SADS top-k, SU-FA) is validated against.

use crate::matrix::Matrix;
use crate::softmax::{masked_softmax_row, softmax_rows};

/// Computes the raw attention scores `Q · Kᵀ / √d`.
///
/// `q` is `(T, d)` (queries/tokens processed in parallel), `k` is `(S, d)`
/// (context keys). The result is `(T, S)`.
///
/// # Panics
///
/// Panics if the head dimensions of `q` and `k` differ.
pub fn attention_scores(q: &Matrix, k: &Matrix) -> Matrix {
    assert_eq!(q.cols(), k.cols(), "Q and K head dimensions must match");
    let scale = 1.0 / (q.cols() as f32).sqrt();
    q.matmul_transposed(k)
        .expect("dimension checked above")
        .scaled(scale)
}

/// Computes full dense attention `softmax(Q·Kᵀ/√d)·V`.
///
/// Shapes: `q: (T, d)`, `k: (S, d)`, `v: (S, d)` → output `(T, d)`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn dense_attention(q: &Matrix, k: &Matrix, v: &Matrix) -> Matrix {
    assert_eq!(
        k.rows(),
        v.rows(),
        "K and V must have the same context length"
    );
    let scores = attention_scores(q, k);
    let probs = softmax_rows(&scores);
    probs.matmul(v).expect("probabilities and V are conformant")
}

/// Computes attention with a per-row boolean mask over the keys: masked-out
/// Q-K pairs contribute nothing (top-k sparse attention semantics).
///
/// `mask` is `(T, S)` where entry `(i, j)` selects whether key `j` attends to
/// query `i`.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn masked_attention(q: &Matrix, k: &Matrix, v: &Matrix, mask: &[Vec<bool>]) -> Matrix {
    assert_eq!(
        k.rows(),
        v.rows(),
        "K and V must have the same context length"
    );
    assert_eq!(mask.len(), q.rows(), "mask must have one row per query");
    let scores = attention_scores(q, k);
    let mut out = Matrix::zeros(q.rows(), v.cols());
    for (i, mask_row) in mask.iter().enumerate() {
        assert_eq!(mask_row.len(), k.rows(), "mask row length must equal S");
        let probs = masked_softmax_row(scores.row(i), mask_row);
        for (j, &p) in probs.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let vrow = v.row(j);
            for (c, acc) in out.row_mut(i).iter_mut().enumerate() {
                *acc += p * vrow[c];
            }
        }
    }
    out
}

/// FLOP count of one dense attention over `t` queries, `s` keys, head dim `d`
/// (two matmuls; softmax ignored as in roofline practice).
pub fn dense_attention_flops(t: usize, s: usize, d: usize) -> u64 {
    // Q·Kᵀ: 2*t*s*d, P·V: 2*t*s*d
    4 * (t as u64) * (s as u64) * (d as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use rand::Rng;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = seeded_rng(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn scores_scale_by_sqrt_d() {
        let q = Matrix::from_rows(&[vec![1.0, 0.0, 0.0, 0.0]]).unwrap();
        let k = Matrix::from_rows(&[vec![2.0, 0.0, 0.0, 0.0]]).unwrap();
        let s = attention_scores(&q, &k);
        assert!((s.get(0, 0) - 1.0).abs() < 1e-6, "2 / sqrt(4) = 1");
    }

    #[test]
    fn dense_attention_output_shape() {
        let q = random_matrix(5, 8, 1);
        let k = random_matrix(12, 8, 2);
        let v = random_matrix(12, 8, 3);
        let o = dense_attention(&q, &k, &v);
        assert_eq!(o.shape(), (5, 8));
    }

    #[test]
    fn attention_with_identical_keys_averages_values() {
        // If all scores are equal the output is the mean of V rows.
        let q = Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let k = Matrix::from_rows(&[vec![1.0, 1.0], vec![-1.0, 2.0], vec![0.5, 0.5]]).unwrap();
        let v = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 3.0], vec![3.0, 3.0]]).unwrap();
        let o = dense_attention(&q, &k, &v);
        assert!((o.get(0, 0) - 2.0).abs() < 1e-6);
        assert!((o.get(0, 1) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn full_mask_equals_dense() {
        let q = random_matrix(4, 16, 10);
        let k = random_matrix(32, 16, 11);
        let v = random_matrix(32, 16, 12);
        let mask = vec![vec![true; 32]; 4];
        let dense = dense_attention(&q, &k, &v);
        let masked = masked_attention(&q, &k, &v, &mask);
        for i in 0..4 {
            for j in 0..16 {
                assert!((dense.get(i, j) - masked.get(i, j)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn single_key_mask_returns_that_value_row() {
        let q = random_matrix(1, 4, 20);
        let k = random_matrix(6, 4, 21);
        let v = random_matrix(6, 4, 22);
        let mut mask = vec![vec![false; 6]];
        mask[0][3] = true;
        let o = masked_attention(&q, &k, &v, &mask);
        for j in 0..4 {
            assert!((o.get(0, j) - v.get(3, j)).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_mask_row_yields_zero_output() {
        let q = random_matrix(1, 4, 30);
        let k = random_matrix(6, 4, 31);
        let v = random_matrix(6, 4, 32);
        let mask = vec![vec![false; 6]];
        let o = masked_attention(&q, &k, &v, &mask);
        assert!(o.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(dense_attention_flops(2, 3, 4), 4 * 2 * 3 * 4);
        assert_eq!(dense_attention_flops(0, 3, 4), 0);
    }
}
