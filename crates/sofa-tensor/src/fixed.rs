//! Fixed-point quantisation used by SOFA's mixed-precision pipeline.
//!
//! The paper's pre-compute stage operates on low-precision operands (4/8-bit
//! tokens, leading-zero-encoded weights) while the formal computing stage uses
//! 16-bit values. This module provides symmetric linear quantisation to an
//! arbitrary bit-width plus helpers to round-trip whole matrices, so that the
//! algorithm crates can reason about prediction error in exactly the same way
//! the hardware would.

use crate::matrix::Matrix;

/// Parameters of a symmetric linear quantiser: `q = clamp(round(x / scale))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Bit-width of the signed integer representation (2..=16).
    pub bits: u32,
    /// Scale factor mapping reals to integers.
    pub scale: f32,
}

impl QuantParams {
    /// Derives parameters so that `max_abs` maps onto the largest representable
    /// magnitude for the given `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=16`.
    pub fn from_max_abs(bits: u32, max_abs: f32) -> Self {
        assert!((2..=16).contains(&bits), "bits must be within 2..=16");
        let qmax = ((1i32 << (bits - 1)) - 1) as f32;
        let max_abs = if max_abs <= f32::EPSILON {
            1.0
        } else {
            max_abs
        };
        QuantParams {
            bits,
            scale: max_abs / qmax,
        }
    }

    /// Derives parameters from the observed dynamic range of a matrix.
    pub fn fit(bits: u32, m: &Matrix) -> Self {
        let max_abs = m.as_slice().iter().fold(0.0f32, |acc, &x| acc.max(x.abs()));
        Self::from_max_abs(bits, max_abs)
    }

    /// Largest representable positive integer value.
    pub fn qmax(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// Smallest representable (negative) integer value.
    pub fn qmin(&self) -> i32 {
        -(1i32 << (self.bits - 1))
    }

    /// Quantises a single value to the integer grid.
    pub fn quantize(&self, x: f32) -> i32 {
        let q = (x / self.scale).round() as i32;
        q.clamp(self.qmin(), self.qmax())
    }

    /// Dequantises a single integer value.
    pub fn dequantize(&self, q: i32) -> f32 {
        q as f32 * self.scale
    }
}

/// A quantised matrix: integer codes plus the parameters to decode them.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized {
    /// Quantisation parameters used to produce the codes.
    pub params: QuantParams,
    rows: usize,
    cols: usize,
    codes: Vec<i32>,
}

impl Quantized {
    /// Quantises `m` with the given bit-width, fitting the scale to its range.
    pub fn from_matrix(bits: u32, m: &Matrix) -> Self {
        let params = QuantParams::fit(bits, m);
        Self::from_matrix_with(params, m)
    }

    /// Quantises `m` with explicit parameters.
    pub fn from_matrix_with(params: QuantParams, m: &Matrix) -> Self {
        let codes = m.as_slice().iter().map(|&x| params.quantize(x)).collect();
        Quantized {
            params,
            rows: m.rows(),
            cols: m.cols(),
            codes,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Integer code at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn code(&self, i: usize, j: usize) -> i32 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.codes[i * self.cols + j]
    }

    /// All integer codes in row-major order.
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// Integer codes of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[i32] {
        assert!(i < self.rows, "row index out of bounds");
        &self.codes[i * self.cols..(i + 1) * self.cols]
    }

    /// Reconstructs the (lossy) floating point matrix.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.codes
                .iter()
                .map(|&q| self.params.dequantize(q))
                .collect(),
        )
        .expect("shape is consistent by construction")
    }

    /// Mean absolute quantisation error against the original matrix.
    ///
    /// # Panics
    ///
    /// Panics if `original` has a different shape.
    pub fn mean_abs_error(&self, original: &Matrix) -> f32 {
        assert_eq!(original.shape(), (self.rows, self.cols), "shape mismatch");
        let rec = self.to_matrix();
        let n = (self.rows * self.cols) as f32;
        original
            .as_slice()
            .iter()
            .zip(rec.as_slice().iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / n
    }
}

/// Number of bytes needed to store `elements` values at `bits` precision,
/// rounding up to whole bytes per element group (hardware-style packing).
pub fn packed_bytes(elements: usize, bits: u32) -> usize {
    (elements * bits as usize).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quant_params_round_trip_extremes() {
        let p = QuantParams::from_max_abs(8, 2.0);
        assert_eq!(p.qmax(), 127);
        assert_eq!(p.qmin(), -128);
        assert_eq!(p.quantize(2.0), 127);
        assert_eq!(p.quantize(-2.0), -127);
        assert_eq!(p.quantize(100.0), 127, "saturates above range");
        assert_eq!(p.quantize(-100.0), -128, "saturates below range");
    }

    #[test]
    fn quantize_zero_is_zero() {
        for bits in [4, 8, 16] {
            let p = QuantParams::from_max_abs(bits, 3.7);
            assert_eq!(p.quantize(0.0), 0);
            assert_eq!(p.dequantize(0), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "bits must be within")]
    fn invalid_bits_panics() {
        let _ = QuantParams::from_max_abs(1, 1.0);
    }

    #[test]
    fn fit_handles_zero_matrix() {
        let m = Matrix::zeros(2, 2);
        let p = QuantParams::fit(8, &m);
        assert!(p.scale > 0.0, "scale must stay positive for a zero matrix");
    }

    #[test]
    fn round_trip_error_shrinks_with_bits() {
        let m = Matrix::from_fn(16, 16, |i, j| ((i * 31 + j * 17) % 97) as f32 / 97.0 - 0.5);
        let e4 = Quantized::from_matrix(4, &m).mean_abs_error(&m);
        let e8 = Quantized::from_matrix(8, &m).mean_abs_error(&m);
        let e16 = Quantized::from_matrix(16, &m).mean_abs_error(&m);
        assert!(e4 > e8, "4-bit error {e4} should exceed 8-bit error {e8}");
        assert!(
            e8 > e16,
            "8-bit error {e8} should exceed 16-bit error {e16}"
        );
        assert!(e16 < 1e-3);
    }

    #[test]
    fn codes_and_rows_accessible() {
        let m = Matrix::from_rows(&[vec![1.0, -1.0], vec![0.5, 0.25]]).unwrap();
        let q = Quantized::from_matrix(8, &m);
        assert_eq!(q.rows(), 2);
        assert_eq!(q.cols(), 2);
        assert_eq!(q.codes().len(), 4);
        assert_eq!(q.row(0).len(), 2);
        assert_eq!(q.code(0, 0), 127);
        assert_eq!(q.code(0, 1), -127);
    }

    #[test]
    fn packed_bytes_examples() {
        assert_eq!(packed_bytes(8, 8), 8);
        assert_eq!(packed_bytes(8, 4), 4);
        assert_eq!(packed_bytes(3, 4), 2, "12 bits round up to 2 bytes");
        assert_eq!(packed_bytes(0, 16), 0);
    }
}
