//! Deterministic random number generation for reproducible experiments.
//!
//! Every experiment binary and test in the workspace derives its randomness
//! from [`seeded_rng`] so that two runs of the benchmark harness print the
//! same tables.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Constructs a ChaCha8 RNG from a 64-bit seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut a = sofa_tensor::seeded_rng(42);
/// let mut b = sofa_tensor::seeded_rng(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives a sub-seed from a base seed and a stream index, so independent
/// components of one experiment do not share random streams.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    // SplitMix64-style mixing.
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        let xs: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xs: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derive_seed_is_deterministic_and_spread() {
        assert_eq!(derive_seed(10, 0), derive_seed(10, 0));
        assert_ne!(derive_seed(10, 0), derive_seed(10, 1));
        assert_ne!(derive_seed(10, 1), derive_seed(11, 1));
    }
}
