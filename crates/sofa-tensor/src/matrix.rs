//! A small dense row-major `f32` matrix.
//!
//! The SOFA workloads only need a handful of operations: construction,
//! element access, matrix multiplication (optionally against a transposed
//! right-hand side), row slicing and a few reductions. Keeping the type tiny
//! and predictable makes the algorithm crates easy to audit against the paper.

use crate::TensorError;

/// Dense row-major matrix of `f32` values.
///
/// # Example
///
/// ```
/// use sofa_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows.checked_mul(cols).expect("matrix size overflow")],
        }
    }

    /// Reshapes this matrix in place to `rows × cols` with every entry reset
    /// to zero, reusing the existing allocation when it is large enough —
    /// the scratch-buffer primitive batched pipeline runs use to avoid one
    /// allocation per workload.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn reset_zeros(&mut self, rows: usize, cols: usize) {
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        self.data.clear();
        self.data.resize(len, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Creates a matrix whose `(i, j)` entry is `f(i, j)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidDimension {
                op: "Matrix::from_vec",
                value: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally sized rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if the rows are empty or have
    /// differing lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self, TensorError> {
        if rows.is_empty() {
            return Err(TensorError::InvalidDimension {
                op: "Matrix::from_rows",
                value: 0,
            });
        }
        let cols = rows[0].len();
        if cols == 0 || rows.iter().any(|r| r.len() != cols) {
            return Err(TensorError::InvalidDimension {
                op: "Matrix::from_rows",
                value: cols,
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f32) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j] = value;
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns row `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the matrix and returns the underlying row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns a new matrix that is the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Computes `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, TensorError> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(rrow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Computes `self * rhsᵀ` without materialising the transpose.
    ///
    /// This is the natural layout for attention scores `Q · Kᵀ` where `Q` and
    /// `K` are both stored token-major.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols() != rhs.cols()`.
    pub fn matmul_transposed(&self, rhs: &Matrix) -> Result<Matrix, TensorError> {
        if self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transposed",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..rhs.rows {
                let brow = rhs.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow.iter()) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        Ok(out)
    }

    /// Multiplies every element by `scale`, returning a new matrix.
    pub fn scaled(&self, scale: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * scale).collect(),
        }
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Element-wise subtraction (`self - rhs`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, TensorError> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        })
    }

    /// Returns a sub-matrix made of the given rows (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (oi, &ri) in indices.iter().enumerate() {
            out.row_mut(oi).copy_from_slice(self.row(ri));
        }
        out
    }

    /// Returns the maximum element, or `f32::NEG_INFINITY` for an empty matrix.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Returns the minimum element, or `f32::INFINITY` for an empty matrix.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Returns the mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Returns the Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self.get(i, j))?;
            }
            if self.cols > 8 {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeros_matches_fresh_allocation_across_reshapes() {
        let mut m = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f32 + 1.0);
        m.reset_zeros(2, 5);
        assert_eq!(m, Matrix::zeros(2, 5), "shrink must zero every entry");
        m.set(1, 4, 7.0);
        m.reset_zeros(4, 6);
        assert_eq!(m, Matrix::zeros(4, 6), "grow must zero every entry");
        m.reset_zeros(0, 0);
        assert!(m.is_empty());
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert_eq!(m.len(), 15);
        assert!(!m.is_empty());
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_validates() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f32);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 6, |i, j| (i as f32 * 0.3) - (j as f32 * 0.7));
        let b = Matrix::from_fn(5, 6, |i, j| (i as f32 * 0.1) + (j as f32 * 0.2));
        let via_t = a.matmul(&b.transpose()).unwrap();
        let direct = a.matmul_transposed(&b).unwrap();
        assert_eq!(via_t.shape(), direct.shape());
        for i in 0..4 {
            for j in 0..5 {
                assert!((via_t.get(i, j) - direct.get(i, j)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(3, 7, |i, j| (i * 13 + j) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (7, 3));
    }

    #[test]
    fn row_access_and_mutation() {
        let mut m = Matrix::zeros(2, 3);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
        m.set(0, 2, 9.0);
        assert_eq!(m.get(0, 2), 9.0);
    }

    #[test]
    fn select_rows_picks_in_order() {
        let m = Matrix::from_fn(4, 2, |i, _| i as f32);
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s.row(0), &[3.0, 3.0]);
        assert_eq!(s.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 0.0]]).unwrap();
        assert_eq!(m.max(), 3.0);
        assert_eq!(m.min(), -2.0);
        assert!((m.mean() - 0.5).abs() < 1e-6);
        assert!((m.frobenius_norm() - (14.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn add_sub_scaled() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]).unwrap();
        assert_eq!(a.add(&b).unwrap().row(0), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().row(0), &[2.0, 3.0]);
        assert_eq!(a.scaled(2.0).row(0), &[2.0, 4.0]);
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
        assert!(a.sub(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn display_does_not_panic_on_large() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m}");
        assert!(s.contains("Matrix 20x20"));
    }

    #[test]
    fn iter_rows_yields_all_rows() {
        let m = Matrix::from_fn(5, 3, |i, j| (i + j) as f32);
        assert_eq!(m.iter_rows().count(), 5);
        for (i, r) in m.iter_rows().enumerate() {
            assert_eq!(r, m.row(i));
        }
    }
}
