//! Numeric substrate for the SOFA reproduction.
//!
//! This crate provides the low-level building blocks every other crate in the
//! workspace relies on:
//!
//! * [`Matrix`] — a small, dense, row-major `f32` matrix with the handful of
//!   linear-algebra operations attention needs (matmul, transpose, row views).
//! * [`fixed`] — INT8/INT16 fixed-point quantisation used by the SOFA
//!   pre-compute stage (the paper predicts attention with 4/8-bit operands and
//!   computes formally in 16-bit).
//! * [`softmax`] — numerically stable reference softmax.
//! * [`attention`] — dense reference attention (`softmax(QKᵀ/√d)·V`) used as
//!   the ground truth for every sparse/approximate scheme in the workspace.
//! * [`stats`] — error metrics (cosine similarity, relative error, …) used by
//!   the accuracy-proxy evaluation.
//! * [`rng`] — deterministic RNG construction so experiments are reproducible.
//!
//! # Example
//!
//! ```
//! use sofa_tensor::{Matrix, attention::dense_attention};
//!
//! let q = Matrix::from_fn(4, 8, |i, j| (i + j) as f32 * 0.01);
//! let k = Matrix::from_fn(16, 8, |i, j| (i * j) as f32 * 0.01);
//! let v = Matrix::from_fn(16, 8, |i, j| (i as f32 - j as f32) * 0.01);
//! let out = dense_attention(&q, &k, &v);
//! assert_eq!(out.rows(), 4);
//! assert_eq!(out.cols(), 8);
//! ```

pub mod attention;
pub mod fixed;
pub mod matrix;
pub mod rng;
pub mod softmax;
pub mod stats;

pub use fixed::{QuantParams, Quantized};
pub use matrix::Matrix;
pub use rng::seeded_rng;

/// Errors produced by the numeric substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand (rows, cols).
        lhs: (usize, usize),
        /// Shape of the right-hand operand (rows, cols).
        rhs: (usize, usize),
    },
    /// A dimension argument was zero or otherwise invalid.
    InvalidDimension {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// The offending value.
        value: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{} vs rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::InvalidDimension { op, value } => {
                write!(f, "invalid dimension {value} in {op}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));

        let e = TensorError::InvalidDimension {
            op: "from_fn",
            value: 0,
        };
        assert!(e.to_string().contains("from_fn"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
