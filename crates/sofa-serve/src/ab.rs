//! Serving a trace under a DSE-tuned operating point, side by side with the
//! paper default.
//!
//! `sofa-dse`'s [`DseReport`] recommends one `(keep ratio, tile size)`
//! operating point ([`DseReport::tuned_operating_point`]). This module makes
//! that report directly consumable by the serving layer:
//! [`ServeSim::run_ab`] serves the *same* request trace twice — once with
//! the scheduler's own configuration and the trace's native keep ratios
//! (the paper-default deployment), once re-lowered at the tuned point — and
//! returns both reports so latency percentiles, throughput and queueing can
//! be compared request for request.

use crate::report::ServeReport;
use crate::scheduler::ServeSim;
use sofa_dse::DseReport;
use sofa_model::trace::RequestTrace;

/// The two serving outcomes of one [`ServeSim::run_ab`] call, plus the tuned
/// operating point that produced the B side.
#[derive(Debug, Clone, PartialEq)]
pub struct DseServeComparison {
    /// The trace served with the scheduler's configuration as-is.
    pub baseline: ServeReport,
    /// The trace re-lowered at the tuned keep ratio / tile size.
    pub tuned: ServeReport,
    /// Keep ratio every request was re-lowered with.
    pub tuned_keep_ratio: f64,
    /// Tile size the tuned run was lowered with.
    pub tuned_tile_size: usize,
}

impl DseServeComparison {
    /// Tail-latency gain of the tuned configuration (`baseline p95 /
    /// tuned p95`; > 1 means the tuned point is faster).
    pub fn p95_gain(&self) -> f64 {
        self.baseline.p95() as f64 / self.tuned.p95().max(1) as f64
    }

    /// Makespan gain of the tuned configuration (> 1 means faster).
    pub fn makespan_gain(&self) -> f64 {
        self.baseline.total_cycles as f64 / self.tuned.total_cycles.max(1) as f64
    }
}

impl ServeSim {
    /// Serves `trace` with every request's keep ratio overridden to `keep`
    /// and the lowering tile size set to `tile_size`; everything else (HW,
    /// instances, admission policy) comes from this scheduler's config.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is outside `(0, 1]` or `tile_size` is zero (the
    /// rebuilt configuration fails validation), or if `trace` is empty.
    pub fn run_tuned(&self, trace: &RequestTrace, keep: f64, tile_size: usize) -> ServeReport {
        assert!(
            keep > 0.0 && keep <= 1.0,
            "tuned keep ratio out of range: {keep}"
        );
        let mut cfg = *self.config();
        cfg.tile_size = tile_size;
        let mut tuned_trace = trace.clone();
        for spec in &mut tuned_trace.requests {
            spec.keep_ratio = keep;
        }
        ServeSim::new(cfg).run(&tuned_trace)
    }

    /// Serves `trace` twice — as configured, and at `dse`'s tuned operating
    /// point — and returns both reports for side-by-side comparison.
    pub fn run_ab(&self, trace: &RequestTrace, dse: &DseReport) -> DseServeComparison {
        let (keep, tile) = dse.tuned_operating_point();
        DseServeComparison {
            baseline: self.run(trace),
            tuned: self.run_tuned(trace, keep, tile),
            tuned_keep_ratio: keep,
            tuned_tile_size: tile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServeConfig;
    use sofa_dse::{hardware_aware_search, DseSearchConfig, EvalConfig, HwAwareEvaluator};
    use sofa_hw::config::HwConfig;
    use sofa_model::trace::TraceConfig;

    fn trace(n: usize, seed: u64) -> RequestTrace {
        let mut tc = TraceConfig::new(n, 80.0, seed);
        tc.seq_len = 256;
        tc.hidden = 256;
        tc.heads = 4;
        tc.prefill_queries = 8;
        RequestTrace::generate(&tc)
    }

    fn smoke_dse(seed: u64) -> DseReport {
        let evaluator = HwAwareEvaluator::new(EvalConfig::tiny(seed), 2);
        hardware_aware_search(&evaluator, &DseSearchConfig::smoke(seed))
    }

    #[test]
    fn tuned_run_overrides_every_request() {
        let sim = ServeSim::new(ServeConfig::new(HwConfig::small(), 1));
        let t = trace(8, 3);
        let tuned = sim.run_tuned(&t, 0.1, 64);
        assert_eq!(tuned.records.len(), 8);
        // A 10% keep ratio books smaller footprints than the trace's native
        // 25%-ish ratios under measured-footprint admission.
        let base = sim.run(&t);
        let sum = |r: &ServeReport| r.records.iter().map(|x| x.footprint_bytes).sum::<u64>();
        assert!(sum(&tuned) < sum(&base));
    }

    #[test]
    fn ab_comparison_is_deterministic_and_complete() {
        let sim = ServeSim::new(ServeConfig::new(HwConfig::small(), 2));
        let t = trace(10, 7);
        let dse = smoke_dse(7);
        let a = sim.run_ab(&t, &dse);
        let b = sim.run_ab(&t, &dse);
        assert_eq!(a, b);
        assert_eq!(a.baseline.records.len(), 10);
        assert_eq!(a.tuned.records.len(), 10);
        assert_eq!(
            (a.tuned_keep_ratio, a.tuned_tile_size),
            dse.tuned_operating_point()
        );
        assert!(a.p95_gain() > 0.0);
        assert!(a.makespan_gain() > 0.0);
    }

    #[test]
    #[should_panic(expected = "keep ratio out of range")]
    fn invalid_tuned_keep_panics() {
        let sim = ServeSim::new(ServeConfig::new(HwConfig::small(), 1));
        let _ = sim.run_tuned(&trace(4, 1), 0.0, 32);
    }
}
