//! The continuous-batching admission scheduler.
//!
//! [`ServeSim`] multiplexes a [`RequestTrace`] onto `N` simulated SOFA
//! instances. Requests are lowered once into [`PipelineJob`]s; admission then
//! interleaves with the cycle-level simulation — a request admitted at cycle
//! `t` has its tiles enter the instance's stream at `t`, and the completion
//! events the simulation produces feed the next admission decision. This is
//! continuous batching at tile granularity: an instance never drains between
//! requests, new tiles enter right behind the previous request's.
//!
//! **Operating points.** Every request is lowered at an [`OperatingPoint`]
//! chosen by an [`OpRouter`] — the trace's native keep ratios on the
//! deployment tiling, one fixed point, or per-class Pareto routing through a
//! DSE front ([`sofa_dse::ParetoFront`]). A multi-layer point lowers the
//! request once per layer, switching keep ratio and tile size between the
//! layer invocations, and streams the concatenated tile sequence through the
//! instance. Scalar `(keep, Bc)` pairs never enter the lowering.
//!
//! **Energy budget.** Lowering projects each request's energy from the DSE
//! energy model (analytic compute/SRAM/interface/DRAM energy plus the
//! per-DRAM-request activation charge). When the configured per-request
//! budget ([`ServeConfig::energy_budget_pj_per_req`]) is exceeded, the
//! scheduler re-routes the request to the front's energy-leanest point; a
//! request that exceeds the budget even there is **shed** — recorded in
//! [`ServeReport::shed`] instead of being admitted. Admitted energy is
//! tracked per instance.
//!
//! Admission is buffer-budgeted. Classic worst-case sizing reserves, per
//! admitted request, the SRAM a *dense* request would pin — but after the
//! prediction stage, top-k sparsity means the real resident footprint is a
//! fraction of that. With [`ServeConfig::predicted_footprint`] the scheduler
//! books the measured (sparsity-aware) footprint instead, and
//! [`ServeConfig::overbook`] further relaxes the budget — the
//! buffer-overbooking idea Tailors applies to sparse workloads. Requests are
//! picked smallest-footprint-first (best packing) unless one has waited past
//! [`ServeConfig::aging_threshold`], in which case the oldest starved
//! request is served first.
//!
//! **Adaptive control loop.** Four opt-in mechanisms close the loop on
//! *measured* state. Every adaptive decision happens inside the serial
//! event loop (re-lowering there is a pure function of already-deterministic
//! inputs), so the determinism contract — bit-identical reports and trace
//! bytes at any `SOFA_THREADS` — is untouched:
//!
//! * **decay** ([`ServeConfig::decay_threshold`]) — a request waiting past
//!   the threshold is re-lowered to a leaner operating point (decodes to
//!   the front's cycle-leanest point, prefills to its energy-leanest)
//!   instead of only being priority-aged, and the reroute is recorded on
//!   the request ([`RequestRecord::decayed`]) and traced as an instant;
//! * **feedback** ([`OpRouter::Feedback`]) — per-instance EWMAs of
//!   completion latency and energy plus a wait-queue-depth EWMA map
//!   measured overload to a pressure level
//!   ([`FeedbackConfig`]), which shifts the routing eligibility bar along
//!   the front ([`sofa_dse::ParetoFront::route_pressure`]) at admission
//!   time;
//! * **retry** ([`ServeConfig::retry`]) — a shed request re-arrives after a
//!   deterministic client backoff at a leaner keep ratio (the client's
//!   degrade-and-retry model) and is recorded as shed only once its
//!   retries are exhausted; served retries are counted separately
//!   ([`ServeReport::retried`]);
//! * **per-instance energy budgets**
//!   ([`ServeConfig::instance_energy_budget_pj`]) — placement filters and
//!   orders candidate instances by in-flight energy headroom as well as
//!   booked bytes, so load balance trades against thermal/energy headroom.

use crate::report::{RequestRecord, ServeReport, ShedRecord};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use sofa_core::cache::{CacheStats, LoweringCache, ShapeKey};
use sofa_dse::ParetoFront;
use sofa_hw::accel::AttentionTask;
use sofa_hw::config::HwConfig;
use sofa_hw::energy::DRAM_ACTIVATION_PJ;
use sofa_model::trace::{RequestClass, RequestSpec, RequestTrace};
use sofa_model::OperatingPoint;
use sofa_obs::{ArgValue, MetricsRegistry, TraceRecorder};
use sofa_sim::tracks::PID_SERVE_BASE;
use sofa_sim::{CycleSim, MultiPipelineSim, PipelineJob, SimParams};

/// Process id of the per-request lifecycle tracks (tid = request id).
pub const PID_REQUESTS: u64 = PID_SERVE_BASE;
/// Process id of the scheduler-level counter tracks (wait-queue depth).
pub const PID_SCHEDULER: u64 = PID_SERVE_BASE + 1;
/// Track id, within an instance process, of the booked-bytes counter.
pub const TID_SERVE_INFLIGHT: u64 = 8;
/// Track id, within an instance process, of the admitted-energy counter.
pub const TID_SERVE_ENERGY: u64 = 9;

/// Trace-viewer label of a request class.
fn class_name(class: RequestClass) -> &'static str {
    match class {
        RequestClass::Prefill => "prefill",
        RequestClass::Decode => "decode",
    }
}

/// How the scheduler picks the next waiting request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitPolicy {
    /// Strict arrival order.
    Fifo,
    /// Smallest buffer footprint first (best packing under the budget);
    /// priority aging still bounds the wait of large requests.
    SmallestFirst,
}

/// Deterministic client retry model for shed requests
/// ([`ServeConfig::retry`]).
///
/// A request the energy budget sheds is not dropped: the client re-submits
/// it `backoff_cycles` later at a leaner keep ratio — each attempt shrinks
/// the keep by `keep_factor` from the router's leanest point — until it fits
/// the budget or `max_retries` attempts are exhausted, at which point it is
/// finally recorded in [`ServeReport::shed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Cycles the client waits before re-submitting a shed request.
    pub backoff_cycles: u64,
    /// Attempts after the initial submission before the request is shed for
    /// good.
    pub max_retries: u32,
    /// Keep-ratio shrink per attempt, in `(0, 1]`: attempt `n` re-lowers at
    /// `leanest_keep × keep_factorⁿ`.
    pub keep_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            backoff_cycles: 50_000,
            max_retries: 2,
            keep_factor: 0.5,
        }
    }
}

/// Measured-state parameters of [`OpRouter::Feedback`].
///
/// The scheduler keeps an EWMA (`ewma ← α·sample + (1−α)·ewma`) of each
/// instance's completion latency and per-request energy, and of the wait
/// queue depth, sampled at every completion. The hottest instance's latency
/// EWMA against `target_latency_cycles` and the queue EWMA against
/// `queue_depth_bar` map to a discrete pressure level (0, 1 or 2) that
/// shifts the routing eligibility bar along the Pareto front
/// ([`sofa_dse::ParetoFront::route_pressure`]): level 1 drops the
/// keep-parity bar, level 2 routes straight to the leanest points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackConfig {
    /// Completion-latency target in cycles (the SLO the loop steers toward).
    /// Latency EWMA past the target is pressure 1; past twice the target,
    /// pressure 2.
    pub target_latency_cycles: u64,
    /// EWMA smoothing factor in `(0, 1]` — higher reacts faster.
    pub alpha: f64,
    /// Wait-queue depth whose EWMA alone raises pressure to 1 (2 at twice
    /// the bar), so feedback engages even before slow completions land.
    pub queue_depth_bar: usize,
    /// Optional per-request energy EWMA bar: when the hottest instance's
    /// admitted-energy EWMA exceeds it, pressure rises one level (energy
    /// headroom recovers by routing leaner).
    pub energy_bar_pj: Option<f64>,
}

impl FeedbackConfig {
    /// A feedback loop targeting `target_latency_cycles` with the defaults:
    /// `alpha = 0.25`, queue-depth bar 8, no energy bar.
    pub fn new(target_latency_cycles: u64) -> Self {
        FeedbackConfig {
            target_latency_cycles,
            alpha: 0.25,
            queue_depth_bar: 8,
            energy_bar_pj: None,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.target_latency_cycles == 0 {
            return Err("feedback target latency must be positive".into());
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err("feedback alpha must be in (0, 1]".into());
        }
        if self.queue_depth_bar == 0 {
            return Err("feedback queue depth bar must be positive".into());
        }
        if let Some(bar) = self.energy_bar_pj {
            if bar <= 0.0 || bar.is_nan() {
                return Err("feedback energy bar must be positive".into());
            }
        }
        Ok(())
    }
}

/// How each request's operating point is chosen at admission time.
#[derive(Debug, Clone, Copy)]
pub enum OpRouter<'a> {
    /// The trace's native keep ratios on the deployment tiling
    /// ([`ServeConfig::op`] with each request's keep substituted).
    TraceNative,
    /// One fixed operating point for every request (single-point tuned
    /// deployments, paper-default baselines).
    Fixed(&'a OperatingPoint),
    /// Per-class routing through a DSE Pareto front: latency-lean points for
    /// decodes, energy-lean points for prefills
    /// ([`ParetoFront::route`]).
    Pareto(&'a ParetoFront),
    /// Pareto routing closed on measured state: requests pre-lower exactly
    /// like [`OpRouter::Pareto`], but at admission time the scheduler's
    /// pressure level (EWMAs of completion latency, queue depth and energy —
    /// see [`FeedbackConfig`]) shifts the eligibility bar along the front
    /// ([`sofa_dse::ParetoFront::route_pressure`]), re-lowering the picked
    /// request to a leaner point when the measured tail drifts past target.
    Feedback(&'a ParetoFront, &'a FeedbackConfig),
}

impl OpRouter<'_> {
    /// The operating point this router assigns to `spec`.
    pub(crate) fn pick(&self, deployment: &OperatingPoint, spec: &RequestSpec) -> OperatingPoint {
        match self {
            OpRouter::TraceNative => deployment.with_uniform_keep(spec.keep_ratio),
            OpRouter::Fixed(op) => (*op).clone(),
            OpRouter::Pareto(front) | OpRouter::Feedback(front, _) => front.route(&spec.class),
        }
    }

    /// The leaner point an over-budget request is re-routed to, when the
    /// router has one (only front-backed routing does).
    fn leaner(&self) -> Option<OperatingPoint> {
        match self {
            OpRouter::Pareto(front) | OpRouter::Feedback(front, _) => Some(front.leanest_energy()),
            _ => None,
        }
    }

    /// The point a decayed (over-waited) request re-lowers to: the front's
    /// cycle-leanest point for decodes (drain the queue fast), its
    /// energy-leanest for prefills (cheapest way through the backlog).
    /// `None` for routers without a front — decay is a no-op there.
    fn decay_target(&self, class: RequestClass) -> Option<OperatingPoint> {
        let front = match self {
            OpRouter::Pareto(front) | OpRouter::Feedback(front, _) => front,
            _ => return None,
        };
        Some(match class {
            RequestClass::Decode => front.leanest_cycles(),
            RequestClass::Prefill => front.leanest_energy(),
        })
    }
}

/// Configuration of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Hardware configuration of every instance.
    pub hw: HwConfig,
    /// Microarchitectural simulation parameters (shared by all instances).
    /// [`ServeConfig::new`] enables the calibrated DRAM command occupancy so
    /// routing decisions see request-granularity DRAM effects.
    pub sim: SimParams,
    /// Number of accelerator instances.
    pub instances: usize,
    /// The deployment operating point: the tiling requests are lowered with
    /// when no router overrides it (trace-native runs substitute each
    /// request's keep ratio into this point).
    pub op: OperatingPoint,
    /// Per-instance admission budget in bytes (defaults to the token SRAM).
    pub admit_buffer_bytes: u64,
    /// Budget relaxation factor (≥ 1): `budget = admit_buffer_bytes ×
    /// overbook`. Overbooking banks on sparsity keeping real occupancy
    /// below the accounted footprints.
    pub overbook: f64,
    /// Account the measured sparse footprint (`true`, Tailors-style) or the
    /// worst-case dense footprint (`false`, classic sizing) per request.
    pub predicted_footprint: bool,
    /// Waiting cycles beyond which a request overrides the admission policy
    /// (starvation bound for `SmallestFirst`).
    pub aging_threshold: u64,
    /// Pick order among waiting requests.
    pub policy: AdmitPolicy,
    /// Per-request energy ceiling in picojoules (the per-instance J/req
    /// budget from the DSE energy model). `None` disables the energy path;
    /// with a budget, over-budget requests are re-routed to the router's
    /// leanest point and shed if still over.
    pub energy_budget_pj_per_req: Option<f64>,
    /// Waiting cycles beyond which a queued request *decays*: it is
    /// re-lowered to the router's decay target (cycle-leanest for decodes,
    /// energy-leanest for prefills) instead of only being priority-aged.
    /// `None` (the default) disables decay; routers without a Pareto front
    /// ignore it.
    pub decay_threshold: Option<u64>,
    /// Client retry model for shed requests. `None` (the default) sheds
    /// immediately, exactly as before the adaptive controller existed.
    pub retry: Option<RetryPolicy>,
    /// Per-instance in-flight energy ceiling in picojoules. When set,
    /// placement skips instances whose booked (admitted-but-uncompleted)
    /// energy would exceed it — unless the instance is idle, so oversized
    /// requests still make progress — and breaks booked-bytes ties toward
    /// the most energy headroom. `None` (the default) keeps pure
    /// least-booked placement.
    pub instance_energy_budget_pj: Option<f64>,
    /// Memoise lowerings on `(request shape, operating point)` keys
    /// (default `true`). Lowering is a pure function of that key, so the
    /// cache changes wall time only — reports and trace bytes are
    /// bit-identical either way (proven by the cache-differential tests).
    pub lowering_cache: bool,
}

impl ServeConfig {
    /// A serving setup of `instances` copies of `hw` with the defaults:
    /// smallest-first admission on measured footprints, no overbooking,
    /// aging after 100k cycles, DRAM priority aging after 4 burst latencies,
    /// calibrated DRAM command occupancy, a single-layer deployment point at
    /// the trace-default keep and `Bc = 32`, and no energy budget.
    pub fn new(hw: HwConfig, instances: usize) -> Self {
        let mut sim = SimParams::default();
        sim.dram_age_threshold = 4 * sim.burst_latency;
        let sim = sim.with_dram_command_calibration(&hw);
        ServeConfig {
            hw,
            sim,
            instances,
            op: OperatingPoint::single(0.25, 32),
            admit_buffer_bytes: hw.token_sram_bytes as u64,
            overbook: 1.0,
            predicted_footprint: true,
            aging_threshold: 100_000,
            policy: AdmitPolicy::SmallestFirst,
            energy_budget_pj_per_req: None,
            decay_threshold: None,
            retry: None,
            instance_energy_budget_pj: None,
            lowering_cache: true,
        }
    }

    /// The effective per-instance budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        (self.admit_buffer_bytes as f64 * self.overbook).round() as u64
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.instances == 0 {
            return Err("instances must be positive".into());
        }
        if self.admit_buffer_bytes == 0 {
            return Err("admit_buffer_bytes must be positive".into());
        }
        if self.overbook < 1.0 || self.overbook.is_nan() {
            return Err("overbook must be >= 1".into());
        }
        if let Some(b) = self.energy_budget_pj_per_req {
            if b <= 0.0 || b.is_nan() {
                return Err("energy budget must be positive".into());
            }
        }
        if let Some(b) = self.instance_energy_budget_pj {
            if b <= 0.0 || b.is_nan() {
                return Err("instance energy budget must be positive".into());
            }
        }
        if let Some(retry) = &self.retry {
            if retry.backoff_cycles == 0 {
                return Err("retry backoff must be positive".into());
            }
            if retry.max_retries == 0 {
                return Err("retry max_retries must be positive".into());
            }
            if !(retry.keep_factor > 0.0 && retry.keep_factor <= 1.0) {
                return Err("retry keep_factor must be in (0, 1]".into());
            }
        }
        Ok(())
    }
}

/// One request lowered and waiting for (or past) admission.
#[derive(Debug)]
pub(crate) struct Lowered {
    pub(crate) class: RequestClass,
    /// Effective arrival: the spec's arrival cycle, or the re-arrival time
    /// once a shed request's retry is admitted (latency is measured from
    /// the client's live submission).
    pub(crate) arrival: u64,
    /// The original spec, kept so the adaptive controller can re-lower the
    /// request at a different operating point mid-run.
    pub(crate) spec: RequestSpec,
    /// The operating point the current lowering used.
    pub(crate) op: OperatingPoint,
    /// The lowered tile stream, shared with every other request that lowered
    /// to the same `(shape, operating point)` key when the cache is on.
    pub(crate) job: Arc<PipelineJob>,
    /// Bytes admission control books for the request (the worst layer).
    pub(crate) footprint: u64,
    /// Projected energy of the whole request (all layers) in picojoules.
    pub(crate) energy_pj: f64,
    /// Whether any mechanism (energy budget, decay, feedback, retry)
    /// re-routed this request away from its first-pick point.
    pub(crate) rerouted: bool,
    /// `false` when the request exceeded the energy budget even at the
    /// leanest point and was shed instead of admitted (a retry that fits
    /// the budget flips it back to `true`).
    pub(crate) admit: bool,
    /// Whether the decay threshold re-lowered this request while it waited.
    pub(crate) decayed: bool,
    /// Decay was evaluated (possibly rejected); guards repeated re-lowering.
    pub(crate) decay_checked: bool,
    /// Client re-submissions so far (0 for first-attempt requests).
    pub(crate) retries: u32,
    /// Pressure level of the lowering currently in `job` (feedback router).
    pub(crate) level: u8,
}

/// The continuous-batching serving simulator.
#[derive(Debug)]
pub struct ServeSim {
    cfg: ServeConfig,
}

impl ServeSim {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ServeConfig::validate`].
    pub fn new(cfg: ServeConfig) -> Self {
        cfg.validate().expect("invalid serve config");
        ServeSim { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Lowers one request at `op`: one pipeline job per layer, concatenated
    /// into a single tile stream, plus the admission footprint and the
    /// projected energy.
    ///
    /// The footprint is the state an instance pins for the life of an
    /// in-flight layer (tiles merely stream through the ping-pong banks):
    /// the query block and the output accumulator (`T×H` 16-bit values
    /// each) plus per-selected-key metadata — index and predicted score,
    /// 4 B per kept Q-K pair. Layers run back to back, so admission books
    /// the worst layer. Worst-case sizing must budget for a dense selection
    /// (every key kept); the *measured* footprint books only the `T×k`
    /// pairs the prediction stage actually keeps — the capacity overbooking
    /// reclaims.
    ///
    /// The energy projection follows the DSE evaluator's model: the
    /// analytic compute/SRAM/interface/DRAM energy of each layer's task
    /// plus [`DRAM_ACTIVATION_PJ`] per DRAM request the lowered job issues.
    fn lower_at(&self, csim: &CycleSim, spec: &RequestSpec, op: &OperatingPoint) -> PointLowering {
        let t = spec.queries as u64;
        let h = spec.hidden as u64;
        let mut combined = PipelineJob {
            work: Vec::new(),
            cycles: Vec::new(),
        };
        let mut footprint = 0u64;
        let mut energy_pj = 0.0f64;
        for layer in 0..op.layers() {
            let task = AttentionTask::at_layer(
                spec.queries,
                spec.seq_len,
                spec.hidden,
                spec.heads,
                op,
                layer,
            );
            let job = csim.job(&task, None);
            let requests = job.dram_requests();
            let analytic = csim.accel.simulate(&task);
            energy_pj += analytic.energy.total_j() * 1e12 + requests as f64 * DRAM_ACTIVATION_PJ;
            let kept_pairs = if self.cfg.predicted_footprint {
                task.k() as u64
            } else {
                spec.seq_len as u64
            };
            footprint = footprint.max(t * h * 2 + t * h * 2 + t * kept_pairs * 4);
            combined.work.extend(job.work);
            combined.cycles.extend(job.cycles);
        }
        PointLowering {
            job: Arc::new(combined),
            footprint,
            energy_pj,
        }
    }

    /// [`ServeSim::lower_at`] through the lowering cache. Serial-path entry
    /// point for the adaptive re-lowering mechanisms; the batch path seeds
    /// the same cache via its dedup pass instead.
    fn lower_at_cached(
        &self,
        cache: &mut LowerCache,
        csim: &CycleSim,
        spec: &RequestSpec,
        op: &OperatingPoint,
    ) -> PointLowering {
        cache
            .get_or_insert_with(ShapeKey::new(spec, op), || self.lower_at(csim, spec, op))
            .clone()
    }

    /// Lowers one request through `router`, applying the energy budget:
    /// over-budget requests are re-routed to the router's leanest point,
    /// and shed when they exceed the budget even there.
    pub(crate) fn lower_routed(
        &self,
        csim: &CycleSim,
        spec: &RequestSpec,
        router: &OpRouter,
    ) -> Lowered {
        let mut op = router.pick(&self.cfg.op, spec);
        let mut lowering = self.lower_at(csim, spec, &op);
        let mut rerouted = false;
        let mut admit = true;
        if let Some(budget) = self.cfg.energy_budget_pj_per_req {
            if lowering.energy_pj > budget {
                if let Some(lean) = router.leaner().filter(|lean| *lean != op) {
                    lowering = self.lower_at(csim, spec, &lean);
                    op = lean;
                    rerouted = true;
                }
                admit = lowering.energy_pj <= budget;
            }
        }
        Lowered {
            class: spec.class,
            arrival: spec.arrival_cycle,
            spec: *spec,
            op,
            job: lowering.job,
            footprint: lowering.footprint,
            energy_pj: lowering.energy_pj,
            rerouted,
            admit,
            decayed: false,
            decay_checked: false,
            retries: 0,
            level: 0,
        }
    }

    /// Serves `trace` with every request lowered at the trace's native keep
    /// ratio on the deployment tiling ([`OpRouter::TraceNative`]).
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn run(&self, trace: &RequestTrace) -> ServeReport {
        self.run_with(trace, OpRouter::TraceNative)
    }

    /// Serves `trace` to completion under `router` and reports per-request
    /// latencies, queueing delays, energy and per-instance utilization.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty or a [`OpRouter::Feedback`] configuration
    /// fails [`FeedbackConfig::validate`].
    pub fn run_with(&self, trace: &RequestTrace, router: OpRouter) -> ServeReport {
        self.run_inner(
            trace,
            router,
            &mut TraceRecorder::disabled(),
            &mut CacheStats::default(),
        )
    }

    /// [`ServeSim::run_with`] plus the lowering-cache effectiveness counters
    /// of the run. The report is bit-identical to [`ServeSim::run_with`]'s —
    /// the statistics ride outside it precisely so cache-on and cache-off
    /// reports stay comparable bytes.
    pub fn run_with_cache_stats(
        &self,
        trace: &RequestTrace,
        router: OpRouter,
    ) -> (ServeReport, CacheStats) {
        let mut stats = CacheStats::default();
        let report = self.run_inner(trace, router, &mut TraceRecorder::disabled(), &mut stats);
        (report, stats)
    }

    /// [`ServeSim::run_with`] plus observability: request-lifecycle spans,
    /// reroute/shed instants and per-instance booking counters land in `obs`
    /// (stamped in simulated cycles — merge it with other recorders and call
    /// [`TraceRecorder::to_chrome_json`] for Perfetto), and the report's
    /// summary statistics land in `metrics`. The report itself is
    /// bit-identical to the untraced run's at any `SOFA_THREADS`: lowering
    /// workers fork per-request recorders that are absorbed in arrival
    /// order, so the trace bytes are thread-count-independent too.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn run_traced(
        &self,
        trace: &RequestTrace,
        router: OpRouter,
        obs: &mut TraceRecorder,
        metrics: &mut MetricsRegistry,
    ) -> ServeReport {
        let report = self.run_inner(trace, router, obs, &mut CacheStats::default());
        report.record_metrics(metrics);
        report
    }

    fn run_inner(
        &self,
        trace: &RequestTrace,
        router: OpRouter,
        obs: &mut TraceRecorder,
        cache_stats: &mut CacheStats,
    ) -> ServeReport {
        assert!(!trace.is_empty(), "cannot serve an empty trace");
        if let OpRouter::Feedback(_, fb) = &router {
            fb.validate().expect("invalid feedback config");
        }
        let n = self.cfg.instances;
        if obs.is_enabled() {
            obs.process_name(PID_REQUESTS, "requests");
            for i in 0..trace.requests.len() {
                obs.thread_name(PID_REQUESTS, i as u64, &format!("req{i}"));
            }
            obs.process_name(PID_SCHEDULER, "scheduler");
            obs.thread_name(PID_SCHEDULER, 0, "serve.wait_queue");
            if matches!(router, OpRouter::Feedback(..)) {
                obs.thread_name(PID_SCHEDULER, 1, "serve.pressure");
            }
            for i in 0..n {
                obs.thread_name(i as u64, TID_SERVE_INFLIGHT, "serve.inflight_bytes");
                obs.thread_name(i as u64, TID_SERVE_ENERGY, "serve.energy_pj");
            }
        }
        let mut csim = CycleSim::new(self.cfg.hw);
        csim.params = self.cfg.sim;
        // Lowering a request (routing, descriptor generation, per-tile cycle
        // apportioning, energy projection) is a pure function of
        // `(request shape, operating point)`. A serial dedup pass elects one
        // representative per distinct key; only the representatives fan out
        // across cores (in index order, so the result is oblivious to the
        // thread count), and every other request shares its representative's
        // lowering. With the cache off every request is its own
        // representative — the classic full fan-out.
        let cache_on = self.cfg.lowering_cache;
        let mut rep_of: Vec<usize> = Vec::with_capacity(trace.requests.len());
        let mut reps: Vec<usize> = Vec::new();
        {
            let mut seen: HashMap<ShapeKey, usize> = HashMap::new();
            for spec in &trace.requests {
                if cache_on {
                    let op = router.pick(&self.cfg.op, spec);
                    let rep = *seen.entry(ShapeKey::new(spec, &op)).or_insert_with(|| {
                        reps.push(rep_of.len());
                        reps.len() - 1
                    });
                    rep_of.push(rep);
                } else {
                    reps.push(rep_of.len());
                    rep_of.push(reps.len() - 1);
                }
            }
        }
        let rep_lowered: Vec<Lowered> = sofa_par::par_map_index(reps.len(), |k| {
            self.lower_routed(&csim, &trace.requests[reps[k]], &router)
        });
        // Seed the event-loop cache with each representative's final-point
        // lowering and account the dedup pass: one miss per representative,
        // one hit per request that shared one.
        let mut cache = LowerCache::new(cache_on);
        for rep in &rep_lowered {
            cache.insert_computed(
                ShapeKey::new(&rep.spec, &rep.op),
                PointLowering {
                    job: Arc::clone(&rep.job),
                    footprint: rep.footprint,
                    energy_pj: rep.energy_pj,
                },
            );
        }
        cache.record_shared_hits((trace.requests.len() - reps.len()) as u64);
        let mut lowered = Vec::with_capacity(trace.requests.len());
        for (i, spec) in trace.requests.iter().enumerate() {
            let rep = &rep_lowered[rep_of[i]];
            let req = Lowered {
                class: spec.class,
                arrival: spec.arrival_cycle,
                spec: *spec,
                op: rep.op.clone(),
                job: Arc::clone(&rep.job),
                footprint: rep.footprint,
                energy_pj: rep.energy_pj,
                rerouted: rep.rerouted,
                admit: rep.admit,
                decayed: false,
                decay_checked: false,
                retries: 0,
                level: 0,
            };
            if obs.is_enabled() {
                let tid = i as u64;
                obs.instant(
                    PID_REQUESTS,
                    tid,
                    "lowered",
                    req.arrival,
                    &[
                        ("class", ArgValue::Str(class_name(req.class))),
                        ("footprint_bytes", ArgValue::U64(req.footprint)),
                        ("energy_pj", ArgValue::F64(req.energy_pj)),
                    ],
                );
                if req.rerouted {
                    obs.instant(
                        PID_REQUESTS,
                        tid,
                        "reroute",
                        req.arrival,
                        &[("to", ArgValue::Str("energy-leanest"))],
                    );
                }
                // With a retry policy a first-attempt shed is not final:
                // the serial loop buffers shed-retry/retry/shed instants
                // and they are emitted post-run instead.
                if !req.admit && self.cfg.retry.is_none() {
                    obs.instant(
                        PID_REQUESTS,
                        tid,
                        "shed",
                        req.arrival,
                        &[("energy_pj", ArgValue::F64(req.energy_pj))],
                    );
                }
            }
            lowered.push(req);
        }

        let mut msim = MultiPipelineSim::new(&self.cfg.hw, n, self.cfg.sim);
        if obs.is_enabled() {
            msim.enable_tracing();
        }
        let mut state = AdmissionState::new(n, lowered.len());
        let mut shed: Vec<ShedRecord> = Vec::new();
        let mut next_arrival = 0usize;
        // Shed requests awaiting their client backoff: (re-arrival, id).
        let mut retryq: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let ctx = RouteCtx {
            csim: &csim,
            router: &router,
        };

        loop {
            let event = msim.next_event_time();
            let arrival = (next_arrival < lowered.len()).then(|| lowered[next_arrival].arrival);
            let retry = retryq.peek().map(|Reverse((t, _))| *t);
            // Original arrivals run before retry re-arrivals on ties (the
            // retried client re-submits just behind the fresh traffic), and
            // completions at the same cycle free capacity before any
            // admission decision, so simulation events run first overall.
            let external = match (arrival, retry) {
                (Some(a), Some(r)) if r < a => Some((r, true)),
                (Some(a), _) => Some((a, false)),
                (None, Some(r)) => Some((r, true)),
                (None, None) => None,
            };
            let external_first = match (event, external) {
                (None, None) => break,
                (Some(e), Some((x, _))) => x < e,
                (None, Some(_)) => true,
                (Some(_), None) => false,
            };
            if external_first {
                let (now, is_retry) = external.expect("external_first implies an arrival");
                if is_retry {
                    let Reverse((_, req)) = retryq.pop().expect("retry was pending");
                    let policy = self.cfg.retry.expect("retries require a policy");
                    let attempt = lowered[req].retries + 1;
                    let spec = lowered[req].spec;
                    let (op, lowering) =
                        self.retry_lowering(&mut cache, &csim, &router, &spec, &policy, attempt);
                    lowered[req].retries = attempt;
                    lowered[req].energy_pj = lowering.energy_pj;
                    let over = self
                        .cfg
                        .energy_budget_pj_per_req
                        .is_some_and(|b| lowering.energy_pj > b);
                    if !over {
                        let lw = &mut lowered[req];
                        lw.job = lowering.job;
                        lw.footprint = lowering.footprint;
                        lw.op = op;
                        lw.arrival = now;
                        lw.rerouted = true;
                        lw.admit = true;
                        state.retried += 1;
                        state.events.push(AdaptiveEvent {
                            req,
                            ts: now,
                            kind: AdaptiveKind::Retry(attempt),
                        });
                        state.waiting.push(req);
                        if obs.is_enabled() {
                            obs.counter(
                                PID_SCHEDULER,
                                0,
                                "serve.wait_queue",
                                now,
                                &[("waiting", state.waiting.len() as f64)],
                            );
                        }
                    } else if attempt < policy.max_retries {
                        state.events.push(AdaptiveEvent {
                            req,
                            ts: now,
                            kind: AdaptiveKind::RetryShed(attempt),
                        });
                        retryq.push(Reverse((now + policy.backoff_cycles, req)));
                    } else {
                        state.events.push(AdaptiveEvent {
                            req,
                            ts: now,
                            kind: AdaptiveKind::Shed(lowering.energy_pj),
                        });
                        shed.push(ShedRecord {
                            id: req as u64,
                            class: lowered[req].class,
                            arrival: lowered[req].spec.arrival_cycle,
                            energy_pj: lowering.energy_pj,
                            retries: attempt,
                        });
                    }
                } else {
                    let req = &lowered[next_arrival];
                    if req.admit {
                        state.waiting.push(next_arrival);
                        if obs.is_enabled() {
                            obs.counter(
                                PID_SCHEDULER,
                                0,
                                "serve.wait_queue",
                                now,
                                &[("waiting", state.waiting.len() as f64)],
                            );
                        }
                    } else if let Some(policy) = &self.cfg.retry {
                        state.events.push(AdaptiveEvent {
                            req: next_arrival,
                            ts: now,
                            kind: AdaptiveKind::RetryShed(0),
                        });
                        retryq.push(Reverse((now + policy.backoff_cycles, next_arrival)));
                    } else {
                        shed.push(ShedRecord {
                            id: next_arrival as u64,
                            class: req.class,
                            arrival: req.arrival,
                            energy_pj: req.energy_pj,
                            retries: 0,
                        });
                    }
                    next_arrival += 1;
                }
                self.try_admit(
                    now,
                    &ctx,
                    &mut cache,
                    &mut lowered,
                    &mut state,
                    &mut msim,
                    obs,
                );
            } else {
                let step = msim.step().expect("event was pending");
                if let Some(done) = step.completed {
                    let idx = done.request as usize;
                    state.completed_at[idx] = step.time;
                    state.inflight_bytes[done.instance] -= lowered[idx].footprint;
                    state.inflight_reqs[done.instance] -= 1;
                    state.inflight_energy[done.instance] -= lowered[idx].energy_pj;
                    if let OpRouter::Feedback(_, fb) = &router {
                        let latency = (step.time - lowered[idx].arrival) as f64;
                        state.observe_completion(
                            fb,
                            done.instance,
                            latency,
                            lowered[idx].energy_pj,
                        );
                        if obs.is_enabled() {
                            obs.counter(
                                PID_SCHEDULER,
                                1,
                                "serve.pressure",
                                step.time,
                                &[("level", state.pressure(fb) as f64)],
                            );
                        }
                    }
                    if obs.is_enabled() {
                        obs.counter(
                            done.instance as u64,
                            TID_SERVE_INFLIGHT,
                            "serve.inflight_bytes",
                            step.time,
                            &[("bytes", state.inflight_bytes[done.instance] as f64)],
                        );
                    }
                    self.try_admit(
                        step.time,
                        &ctx,
                        &mut cache,
                        &mut lowered,
                        &mut state,
                        &mut msim,
                        obs,
                    );
                }
            }
        }

        if obs.is_enabled() {
            // Lifecycle spans are emitted once placement and completion are
            // known; walking the requests in id order keeps every per-request
            // track's timestamps (lowered -> queued -> execute) sorted. The
            // adaptive instants buffered during the loop (decay, feedback,
            // retry, late shed) interleave around the spans by timestamp, so
            // each track stays monotone.
            let mut per_req: Vec<Vec<(u64, AdaptiveKind)>> = vec![Vec::new(); lowered.len()];
            for ev in &state.events {
                per_req[ev.req].push((ev.ts, ev.kind));
            }
            for (i, req) in lowered.iter().enumerate() {
                let tid = i as u64;
                let events = &per_req[i];
                if !req.admit {
                    for &(ts, kind) in events {
                        adaptive_instant(obs, tid, ts, kind);
                    }
                    continue;
                }
                let admitted = state.admitted_at[i];
                // Retry instants precede the (effective) arrival; decay and
                // feedback instants land between arrival and admission.
                let split = events.partition_point(|&(ts, _)| ts <= req.arrival);
                for &(ts, kind) in &events[..split] {
                    adaptive_instant(obs, tid, ts, kind);
                }
                obs.complete(
                    PID_REQUESTS,
                    tid,
                    "queued",
                    req.arrival,
                    admitted - req.arrival,
                    &[("class", ArgValue::Str(class_name(req.class)))],
                );
                for &(ts, kind) in &events[split..] {
                    adaptive_instant(obs, tid, ts, kind);
                }
                obs.complete(
                    PID_REQUESTS,
                    tid,
                    "execute",
                    admitted,
                    state.completed_at[i] - admitted,
                    &[("instance", ArgValue::U64(state.placed_on[i] as u64))],
                );
            }
        }

        let records: Vec<RequestRecord> = lowered
            .iter()
            .enumerate()
            .filter(|(_, req)| req.admit)
            .map(|(i, req)| {
                assert!(
                    state.completed_at[i] != u64::MAX,
                    "every admitted request must complete"
                );
                RequestRecord {
                    id: i as u64,
                    class: req.class,
                    instance: state.placed_on[i],
                    arrival: req.arrival,
                    admitted: state.admitted_at[i],
                    completed: state.completed_at[i],
                    footprint_bytes: req.footprint,
                    energy_pj: req.energy_pj,
                    rerouted: req.rerouted,
                    decayed: req.decayed,
                    retries: req.retries,
                }
            })
            .collect();
        *cache_stats = cache.stats();
        let multi = msim.report();
        obs.absorb(msim.take_trace());
        let latency = ServeReport::sketch_latencies(&records);
        ServeReport {
            records,
            shed,
            total_cycles: multi.total_cycles,
            multi,
            budget_bytes: self.cfg.budget_bytes(),
            peak_inflight_bytes: state.peak_inflight,
            energy_pj_per_instance: state.energy_pj,
            retried: state.retried,
            latency,
        }
    }

    /// The leaner lowering of retry `attempt`: the router's leanest point
    /// (or the deployment point when the router has none) with its keep
    /// ratio shrunk by `keep_factorᵃᵗᵗᵉᵐᵖᵗ`, floored at 1% keep.
    pub(crate) fn retry_lowering(
        &self,
        cache: &mut LowerCache,
        csim: &CycleSim,
        router: &OpRouter,
        spec: &RequestSpec,
        policy: &RetryPolicy,
        attempt: u32,
    ) -> (OperatingPoint, PointLowering) {
        let base = router.leaner().unwrap_or_else(|| self.cfg.op.clone());
        let keep = (base.mean_keep() * policy.keep_factor.powi(attempt as i32)).max(0.01);
        let op = base.with_uniform_keep(keep);
        // The attempt-shrunk keep is part of the cache key, so repeat
        // attempts at the same shrink level hit instead of re-running the
        // full pipeline lowering.
        let lowering = self.lower_at_cached(cache, csim, spec, &op);
        (op, lowering)
    }

    /// Re-lowers every waiting request that has waited past the decay
    /// threshold to the router's decay target, at most once per request.
    /// With an energy budget, a decay that would break the budget is
    /// rejected (the request keeps its current lowering).
    fn decay_waiting(
        &self,
        now: u64,
        ctx: &RouteCtx,
        cache: &mut LowerCache,
        lowered: &mut [Lowered],
        state: &mut AdmissionState,
    ) {
        let Some(threshold) = self.cfg.decay_threshold else {
            return;
        };
        for pos in 0..state.waiting.len() {
            let req = state.waiting[pos];
            if lowered[req].decay_checked || now.saturating_sub(lowered[req].arrival) < threshold {
                continue;
            }
            lowered[req].decay_checked = true;
            let Some(target) = ctx.router.decay_target(lowered[req].class) else {
                continue;
            };
            if target == lowered[req].op {
                continue;
            }
            let lowering = self.lower_at_cached(cache, ctx.csim, &lowered[req].spec, &target);
            if self
                .cfg
                .energy_budget_pj_per_req
                .is_some_and(|b| lowering.energy_pj > b)
            {
                continue;
            }
            let lw = &mut lowered[req];
            lw.job = lowering.job;
            lw.footprint = lowering.footprint;
            lw.energy_pj = lowering.energy_pj;
            lw.op = target;
            lw.decayed = true;
            lw.rerouted = true;
            state.events.push(AdaptiveEvent {
                req,
                ts: now,
                kind: AdaptiveKind::Decay,
            });
        }
    }

    /// Re-lowers the picked request when the measured pressure level moved
    /// since it was last lowered (feedback router only). Decayed requests
    /// are already at the lean end and are left alone; with an energy
    /// budget, a re-lowering that would break the budget is rejected.
    fn feedback_relower(
        &self,
        now: u64,
        ctx: &RouteCtx,
        cache: &mut LowerCache,
        req: usize,
        lowered: &mut [Lowered],
        state: &mut AdmissionState,
    ) {
        let OpRouter::Feedback(front, fb) = ctx.router else {
            return;
        };
        if lowered[req].decayed {
            return;
        }
        let level = state.pressure(fb);
        if level == lowered[req].level {
            return;
        }
        let target = front.route_pressure(&lowered[req].class, level);
        if target == lowered[req].op {
            lowered[req].level = level;
            return;
        }
        let lowering = self.lower_at_cached(cache, ctx.csim, &lowered[req].spec, &target);
        lowered[req].level = level;
        if self
            .cfg
            .energy_budget_pj_per_req
            .is_some_and(|b| lowering.energy_pj > b)
        {
            return;
        }
        let lw = &mut lowered[req];
        lw.job = lowering.job;
        lw.footprint = lowering.footprint;
        lw.energy_pj = lowering.energy_pj;
        lw.op = target;
        lw.rerouted = true;
        state.events.push(AdaptiveEvent {
            req,
            ts: now,
            kind: AdaptiveKind::Feedback(level),
        });
    }

    /// The instance the next request lands on: among instances that fit the
    /// byte budget (or are idle, so one oversized request always makes
    /// progress), the least-booked one. With a per-instance energy budget,
    /// instances without energy headroom are skipped too and booked-bytes
    /// ties break toward the most energy headroom.
    fn place(&self, fp: u64, energy_pj: f64, budget: u64, state: &AdmissionState) -> Option<usize> {
        let fits = |i: usize| state.inflight_reqs[i] == 0 || state.inflight_bytes[i] + fp <= budget;
        match self.cfg.instance_energy_budget_pj {
            None => (0..state.inflight_bytes.len())
                .filter(|&i| fits(i))
                .min_by_key(|&i| (state.inflight_bytes[i], i)),
            Some(eb) => (0..state.inflight_bytes.len())
                .filter(|&i| {
                    fits(i)
                        && (state.inflight_reqs[i] == 0
                            || state.inflight_energy[i] + energy_pj <= eb)
                })
                .min_by(|&a, &b| {
                    state.inflight_bytes[a]
                        .cmp(&state.inflight_bytes[b])
                        .then_with(|| state.inflight_energy[a].total_cmp(&state.inflight_energy[b]))
                        .then_with(|| a.cmp(&b))
                }),
        }
    }

    /// Position in `waiting` of the next request to try: the oldest starved
    /// request if any has waited past the aging threshold, else the policy's
    /// pick. The oldest is found by scanning every entry's arrival — pushes
    /// happen in arrival order today, but requeue paths (retry re-arrivals,
    /// adaptive re-routes) must not be able to starve an aged request by
    /// perturbing the head of the list.
    fn pick(&self, now: u64, waiting: &[usize], lowered: &[Lowered]) -> usize {
        let oldest = waiting
            .iter()
            .enumerate()
            .min_by_key(|&(_, &req)| (lowered[req].arrival, req))
            .map(|(pos, _)| pos)
            .expect("waiting is non-empty");
        let oldest_wait = now.saturating_sub(lowered[waiting[oldest]].arrival);
        if oldest_wait >= self.cfg.aging_threshold {
            return oldest;
        }
        match self.cfg.policy {
            AdmitPolicy::Fifo => oldest,
            AdmitPolicy::SmallestFirst => waiting
                .iter()
                .enumerate()
                .min_by_key(|&(_, &req)| (lowered[req].footprint, req))
                .map(|(pos, _)| pos)
                .expect("waiting is non-empty"),
        }
    }

    /// Admits as many waiting requests as fit. Decay re-lowers over-waited
    /// requests first; the picked request is feedback-re-lowered against the
    /// current pressure level; then [`ServeSim::place`] chooses the
    /// instance. An instance fits a request when the booked footprints stay
    /// within the (overbooked) budget — or when it is completely idle, so a
    /// single oversized request can always make progress.
    #[allow(clippy::too_many_arguments)] // the event loop's full mutable state
    fn try_admit(
        &self,
        now: u64,
        ctx: &RouteCtx,
        cache: &mut LowerCache,
        lowered: &mut [Lowered],
        state: &mut AdmissionState,
        msim: &mut MultiPipelineSim,
        obs: &mut TraceRecorder,
    ) {
        self.decay_waiting(now, ctx, cache, lowered, state);
        let budget = self.cfg.budget_bytes();
        while !state.waiting.is_empty() {
            let pos = self.pick(now, &state.waiting, lowered);
            let req = state.waiting[pos];
            self.feedback_relower(now, ctx, cache, req, lowered, state);
            let fp = lowered[req].footprint;
            let target = self.place(fp, lowered[req].energy_pj, budget, state);
            let Some(inst) = target else {
                // Nothing fits the candidate now; completions will retry.
                // Stopping (rather than skipping to a smaller request) is
                // what keeps the aged head-of-line request from being
                // overtaken forever.
                return;
            };
            state.waiting.remove(pos);
            msim.submit(inst, req as u64, &lowered[req].job, now);
            state.inflight_bytes[inst] += fp;
            state.inflight_reqs[inst] += 1;
            state.inflight_energy[inst] += lowered[req].energy_pj;
            state.peak_inflight[inst] = state.peak_inflight[inst].max(state.inflight_bytes[inst]);
            state.energy_pj[inst] += lowered[req].energy_pj;
            state.placed_on[req] = inst;
            state.admitted_at[req] = now;
            if obs.is_enabled() {
                obs.counter(
                    PID_SCHEDULER,
                    0,
                    "serve.wait_queue",
                    now,
                    &[("waiting", state.waiting.len() as f64)],
                );
                obs.counter(
                    inst as u64,
                    TID_SERVE_INFLIGHT,
                    "serve.inflight_bytes",
                    now,
                    &[("bytes", state.inflight_bytes[inst] as f64)],
                );
                obs.counter(
                    inst as u64,
                    TID_SERVE_ENERGY,
                    "serve.energy_pj",
                    now,
                    &[("pj", state.energy_pj[inst])],
                );
            }
        }
    }
}

/// One request lowered at one operating point (pre-budget). Cloning shares
/// the lowered job, so this is the value type of the lowering cache.
#[derive(Clone)]
pub(crate) struct PointLowering {
    pub(crate) job: Arc<PipelineJob>,
    pub(crate) footprint: u64,
    pub(crate) energy_pj: f64,
}

/// The `(request shape, operating point)`-keyed memo for
/// [`ServeSim::lower_at`] results, shared by batch lowering and every
/// adaptive re-lowering path (decay, feedback, retry). Accessed serially
/// only, so hit/miss statistics are deterministic at any `SOFA_THREADS`.
pub(crate) type LowerCache = LoweringCache<ShapeKey, PointLowering>;

/// Immutable routing context threaded through the serial event loop: the
/// cycle simulator the adaptive controller re-lowers with, and the router.
struct RouteCtx<'a, 'b> {
    csim: &'a CycleSim,
    router: &'a OpRouter<'b>,
}

/// One adaptive-controller action. Buffered during the serial loop and
/// emitted as a trace instant after the run — mid-loop emission would break
/// per-track timestamp monotonicity against the post-run lifecycle spans.
#[derive(Debug, Clone, Copy)]
enum AdaptiveKind {
    /// The decay threshold re-lowered a waiting request to the lean end.
    Decay,
    /// Feedback pressure re-lowered the picked request at this level.
    Feedback(u8),
    /// An over-budget attempt went to the retry queue (attempt number; 0 is
    /// the initial submission).
    RetryShed(u32),
    /// A retry re-arrival fit the budget and joined the wait queue.
    Retry(u32),
    /// Retries exhausted: finally shed, at this last-attempt energy.
    Shed(f64),
}

/// [`AdaptiveKind`] tagged with the request and cycle it happened at.
#[derive(Debug, Clone, Copy)]
struct AdaptiveEvent {
    req: usize,
    ts: u64,
    kind: AdaptiveKind,
}

/// Emits one buffered adaptive instant on a request's lifecycle track.
fn adaptive_instant(obs: &mut TraceRecorder, tid: u64, ts: u64, kind: AdaptiveKind) {
    match kind {
        AdaptiveKind::Decay => obs.instant(
            PID_REQUESTS,
            tid,
            "decay",
            ts,
            &[("to", ArgValue::Str("leanest"))],
        ),
        AdaptiveKind::Feedback(level) => obs.instant(
            PID_REQUESTS,
            tid,
            "feedback",
            ts,
            &[("pressure", ArgValue::U64(level as u64))],
        ),
        AdaptiveKind::RetryShed(attempt) => obs.instant(
            PID_REQUESTS,
            tid,
            "shed-retry",
            ts,
            &[("attempt", ArgValue::U64(attempt as u64))],
        ),
        AdaptiveKind::Retry(attempt) => obs.instant(
            PID_REQUESTS,
            tid,
            "retry",
            ts,
            &[("attempt", ArgValue::U64(attempt as u64))],
        ),
        AdaptiveKind::Shed(energy_pj) => obs.instant(
            PID_REQUESTS,
            tid,
            "shed",
            ts,
            &[("energy_pj", ArgValue::F64(energy_pj))],
        ),
    }
}

/// Mutable scheduling state of one [`ServeSim::run_with`]: the wait queue
/// (in arrival order), per-instance booked bytes / request counts / admitted
/// energy, and the per-request placement/lifecycle slots filled in as the
/// run progresses.
#[derive(Debug)]
struct AdmissionState {
    waiting: Vec<usize>,
    inflight_bytes: Vec<u64>,
    inflight_reqs: Vec<usize>,
    /// Booked (admitted-but-uncompleted) energy per instance, for the
    /// per-instance energy budget and the feedback loop.
    inflight_energy: Vec<f64>,
    peak_inflight: Vec<u64>,
    energy_pj: Vec<f64>,
    placed_on: Vec<usize>,
    admitted_at: Vec<u64>,
    completed_at: Vec<u64>,
    /// Retry re-arrivals admitted back into the wait queue.
    retried: u64,
    /// Adaptive instants buffered for post-run trace emission.
    events: Vec<AdaptiveEvent>,
    /// Feedback EWMAs: per-instance completion latency and per-request
    /// energy, plus the wait-queue depth, sampled at every completion.
    ewma_latency: Vec<f64>,
    ewma_energy: Vec<f64>,
    ewma_queue: f64,
    fb_samples: u64,
}

impl AdmissionState {
    fn new(instances: usize, requests: usize) -> Self {
        AdmissionState {
            waiting: Vec::new(),
            inflight_bytes: vec![0; instances],
            inflight_reqs: vec![0; instances],
            inflight_energy: vec![0.0; instances],
            peak_inflight: vec![0; instances],
            energy_pj: vec![0.0; instances],
            placed_on: vec![usize::MAX; requests],
            admitted_at: vec![u64::MAX; requests],
            completed_at: vec![u64::MAX; requests],
            retried: 0,
            events: Vec::new(),
            ewma_latency: vec![0.0; instances],
            ewma_energy: vec![0.0; instances],
            ewma_queue: 0.0,
            fb_samples: 0,
        }
    }

    /// Folds one completion into the feedback EWMAs (`ewma ← α·sample +
    /// (1−α)·ewma`; the first sample of a series seeds it directly).
    fn observe_completion(&mut self, fb: &FeedbackConfig, inst: usize, latency: f64, energy: f64) {
        let mix = |prev: f64, x: f64| {
            if prev == 0.0 {
                x
            } else {
                fb.alpha * x + (1.0 - fb.alpha) * prev
            }
        };
        self.ewma_latency[inst] = mix(self.ewma_latency[inst], latency);
        self.ewma_energy[inst] = mix(self.ewma_energy[inst], energy);
        let depth = self.waiting.len() as f64;
        self.ewma_queue = if self.fb_samples == 0 {
            depth
        } else {
            fb.alpha * depth + (1.0 - fb.alpha) * self.ewma_queue
        };
        self.fb_samples += 1;
    }

    /// The discrete pressure level measured state maps to — 0 calm, 1 over
    /// target, 2 badly over — per [`FeedbackConfig`]. Zero until the first
    /// completion lands (no measurement, no pressure).
    fn pressure(&self, fb: &FeedbackConfig) -> u8 {
        if self.fb_samples == 0 {
            return 0;
        }
        let hottest = self.ewma_latency.iter().copied().fold(0.0f64, f64::max);
        let target = fb.target_latency_cycles as f64;
        let queue_bar = fb.queue_depth_bar as f64;
        let mut level = 0u8;
        if hottest > target || self.ewma_queue > queue_bar {
            level = 1;
        }
        if hottest > 2.0 * target || self.ewma_queue > 2.0 * queue_bar {
            level = 2;
        }
        if let Some(bar) = fb.energy_bar_pj {
            let hottest_energy = self.ewma_energy.iter().copied().fold(0.0f64, f64::max);
            if hottest_energy > bar {
                level = (level + 1).min(2);
            }
        }
        level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofa_dse::{CandidateEval, DseCandidate, MetricVector};
    use sofa_model::trace::TraceConfig;

    fn small_cfg(instances: usize) -> ServeConfig {
        let mut cfg = ServeConfig::new(HwConfig::small(), instances);
        cfg.op = OperatingPoint::single(0.25, 64);
        cfg
    }

    fn small_trace(n: usize, rate: f64, seed: u64) -> RequestTrace {
        let mut tc = TraceConfig::new(n, rate, seed);
        tc.seq_len = 512;
        tc.hidden = 256;
        tc.heads = 4;
        tc.prefill_queries = 16;
        RequestTrace::generate(&tc)
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let report = ServeSim::new(small_cfg(2)).run(&small_trace(24, 40.0, 1));
        assert_eq!(report.records.len(), 24);
        assert!(report.shed.is_empty(), "no budget, nothing shed");
        for r in &report.records {
            assert!(r.admitted >= r.arrival, "admission precedes arrival");
            assert!(r.completed > r.admitted, "completion precedes admission");
            assert!(r.instance < 2);
            assert!(r.energy_pj > 0.0, "every request projects energy");
            assert!(!r.rerouted, "nothing re-routes without a budget");
        }
        let placed: usize = (0..2).map(|i| report.requests_on(i)).sum();
        assert_eq!(placed, 24);
        assert_eq!(
            report
                .multi
                .instances
                .iter()
                .map(|a| a.requests)
                .sum::<usize>(),
            24
        );
        // Admitted energy is conserved across instances.
        let per_instance: f64 = report.energy_pj_per_instance.iter().sum();
        let per_request: f64 = report.records.iter().map(|r| r.energy_pj).sum();
        assert!((per_instance - per_request).abs() < 1e-6);
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = small_trace(16, 60.0, 9);
        let a = ServeSim::new(small_cfg(2)).run(&trace);
        let b = ServeSim::new(small_cfg(2)).run(&trace);
        assert_eq!(a, b);
    }

    #[test]
    fn booked_footprints_respect_the_budget() {
        let cfg = small_cfg(2);
        let report = ServeSim::new(cfg).run(&small_trace(32, 200.0, 3));
        let largest = report
            .records
            .iter()
            .map(|r| r.footprint_bytes)
            .max()
            .unwrap();
        for &peak in &report.peak_inflight_bytes {
            assert!(
                peak <= report.budget_bytes.max(largest),
                "peak {peak} exceeds budget {} (largest single {largest})",
                report.budget_bytes
            );
        }
    }

    #[test]
    fn overbooking_admits_requests_sooner() {
        // Saturating load on one instance: relaxing the budget must not make
        // queueing worse.
        let trace = small_trace(32, 400.0, 5);
        let tight = ServeSim::new(small_cfg(1)).run(&trace);
        let mut loose_cfg = small_cfg(1);
        loose_cfg.overbook = 4.0;
        let loose = ServeSim::new(loose_cfg).run(&trace);
        assert!(
            loose.mean_queueing_delay() <= tight.mean_queueing_delay(),
            "overbooking cannot increase queueing: {} vs {}",
            loose.mean_queueing_delay(),
            tight.mean_queueing_delay()
        );
        assert_eq!(loose.records.len(), trace.len());
    }

    #[test]
    fn aging_bounds_the_wait_of_large_requests() {
        // Under SmallestFirst a steady stream of small decodes could starve
        // a large prefill; the aging threshold must bound its wait relative
        // to the same schedule without aging.
        let trace = small_trace(48, 300.0, 13);
        let mut aged_cfg = small_cfg(1);
        aged_cfg.aging_threshold = 20_000;
        let mut starved_cfg = small_cfg(1);
        starved_cfg.aging_threshold = u64::MAX;
        let aged = ServeSim::new(aged_cfg).run(&trace);
        let starved = ServeSim::new(starved_cfg).run(&trace);
        let worst = |r: &ServeReport| r.records.iter().map(|x| x.queueing_delay()).max().unwrap();
        assert!(
            worst(&aged) <= worst(&starved),
            "aging must not worsen the worst queueing delay: {} vs {}",
            worst(&aged),
            worst(&starved)
        );
    }

    #[test]
    fn two_instances_beat_one_under_load() {
        let trace = small_trace(32, 300.0, 7);
        let one = ServeSim::new(small_cfg(1)).run(&trace);
        let two = ServeSim::new(small_cfg(2)).run(&trace);
        assert!(
            two.total_cycles < one.total_cycles,
            "a second instance must cut the makespan: {} vs {}",
            two.total_cycles,
            one.total_cycles
        );
        assert!(two.p95() <= one.p95());
        assert!(two.requests_on(0) > 0 && two.requests_on(1) > 0);
    }

    #[test]
    fn trace_dram_traffic_is_conserved() {
        let cfg = small_cfg(3);
        let trace = small_trace(20, 100.0, 21);
        let report = ServeSim::new(cfg.clone()).run(&trace);
        let mut csim = CycleSim::new(cfg.hw);
        csim.params = cfg.sim;
        let want: u64 = trace
            .requests
            .iter()
            .map(|spec| {
                let op = cfg.op.with_uniform_keep(spec.keep_ratio);
                let task = AttentionTask::at_layer(
                    spec.queries,
                    spec.seq_len,
                    spec.hidden,
                    spec.heads,
                    &op,
                    0,
                );
                csim.job(&task, None).total_dram_bytes()
            })
            .sum();
        assert_eq!(report.multi.dram.total_bytes(), want);
    }

    #[test]
    fn multi_layer_lowering_concatenates_the_layer_streams() {
        // A two-layer fixed point must stream both layers' tiles: double the
        // single-layer DRAM traffic when the layers are identical.
        let cfg = small_cfg(1);
        let trace = small_trace(6, 50.0, 31);
        let sim = ServeSim::new(cfg);
        let one = OperatingPoint::single(0.25, 64);
        let two = OperatingPoint::uniform(0.25, 64, 2);
        let r1 = sim.run_with(&trace, OpRouter::Fixed(&one));
        let r2 = sim.run_with(&trace, OpRouter::Fixed(&two));
        assert_eq!(
            r2.multi.dram.total_bytes(),
            2 * r1.multi.dram.total_bytes(),
            "two identical layers move twice the bytes"
        );
        assert!(r2.total_cycles > r1.total_cycles);
        // Energy doubles with the layers too.
        let sum = |r: &ServeReport| r.records.iter().map(|x| x.energy_pj).sum::<f64>();
        assert!((sum(&r2) - 2.0 * sum(&r1)).abs() < 1e-6 * sum(&r2));
    }

    #[test]
    fn energy_budget_sheds_what_even_the_leanest_point_exceeds() {
        // A fixed router has no leaner point to fall back to: every request
        // over the (absurdly small) budget is shed, decodes stay under it.
        let trace = small_trace(16, 80.0, 17);
        let mut cfg = small_cfg(1);
        // Between a decode's projection (~9–19 µJ at this shape) and a
        // prefill's (~28 µJ).
        let budget = 2.0e7;
        cfg.energy_budget_pj_per_req = Some(budget);
        let sim = ServeSim::new(cfg);
        let report = sim.run(&trace);
        assert!(!report.shed.is_empty(), "prefills must exceed the budget");
        assert!(
            report.shed.iter().all(|s| s.class == RequestClass::Prefill),
            "only the bulky prefills exceed this budget"
        );
        assert_eq!(report.records.len() + report.shed.len(), trace.len());
        for r in &report.records {
            assert!(r.energy_pj <= budget);
        }
    }

    #[test]
    fn traced_run_matches_untraced_and_trace_validates() {
        let trace = small_trace(16, 120.0, 11);
        let sim = ServeSim::new(small_cfg(2));
        let plain = sim.run(&trace);
        let mut obs = TraceRecorder::enabled();
        let mut reg = MetricsRegistry::new();
        let traced = sim.run_traced(&trace, OpRouter::TraceNative, &mut obs, &mut reg);
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        let stats = sofa_obs::validate_chrome_trace(&obs.to_chrome_json()).expect("valid trace");
        // Per admitted request: queued + execute lifecycle spans on top of
        // the per-tile stage spans from the instances.
        assert!(stats.spans >= 2 * traced.records.len());
        assert!(
            stats.instants >= traced.records.len(),
            "one lowered instant each"
        );
        assert!(stats.counter_samples > 0, "booking counters sampled");
        assert!(stats.max_ts > 0 && stats.max_ts <= traced.total_cycles);
        assert_eq!(reg.counter("serve.requests.admitted"), 16);
        assert_eq!(reg.counter("serve.requests.shed"), 0);
        assert!(reg.gauge("serve.latency_p95").is_some());
        assert_eq!(
            reg.gauge("serve.total_cycles"),
            Some(traced.total_cycles as f64)
        );
    }

    #[test]
    fn trace_bytes_are_thread_count_independent() {
        let trace = small_trace(12, 150.0, 23);
        let sim = ServeSim::new(small_cfg(2));
        let run = |threads: usize| {
            sofa_par::with_threads(threads, || {
                let mut obs = TraceRecorder::enabled();
                let mut reg = MetricsRegistry::new();
                let report = sim.run_traced(&trace, OpRouter::TraceNative, &mut obs, &mut reg);
                (obs.to_chrome_json(), reg.to_json(), report)
            })
        };
        let (t1, m1, r1) = run(1);
        for threads in [2, 8] {
            let (t, m, r) = run(threads);
            assert_eq!(r1, r, "report differs at {threads} threads");
            assert_eq!(t1, t, "trace bytes differ at {threads} threads");
            assert_eq!(m1, m, "metrics differ at {threads} threads");
        }
    }

    #[test]
    fn shed_requests_leave_instants_not_lifecycle_spans() {
        let trace = small_trace(16, 80.0, 17);
        let mut cfg = small_cfg(1);
        cfg.energy_budget_pj_per_req = Some(2.0e7);
        let sim = ServeSim::new(cfg);
        let mut obs = TraceRecorder::enabled();
        let mut reg = MetricsRegistry::new();
        let report = sim.run_traced(&trace, OpRouter::TraceNative, &mut obs, &mut reg);
        assert!(!report.shed.is_empty());
        let json = obs.to_chrome_json();
        sofa_obs::validate_chrome_trace(&json).expect("valid trace");
        let count = |needle: &str| json.matches(needle).count();
        assert_eq!(count("\"name\":\"shed\""), report.shed.len());
        assert_eq!(
            count("\"name\":\"queued\""),
            report.records.len(),
            "only admitted requests get lifecycle spans"
        );
        assert_eq!(reg.counter("serve.requests.shed"), report.shed.len() as u64);
    }

    /// A three-point front with distinct routed / cycle-leanest /
    /// energy-leanest picks, so decay and feedback visibly re-route:
    /// normal decode routing takes `keep_parity` (the only point clearing
    /// both bars), pressure 1 takes `heavy_fast`, pressure 2 and decay take
    /// `lossy_lean`.
    fn adaptive_front() -> ParetoFront {
        let entry = |keep: f64, bc: usize, loss: f64, cycles: u64, energy: f64| CandidateEval {
            candidate: DseCandidate {
                keep_ratios: vec![keep, keep],
                tile_sizes: vec![bc, bc],
            },
            metrics: MetricVector {
                loss,
                cycles,
                energy_pj: energy,
                area_mm2: 5.0,
            },
        };
        let keep_parity = entry(0.25, 16, 0.10, 120, 6.0e7);
        let heavy_fast = entry(0.4, 32, 0.11, 80, 9.0e7);
        let lossy_lean = entry(0.05, 8, 0.30, 40, 2.0e7);
        let reference = entry(0.25, 16, 0.12, 130, 7.0e7);
        ParetoFront::new(&[keep_parity, heavy_fast, lossy_lean], &reference)
    }

    #[test]
    fn aging_scans_for_the_true_oldest_not_just_the_head() {
        // Regression: `pick` used to age only `waiting[0]`, so a requeue
        // (retry re-arrival, adaptive re-route) that left a fresh request at
        // the head let SmallestFirst starve the true oldest forever.
        let mut cfg = small_cfg(1);
        cfg.aging_threshold = 100_000;
        let sim = ServeSim::new(cfg);
        let mk = |arrival: u64, footprint: u64| Lowered {
            class: RequestClass::Decode,
            arrival,
            spec: RequestSpec {
                id: 0,
                arrival_cycle: arrival,
                class: RequestClass::Decode,
                queries: 1,
                seq_len: 64,
                hidden: 64,
                heads: 2,
                keep_ratio: 0.25,
            },
            op: OperatingPoint::single(0.25, 64),
            job: Arc::new(PipelineJob {
                work: Vec::new(),
                cycles: Vec::new(),
            }),
            footprint,
            energy_pj: 1.0,
            rerouted: false,
            admit: true,
            decayed: false,
            decay_checked: false,
            retries: 0,
            level: 0,
        };
        // Head of the waiting list: a fresh, small request SmallestFirst
        // loves. Behind it: the true oldest, large enough to lose every
        // footprint comparison.
        let lowered = vec![mk(500_000, 8), mk(0, 1_000)];
        let waiting = vec![0usize, 1];
        assert_eq!(
            sim.pick(550_000, &waiting, &lowered),
            1,
            "the starved request must be aged even when it is not the head"
        );
        // Below the threshold the policy pick still wins.
        let fresh = vec![mk(40_000, 8), mk(0, 1_000)];
        assert_eq!(sim.pick(50_000, &waiting, &fresh), 0);
    }

    #[test]
    fn decay_relowers_overwaited_requests_to_leaner_points() {
        let trace = small_trace(32, 400.0, 19);
        let front = adaptive_front();
        let mut cfg = small_cfg(1);
        cfg.decay_threshold = Some(10_000);
        let sim = ServeSim::new(cfg);
        let decayed = sim.run_with(&trace, OpRouter::Pareto(&front));
        assert_eq!(decayed.records.len(), trace.len(), "decay never sheds");
        assert!(
            decayed.decayed_requests() > 0,
            "saturating one instance must push waits past the threshold"
        );
        for r in decayed.records.iter().filter(|r| r.decayed) {
            assert!(r.rerouted, "a decayed request is by definition rerouted");
        }
        // Without a front, decay has no leaner point and is a no-op.
        let mut plain_cfg = small_cfg(1);
        plain_cfg.decay_threshold = Some(10_000);
        let plain = ServeSim::new(plain_cfg).run(&trace);
        assert_eq!(plain.decayed_requests(), 0);
        // Deterministic.
        assert_eq!(decayed, sim.run_with(&trace, OpRouter::Pareto(&front)));
    }

    #[test]
    fn retry_readmits_shed_requests_at_leaner_points() {
        // The per-request energy budget sheds every prefill at this shape
        // (see `energy_budget_sheds_what_even_the_leanest_point_exceeds`);
        // with a retry policy the client re-submits at a shrunken keep, which
        // halves the projected energy under the budget.
        let trace = small_trace(16, 80.0, 17);
        let mut cfg = small_cfg(1);
        cfg.energy_budget_pj_per_req = Some(2.0e7);
        let base = ServeSim::new(cfg.clone()).run(&trace);
        assert!(!base.shed.is_empty());
        cfg.retry = Some(RetryPolicy {
            backoff_cycles: 20_000,
            max_retries: 2,
            keep_factor: 0.5,
        });
        let sim = ServeSim::new(cfg);
        let adaptive = sim.run(&trace);
        assert!(
            adaptive.retried > 0,
            "shed prefills must re-enter after the client backoff"
        );
        assert!(
            adaptive.shed.len() <= base.shed.len(),
            "retry cannot shed more than immediate shedding: {} vs {}",
            adaptive.shed.len(),
            base.shed.len()
        );
        assert_eq!(adaptive.records.len() + adaptive.shed.len(), trace.len());
        assert_eq!(adaptive.retried as usize, adaptive.retried_served());
        for r in adaptive.records.iter().filter(|r| r.retries > 0) {
            assert!(r.energy_pj <= 2.0e7, "a served retry fits the budget");
            assert!(r.rerouted, "a retry re-lowers at a leaner keep");
        }
        for s in &adaptive.shed {
            assert_eq!(s.retries, 2, "finally-shed requests exhaust retries");
        }
        // Deterministic.
        assert_eq!(adaptive, sim.run(&trace));
    }

    #[test]
    fn feedback_router_matches_pareto_at_zero_pressure() {
        // With unreachable bars the pressure level never leaves 0, and the
        // feedback router must be byte-for-byte the static Pareto router.
        let trace = small_trace(24, 200.0, 19);
        let front = adaptive_front();
        let calm = FeedbackConfig {
            target_latency_cycles: u64::MAX / 4,
            alpha: 0.25,
            queue_depth_bar: usize::MAX,
            energy_bar_pj: None,
        };
        let sim = ServeSim::new(small_cfg(1));
        let fb = sim.run_with(&trace, OpRouter::Feedback(&front, &calm));
        let pareto = sim.run_with(&trace, OpRouter::Pareto(&front));
        assert_eq!(fb, pareto);
    }

    #[test]
    fn feedback_router_relowers_under_measured_pressure() {
        // A 1-cycle latency target is blown by the very first completion, so
        // every later admission re-routes to the front's leanest points.
        let trace = small_trace(32, 300.0, 23);
        let front = adaptive_front();
        let hot = FeedbackConfig::new(1);
        let sim = ServeSim::new(small_cfg(1));
        let fb = sim.run_with(&trace, OpRouter::Feedback(&front, &hot));
        assert_eq!(fb.records.len(), trace.len());
        assert!(
            fb.records.iter().any(|r| r.rerouted),
            "measured pressure must re-route some admissions"
        );
        // Routing leaner under pressure cannot cost energy overall.
        let pareto = sim.run_with(&trace, OpRouter::Pareto(&front));
        let total = |r: &ServeReport| r.records.iter().map(|x| x.energy_pj).sum::<f64>();
        assert!(total(&fb) <= total(&pareto));
        // Deterministic.
        assert_eq!(fb, sim.run_with(&trace, OpRouter::Feedback(&front, &hot)));
    }

    #[test]
    fn instance_energy_budget_steers_placement_without_shedding() {
        let trace = small_trace(24, 150.0, 19);
        let mut cfg = small_cfg(2);
        cfg.instance_energy_budget_pj = Some(5.0e7);
        let sim = ServeSim::new(cfg);
        let report = sim.run(&trace);
        assert_eq!(
            report.records.len(),
            trace.len(),
            "an instance budget delays admission, it never sheds"
        );
        assert!(
            report.requests_on(0) > 0 && report.requests_on(1) > 0,
            "energy headroom must spread load across both instances"
        );
        assert_eq!(report, sim.run(&trace));
    }

    #[test]
    #[should_panic(expected = "invalid serve config")]
    fn zero_retry_keep_factor_is_rejected() {
        let mut cfg = small_cfg(1);
        cfg.retry = Some(RetryPolicy {
            keep_factor: 0.0,
            ..RetryPolicy::default()
        });
        let _ = ServeSim::new(cfg);
    }

    #[test]
    #[should_panic(expected = "invalid serve config")]
    fn non_positive_instance_energy_budget_is_rejected() {
        let mut cfg = small_cfg(1);
        cfg.instance_energy_budget_pj = Some(0.0);
        let _ = ServeSim::new(cfg);
    }

    #[test]
    #[should_panic(expected = "invalid feedback config")]
    fn zero_feedback_target_is_rejected() {
        let front = adaptive_front();
        let mut bad = FeedbackConfig::new(1);
        bad.target_latency_cycles = 0;
        let _ = ServeSim::new(small_cfg(1))
            .run_with(&small_trace(2, 50.0, 1), OpRouter::Feedback(&front, &bad));
    }

    #[test]
    #[should_panic(expected = "invalid serve config")]
    fn underbooking_is_rejected() {
        let mut cfg = small_cfg(1);
        cfg.overbook = 0.5;
        let _ = ServeSim::new(cfg);
    }

    #[test]
    #[should_panic(expected = "invalid serve config")]
    fn non_positive_energy_budget_is_rejected() {
        let mut cfg = small_cfg(1);
        cfg.energy_budget_pj_per_req = Some(0.0);
        let _ = ServeSim::new(cfg);
    }
}
