//! The continuous-batching admission scheduler.
//!
//! [`ServeSim`] multiplexes a [`RequestTrace`] onto `N` simulated SOFA
//! instances. Requests are lowered once into [`PipelineJob`]s; admission then
//! interleaves with the cycle-level simulation — a request admitted at cycle
//! `t` has its tiles enter the instance's stream at `t`, and the completion
//! events the simulation produces feed the next admission decision. This is
//! continuous batching at tile granularity: an instance never drains between
//! requests, new tiles enter right behind the previous request's.
//!
//! **Operating points.** Every request is lowered at an [`OperatingPoint`]
//! chosen by an [`OpRouter`] — the trace's native keep ratios on the
//! deployment tiling, one fixed point, or per-class Pareto routing through a
//! DSE front ([`sofa_dse::ParetoFront`]). A multi-layer point lowers the
//! request once per layer, switching keep ratio and tile size between the
//! layer invocations, and streams the concatenated tile sequence through the
//! instance. Scalar `(keep, Bc)` pairs never enter the lowering.
//!
//! **Energy budget.** Lowering projects each request's energy from the DSE
//! energy model (analytic compute/SRAM/interface/DRAM energy plus the
//! per-DRAM-request activation charge). When the configured per-request
//! budget ([`ServeConfig::energy_budget_pj_per_req`]) is exceeded, the
//! scheduler re-routes the request to the front's energy-leanest point; a
//! request that exceeds the budget even there is **shed** — recorded in
//! [`ServeReport::shed`] instead of being admitted. Admitted energy is
//! tracked per instance.
//!
//! Admission is buffer-budgeted. Classic worst-case sizing reserves, per
//! admitted request, the SRAM a *dense* request would pin — but after the
//! prediction stage, top-k sparsity means the real resident footprint is a
//! fraction of that. With [`ServeConfig::predicted_footprint`] the scheduler
//! books the measured (sparsity-aware) footprint instead, and
//! [`ServeConfig::overbook`] further relaxes the budget — the
//! buffer-overbooking idea Tailors applies to sparse workloads. Requests are
//! picked smallest-footprint-first (best packing) unless one has waited past
//! [`ServeConfig::aging_threshold`], in which case the oldest starved
//! request is served first.

use crate::report::{RequestRecord, ServeReport, ShedRecord};
use sofa_dse::ParetoFront;
use sofa_hw::accel::AttentionTask;
use sofa_hw::config::HwConfig;
use sofa_hw::energy::DRAM_ACTIVATION_PJ;
use sofa_model::trace::{RequestClass, RequestSpec, RequestTrace};
use sofa_model::OperatingPoint;
use sofa_obs::{ArgValue, MetricsRegistry, TraceRecorder};
use sofa_sim::tracks::PID_SERVE_BASE;
use sofa_sim::{CycleSim, MultiPipelineSim, PipelineJob, SimParams};

/// Process id of the per-request lifecycle tracks (tid = request id).
pub const PID_REQUESTS: u64 = PID_SERVE_BASE;
/// Process id of the scheduler-level counter tracks (wait-queue depth).
pub const PID_SCHEDULER: u64 = PID_SERVE_BASE + 1;
/// Track id, within an instance process, of the booked-bytes counter.
pub const TID_SERVE_INFLIGHT: u64 = 8;
/// Track id, within an instance process, of the admitted-energy counter.
pub const TID_SERVE_ENERGY: u64 = 9;

/// Trace-viewer label of a request class.
fn class_name(class: RequestClass) -> &'static str {
    match class {
        RequestClass::Prefill => "prefill",
        RequestClass::Decode => "decode",
    }
}

/// How the scheduler picks the next waiting request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitPolicy {
    /// Strict arrival order.
    Fifo,
    /// Smallest buffer footprint first (best packing under the budget);
    /// priority aging still bounds the wait of large requests.
    SmallestFirst,
}

/// How each request's operating point is chosen at admission time.
#[derive(Debug, Clone, Copy)]
pub enum OpRouter<'a> {
    /// The trace's native keep ratios on the deployment tiling
    /// ([`ServeConfig::op`] with each request's keep substituted).
    TraceNative,
    /// One fixed operating point for every request (single-point tuned
    /// deployments, paper-default baselines).
    Fixed(&'a OperatingPoint),
    /// Per-class routing through a DSE Pareto front: latency-lean points for
    /// decodes, energy-lean points for prefills
    /// ([`ParetoFront::route`]).
    Pareto(&'a ParetoFront),
}

impl OpRouter<'_> {
    /// The operating point this router assigns to `spec`.
    pub(crate) fn pick(&self, deployment: &OperatingPoint, spec: &RequestSpec) -> OperatingPoint {
        match self {
            OpRouter::TraceNative => deployment.with_uniform_keep(spec.keep_ratio),
            OpRouter::Fixed(op) => (*op).clone(),
            OpRouter::Pareto(front) => front.route(&spec.class),
        }
    }

    /// The leaner point an over-budget request is re-routed to, when the
    /// router has one (only Pareto routing does).
    fn leaner(&self) -> Option<OperatingPoint> {
        match self {
            OpRouter::Pareto(front) => Some(front.leanest_energy()),
            _ => None,
        }
    }
}

/// Configuration of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Hardware configuration of every instance.
    pub hw: HwConfig,
    /// Microarchitectural simulation parameters (shared by all instances).
    /// [`ServeConfig::new`] enables the calibrated DRAM command occupancy so
    /// routing decisions see request-granularity DRAM effects.
    pub sim: SimParams,
    /// Number of accelerator instances.
    pub instances: usize,
    /// The deployment operating point: the tiling requests are lowered with
    /// when no router overrides it (trace-native runs substitute each
    /// request's keep ratio into this point).
    pub op: OperatingPoint,
    /// Per-instance admission budget in bytes (defaults to the token SRAM).
    pub admit_buffer_bytes: u64,
    /// Budget relaxation factor (≥ 1): `budget = admit_buffer_bytes ×
    /// overbook`. Overbooking banks on sparsity keeping real occupancy
    /// below the accounted footprints.
    pub overbook: f64,
    /// Account the measured sparse footprint (`true`, Tailors-style) or the
    /// worst-case dense footprint (`false`, classic sizing) per request.
    pub predicted_footprint: bool,
    /// Waiting cycles beyond which a request overrides the admission policy
    /// (starvation bound for `SmallestFirst`).
    pub aging_threshold: u64,
    /// Pick order among waiting requests.
    pub policy: AdmitPolicy,
    /// Per-request energy ceiling in picojoules (the per-instance J/req
    /// budget from the DSE energy model). `None` disables the energy path;
    /// with a budget, over-budget requests are re-routed to the router's
    /// leanest point and shed if still over.
    pub energy_budget_pj_per_req: Option<f64>,
}

impl ServeConfig {
    /// A serving setup of `instances` copies of `hw` with the defaults:
    /// smallest-first admission on measured footprints, no overbooking,
    /// aging after 100k cycles, DRAM priority aging after 4 burst latencies,
    /// calibrated DRAM command occupancy, a single-layer deployment point at
    /// the trace-default keep and `Bc = 32`, and no energy budget.
    pub fn new(hw: HwConfig, instances: usize) -> Self {
        let mut sim = SimParams::default();
        sim.dram_age_threshold = 4 * sim.burst_latency;
        let sim = sim.with_dram_command_calibration(&hw);
        ServeConfig {
            hw,
            sim,
            instances,
            op: OperatingPoint::single(0.25, 32),
            admit_buffer_bytes: hw.token_sram_bytes as u64,
            overbook: 1.0,
            predicted_footprint: true,
            aging_threshold: 100_000,
            policy: AdmitPolicy::SmallestFirst,
            energy_budget_pj_per_req: None,
        }
    }

    /// The effective per-instance budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        (self.admit_buffer_bytes as f64 * self.overbook).round() as u64
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.instances == 0 {
            return Err("instances must be positive".into());
        }
        if self.admit_buffer_bytes == 0 {
            return Err("admit_buffer_bytes must be positive".into());
        }
        if self.overbook < 1.0 || self.overbook.is_nan() {
            return Err("overbook must be >= 1".into());
        }
        if let Some(b) = self.energy_budget_pj_per_req {
            if b <= 0.0 || b.is_nan() {
                return Err("energy budget must be positive".into());
            }
        }
        Ok(())
    }
}

/// One request lowered and waiting for (or past) admission.
#[derive(Debug)]
pub(crate) struct Lowered {
    pub(crate) class: RequestClass,
    pub(crate) arrival: u64,
    pub(crate) job: PipelineJob,
    /// Bytes admission control books for the request (the worst layer).
    pub(crate) footprint: u64,
    /// Projected energy of the whole request (all layers) in picojoules.
    pub(crate) energy_pj: f64,
    /// Whether the energy budget re-routed this request to a leaner point.
    pub(crate) rerouted: bool,
    /// `false` when the request exceeded the energy budget even at the
    /// leanest point and was shed instead of admitted.
    pub(crate) admit: bool,
}

/// The continuous-batching serving simulator.
#[derive(Debug)]
pub struct ServeSim {
    cfg: ServeConfig,
}

impl ServeSim {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ServeConfig::validate`].
    pub fn new(cfg: ServeConfig) -> Self {
        cfg.validate().expect("invalid serve config");
        ServeSim { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Lowers one request at `op`: one pipeline job per layer, concatenated
    /// into a single tile stream, plus the admission footprint and the
    /// projected energy.
    ///
    /// The footprint is the state an instance pins for the life of an
    /// in-flight layer (tiles merely stream through the ping-pong banks):
    /// the query block and the output accumulator (`T×H` 16-bit values
    /// each) plus per-selected-key metadata — index and predicted score,
    /// 4 B per kept Q-K pair. Layers run back to back, so admission books
    /// the worst layer. Worst-case sizing must budget for a dense selection
    /// (every key kept); the *measured* footprint books only the `T×k`
    /// pairs the prediction stage actually keeps — the capacity overbooking
    /// reclaims.
    ///
    /// The energy projection follows the DSE evaluator's model: the
    /// analytic compute/SRAM/interface/DRAM energy of each layer's task
    /// plus [`DRAM_ACTIVATION_PJ`] per DRAM request the lowered job issues.
    fn lower_at(&self, csim: &CycleSim, spec: &RequestSpec, op: &OperatingPoint) -> PointLowering {
        let t = spec.queries as u64;
        let h = spec.hidden as u64;
        let mut combined = PipelineJob {
            work: Vec::new(),
            cycles: Vec::new(),
        };
        let mut footprint = 0u64;
        let mut energy_pj = 0.0f64;
        for layer in 0..op.layers() {
            let task = AttentionTask::at_layer(
                spec.queries,
                spec.seq_len,
                spec.hidden,
                spec.heads,
                op,
                layer,
            );
            let job = csim.job(&task, None);
            let requests = job.dram_requests();
            let analytic = csim.accel.simulate(&task);
            energy_pj += analytic.energy.total_j() * 1e12 + requests as f64 * DRAM_ACTIVATION_PJ;
            let kept_pairs = if self.cfg.predicted_footprint {
                task.k() as u64
            } else {
                spec.seq_len as u64
            };
            footprint = footprint.max(t * h * 2 + t * h * 2 + t * kept_pairs * 4);
            combined.work.extend(job.work);
            combined.cycles.extend(job.cycles);
        }
        PointLowering {
            job: combined,
            footprint,
            energy_pj,
        }
    }

    /// Lowers one request through `router`, applying the energy budget:
    /// over-budget requests are re-routed to the router's leanest point,
    /// and shed when they exceed the budget even there.
    pub(crate) fn lower_routed(
        &self,
        csim: &CycleSim,
        spec: &RequestSpec,
        router: &OpRouter,
    ) -> Lowered {
        let op = router.pick(&self.cfg.op, spec);
        let mut lowering = self.lower_at(csim, spec, &op);
        let mut rerouted = false;
        let mut admit = true;
        if let Some(budget) = self.cfg.energy_budget_pj_per_req {
            if lowering.energy_pj > budget {
                if let Some(lean) = router.leaner().filter(|lean| *lean != op) {
                    lowering = self.lower_at(csim, spec, &lean);
                    rerouted = true;
                }
                admit = lowering.energy_pj <= budget;
            }
        }
        Lowered {
            class: spec.class,
            arrival: spec.arrival_cycle,
            job: lowering.job,
            footprint: lowering.footprint,
            energy_pj: lowering.energy_pj,
            rerouted,
            admit,
        }
    }

    /// Serves `trace` with every request lowered at the trace's native keep
    /// ratio on the deployment tiling ([`OpRouter::TraceNative`]).
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn run(&self, trace: &RequestTrace) -> ServeReport {
        self.run_with(trace, OpRouter::TraceNative)
    }

    /// Serves `trace` to completion under `router` and reports per-request
    /// latencies, queueing delays, energy and per-instance utilization.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn run_with(&self, trace: &RequestTrace, router: OpRouter) -> ServeReport {
        self.run_inner(trace, router, &mut TraceRecorder::disabled())
    }

    /// [`ServeSim::run_with`] plus observability: request-lifecycle spans,
    /// reroute/shed instants and per-instance booking counters land in `obs`
    /// (stamped in simulated cycles — merge it with other recorders and call
    /// [`TraceRecorder::to_chrome_json`] for Perfetto), and the report's
    /// summary statistics land in `metrics`. The report itself is
    /// bit-identical to the untraced run's at any `SOFA_THREADS`: lowering
    /// workers fork per-request recorders that are absorbed in arrival
    /// order, so the trace bytes are thread-count-independent too.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn run_traced(
        &self,
        trace: &RequestTrace,
        router: OpRouter,
        obs: &mut TraceRecorder,
        metrics: &mut MetricsRegistry,
    ) -> ServeReport {
        let report = self.run_inner(trace, router, obs);
        report.record_metrics(metrics);
        report
    }

    fn run_inner(
        &self,
        trace: &RequestTrace,
        router: OpRouter,
        obs: &mut TraceRecorder,
    ) -> ServeReport {
        assert!(!trace.is_empty(), "cannot serve an empty trace");
        let n = self.cfg.instances;
        if obs.is_enabled() {
            obs.process_name(PID_REQUESTS, "requests");
            for i in 0..trace.requests.len() {
                obs.thread_name(PID_REQUESTS, i as u64, &format!("req{i}"));
            }
            obs.process_name(PID_SCHEDULER, "scheduler");
            obs.thread_name(PID_SCHEDULER, 0, "serve.wait_queue");
            for i in 0..n {
                obs.thread_name(i as u64, TID_SERVE_INFLIGHT, "serve.inflight_bytes");
                obs.thread_name(i as u64, TID_SERVE_ENERGY, "serve.energy_pj");
            }
        }
        let mut csim = CycleSim::new(self.cfg.hw);
        csim.params = self.cfg.sim;
        // Lowering a request (routing, descriptor generation, per-tile cycle
        // apportioning, energy projection) is a pure function of the spec,
        // so the whole trace fans out across cores before the serial event
        // loop; order is preserved, so the simulation is oblivious to the
        // thread count. Each worker records into a fork of `obs` (an empty
        // buffer when tracing is off); the forks are absorbed in arrival
        // order, keeping the trace bytes thread-count-independent.
        let parent = &*obs;
        let pairs: Vec<(Lowered, TraceRecorder)> =
            sofa_par::par_map_index(trace.requests.len(), |i| {
                let spec = &trace.requests[i];
                let mut rec = parent.fork();
                let req = self.lower_routed(&csim, spec, &router);
                if rec.is_enabled() {
                    let tid = i as u64;
                    rec.instant(
                        PID_REQUESTS,
                        tid,
                        "lowered",
                        req.arrival,
                        &[
                            ("class", ArgValue::Str(class_name(req.class))),
                            ("footprint_bytes", ArgValue::U64(req.footprint)),
                            ("energy_pj", ArgValue::F64(req.energy_pj)),
                        ],
                    );
                    if req.rerouted {
                        rec.instant(
                            PID_REQUESTS,
                            tid,
                            "reroute",
                            req.arrival,
                            &[("to", ArgValue::Str("energy-leanest"))],
                        );
                    }
                    if !req.admit {
                        rec.instant(
                            PID_REQUESTS,
                            tid,
                            "shed",
                            req.arrival,
                            &[("energy_pj", ArgValue::F64(req.energy_pj))],
                        );
                    }
                }
                (req, rec)
            });
        let mut lowered = Vec::with_capacity(pairs.len());
        for (req, rec) in pairs {
            obs.absorb(rec);
            lowered.push(req);
        }

        let mut msim = MultiPipelineSim::new(&self.cfg.hw, n, self.cfg.sim);
        if obs.is_enabled() {
            msim.enable_tracing();
        }
        let mut state = AdmissionState::new(n, lowered.len());
        let mut shed: Vec<ShedRecord> = Vec::new();
        let mut next_arrival = 0usize;

        loop {
            let event = msim.next_event_time();
            let arrival = (next_arrival < lowered.len()).then(|| lowered[next_arrival].arrival);
            // Completions at the same cycle free capacity before the
            // admission decision, so events run first on ties.
            let arrival_first = match (event, arrival) {
                (None, None) => break,
                (Some(e), Some(a)) => a < e,
                (None, Some(_)) => true,
                (Some(_), None) => false,
            };
            if arrival_first {
                let now = arrival.expect("arrival_first implies an arrival");
                let req = &lowered[next_arrival];
                if req.admit {
                    state.waiting.push(next_arrival);
                    if obs.is_enabled() {
                        obs.counter(
                            PID_SCHEDULER,
                            0,
                            "serve.wait_queue",
                            now,
                            &[("waiting", state.waiting.len() as f64)],
                        );
                    }
                } else {
                    shed.push(ShedRecord {
                        id: next_arrival as u64,
                        class: req.class,
                        arrival: req.arrival,
                        energy_pj: req.energy_pj,
                    });
                }
                next_arrival += 1;
                self.try_admit(now, &lowered, &mut state, &mut msim, obs);
            } else {
                let step = msim.step().expect("event was pending");
                if let Some(done) = step.completed {
                    let idx = done.request as usize;
                    state.completed_at[idx] = step.time;
                    state.inflight_bytes[done.instance] -= lowered[idx].footprint;
                    state.inflight_reqs[done.instance] -= 1;
                    if obs.is_enabled() {
                        obs.counter(
                            done.instance as u64,
                            TID_SERVE_INFLIGHT,
                            "serve.inflight_bytes",
                            step.time,
                            &[("bytes", state.inflight_bytes[done.instance] as f64)],
                        );
                    }
                    self.try_admit(step.time, &lowered, &mut state, &mut msim, obs);
                }
            }
        }

        if obs.is_enabled() {
            // Lifecycle spans are emitted once placement and completion are
            // known; walking the requests in id order keeps every per-request
            // track's timestamps (lowered -> queued -> execute) sorted.
            for (i, req) in lowered.iter().enumerate() {
                if !req.admit {
                    continue;
                }
                let tid = i as u64;
                let admitted = state.admitted_at[i];
                obs.complete(
                    PID_REQUESTS,
                    tid,
                    "queued",
                    req.arrival,
                    admitted - req.arrival,
                    &[("class", ArgValue::Str(class_name(req.class)))],
                );
                obs.complete(
                    PID_REQUESTS,
                    tid,
                    "execute",
                    admitted,
                    state.completed_at[i] - admitted,
                    &[("instance", ArgValue::U64(state.placed_on[i] as u64))],
                );
            }
        }

        let records: Vec<RequestRecord> = lowered
            .iter()
            .enumerate()
            .filter(|(_, req)| req.admit)
            .map(|(i, req)| {
                assert!(
                    state.completed_at[i] != u64::MAX,
                    "every admitted request must complete"
                );
                RequestRecord {
                    id: i as u64,
                    class: req.class,
                    instance: state.placed_on[i],
                    arrival: req.arrival,
                    admitted: state.admitted_at[i],
                    completed: state.completed_at[i],
                    footprint_bytes: req.footprint,
                    energy_pj: req.energy_pj,
                    rerouted: req.rerouted,
                }
            })
            .collect();
        let multi = msim.report();
        obs.absorb(msim.take_trace());
        let latency = ServeReport::sketch_latencies(&records);
        ServeReport {
            records,
            shed,
            total_cycles: multi.total_cycles,
            multi,
            budget_bytes: self.cfg.budget_bytes(),
            peak_inflight_bytes: state.peak_inflight,
            energy_pj_per_instance: state.energy_pj,
            latency,
        }
    }

    /// Position in `waiting` of the next request to try: the oldest starved
    /// request if any has waited past the aging threshold, else the policy's
    /// pick. `waiting` is kept in arrival order, so index 0 is the oldest.
    fn pick(&self, now: u64, waiting: &[usize], lowered: &[Lowered]) -> usize {
        let oldest_wait = now.saturating_sub(lowered[waiting[0]].arrival);
        if oldest_wait >= self.cfg.aging_threshold {
            return 0;
        }
        match self.cfg.policy {
            AdmitPolicy::Fifo => 0,
            AdmitPolicy::SmallestFirst => waiting
                .iter()
                .enumerate()
                .min_by_key(|&(_, &req)| (lowered[req].footprint, req))
                .map(|(pos, _)| pos)
                .expect("waiting is non-empty"),
        }
    }

    /// Admits as many waiting requests as fit. An instance fits a request
    /// when the booked footprints stay within the (overbooked) budget — or
    /// when it is completely idle, so a single oversized request can always
    /// make progress. Placement is least-booked-first for load balance.
    fn try_admit(
        &self,
        now: u64,
        lowered: &[Lowered],
        state: &mut AdmissionState,
        msim: &mut MultiPipelineSim,
        obs: &mut TraceRecorder,
    ) {
        let budget = self.cfg.budget_bytes();
        while !state.waiting.is_empty() {
            let pos = self.pick(now, &state.waiting, lowered);
            let req = state.waiting[pos];
            let fp = lowered[req].footprint;
            let target = (0..state.inflight_bytes.len())
                .filter(|&i| state.inflight_reqs[i] == 0 || state.inflight_bytes[i] + fp <= budget)
                .min_by_key(|&i| (state.inflight_bytes[i], i));
            let Some(inst) = target else {
                // Nothing fits the candidate now; completions will retry.
                // Stopping (rather than skipping to a smaller request) is
                // what keeps the aged head-of-line request from being
                // overtaken forever.
                return;
            };
            state.waiting.remove(pos);
            msim.submit(inst, req as u64, &lowered[req].job, now);
            state.inflight_bytes[inst] += fp;
            state.inflight_reqs[inst] += 1;
            state.peak_inflight[inst] = state.peak_inflight[inst].max(state.inflight_bytes[inst]);
            state.energy_pj[inst] += lowered[req].energy_pj;
            state.placed_on[req] = inst;
            state.admitted_at[req] = now;
            if obs.is_enabled() {
                obs.counter(
                    PID_SCHEDULER,
                    0,
                    "serve.wait_queue",
                    now,
                    &[("waiting", state.waiting.len() as f64)],
                );
                obs.counter(
                    inst as u64,
                    TID_SERVE_INFLIGHT,
                    "serve.inflight_bytes",
                    now,
                    &[("bytes", state.inflight_bytes[inst] as f64)],
                );
                obs.counter(
                    inst as u64,
                    TID_SERVE_ENERGY,
                    "serve.energy_pj",
                    now,
                    &[("pj", state.energy_pj[inst])],
                );
            }
        }
    }
}

/// One request lowered at one operating point (pre-budget).
struct PointLowering {
    job: PipelineJob,
    footprint: u64,
    energy_pj: f64,
}

/// Mutable scheduling state of one [`ServeSim::run_with`]: the wait queue
/// (in arrival order), per-instance booked bytes / request counts / admitted
/// energy, and the per-request placement/lifecycle slots filled in as the
/// run progresses.
#[derive(Debug)]
struct AdmissionState {
    waiting: Vec<usize>,
    inflight_bytes: Vec<u64>,
    inflight_reqs: Vec<usize>,
    peak_inflight: Vec<u64>,
    energy_pj: Vec<f64>,
    placed_on: Vec<usize>,
    admitted_at: Vec<u64>,
    completed_at: Vec<u64>,
}

impl AdmissionState {
    fn new(instances: usize, requests: usize) -> Self {
        AdmissionState {
            waiting: Vec::new(),
            inflight_bytes: vec![0; instances],
            inflight_reqs: vec![0; instances],
            peak_inflight: vec![0; instances],
            energy_pj: vec![0.0; instances],
            placed_on: vec![usize::MAX; requests],
            admitted_at: vec![u64::MAX; requests],
            completed_at: vec![u64::MAX; requests],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofa_model::trace::TraceConfig;

    fn small_cfg(instances: usize) -> ServeConfig {
        let mut cfg = ServeConfig::new(HwConfig::small(), instances);
        cfg.op = OperatingPoint::single(0.25, 64);
        cfg
    }

    fn small_trace(n: usize, rate: f64, seed: u64) -> RequestTrace {
        let mut tc = TraceConfig::new(n, rate, seed);
        tc.seq_len = 512;
        tc.hidden = 256;
        tc.heads = 4;
        tc.prefill_queries = 16;
        RequestTrace::generate(&tc)
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let report = ServeSim::new(small_cfg(2)).run(&small_trace(24, 40.0, 1));
        assert_eq!(report.records.len(), 24);
        assert!(report.shed.is_empty(), "no budget, nothing shed");
        for r in &report.records {
            assert!(r.admitted >= r.arrival, "admission precedes arrival");
            assert!(r.completed > r.admitted, "completion precedes admission");
            assert!(r.instance < 2);
            assert!(r.energy_pj > 0.0, "every request projects energy");
            assert!(!r.rerouted, "nothing re-routes without a budget");
        }
        let placed: usize = (0..2).map(|i| report.requests_on(i)).sum();
        assert_eq!(placed, 24);
        assert_eq!(
            report
                .multi
                .instances
                .iter()
                .map(|a| a.requests)
                .sum::<usize>(),
            24
        );
        // Admitted energy is conserved across instances.
        let per_instance: f64 = report.energy_pj_per_instance.iter().sum();
        let per_request: f64 = report.records.iter().map(|r| r.energy_pj).sum();
        assert!((per_instance - per_request).abs() < 1e-6);
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = small_trace(16, 60.0, 9);
        let a = ServeSim::new(small_cfg(2)).run(&trace);
        let b = ServeSim::new(small_cfg(2)).run(&trace);
        assert_eq!(a, b);
    }

    #[test]
    fn booked_footprints_respect_the_budget() {
        let cfg = small_cfg(2);
        let report = ServeSim::new(cfg).run(&small_trace(32, 200.0, 3));
        let largest = report
            .records
            .iter()
            .map(|r| r.footprint_bytes)
            .max()
            .unwrap();
        for &peak in &report.peak_inflight_bytes {
            assert!(
                peak <= report.budget_bytes.max(largest),
                "peak {peak} exceeds budget {} (largest single {largest})",
                report.budget_bytes
            );
        }
    }

    #[test]
    fn overbooking_admits_requests_sooner() {
        // Saturating load on one instance: relaxing the budget must not make
        // queueing worse.
        let trace = small_trace(32, 400.0, 5);
        let tight = ServeSim::new(small_cfg(1)).run(&trace);
        let mut loose_cfg = small_cfg(1);
        loose_cfg.overbook = 4.0;
        let loose = ServeSim::new(loose_cfg).run(&trace);
        assert!(
            loose.mean_queueing_delay() <= tight.mean_queueing_delay(),
            "overbooking cannot increase queueing: {} vs {}",
            loose.mean_queueing_delay(),
            tight.mean_queueing_delay()
        );
        assert_eq!(loose.records.len(), trace.len());
    }

    #[test]
    fn aging_bounds_the_wait_of_large_requests() {
        // Under SmallestFirst a steady stream of small decodes could starve
        // a large prefill; the aging threshold must bound its wait relative
        // to the same schedule without aging.
        let trace = small_trace(48, 300.0, 13);
        let mut aged_cfg = small_cfg(1);
        aged_cfg.aging_threshold = 20_000;
        let mut starved_cfg = small_cfg(1);
        starved_cfg.aging_threshold = u64::MAX;
        let aged = ServeSim::new(aged_cfg).run(&trace);
        let starved = ServeSim::new(starved_cfg).run(&trace);
        let worst = |r: &ServeReport| r.records.iter().map(|x| x.queueing_delay()).max().unwrap();
        assert!(
            worst(&aged) <= worst(&starved),
            "aging must not worsen the worst queueing delay: {} vs {}",
            worst(&aged),
            worst(&starved)
        );
    }

    #[test]
    fn two_instances_beat_one_under_load() {
        let trace = small_trace(32, 300.0, 7);
        let one = ServeSim::new(small_cfg(1)).run(&trace);
        let two = ServeSim::new(small_cfg(2)).run(&trace);
        assert!(
            two.total_cycles < one.total_cycles,
            "a second instance must cut the makespan: {} vs {}",
            two.total_cycles,
            one.total_cycles
        );
        assert!(two.p95() <= one.p95());
        assert!(two.requests_on(0) > 0 && two.requests_on(1) > 0);
    }

    #[test]
    fn trace_dram_traffic_is_conserved() {
        let cfg = small_cfg(3);
        let trace = small_trace(20, 100.0, 21);
        let report = ServeSim::new(cfg.clone()).run(&trace);
        let mut csim = CycleSim::new(cfg.hw);
        csim.params = cfg.sim;
        let want: u64 = trace
            .requests
            .iter()
            .map(|spec| {
                let op = cfg.op.with_uniform_keep(spec.keep_ratio);
                let task = AttentionTask::at_layer(
                    spec.queries,
                    spec.seq_len,
                    spec.hidden,
                    spec.heads,
                    &op,
                    0,
                );
                csim.job(&task, None).total_dram_bytes()
            })
            .sum();
        assert_eq!(report.multi.dram.total_bytes(), want);
    }

    #[test]
    fn multi_layer_lowering_concatenates_the_layer_streams() {
        // A two-layer fixed point must stream both layers' tiles: double the
        // single-layer DRAM traffic when the layers are identical.
        let cfg = small_cfg(1);
        let trace = small_trace(6, 50.0, 31);
        let sim = ServeSim::new(cfg);
        let one = OperatingPoint::single(0.25, 64);
        let two = OperatingPoint::uniform(0.25, 64, 2);
        let r1 = sim.run_with(&trace, OpRouter::Fixed(&one));
        let r2 = sim.run_with(&trace, OpRouter::Fixed(&two));
        assert_eq!(
            r2.multi.dram.total_bytes(),
            2 * r1.multi.dram.total_bytes(),
            "two identical layers move twice the bytes"
        );
        assert!(r2.total_cycles > r1.total_cycles);
        // Energy doubles with the layers too.
        let sum = |r: &ServeReport| r.records.iter().map(|x| x.energy_pj).sum::<f64>();
        assert!((sum(&r2) - 2.0 * sum(&r1)).abs() < 1e-6 * sum(&r2));
    }

    #[test]
    fn energy_budget_sheds_what_even_the_leanest_point_exceeds() {
        // A fixed router has no leaner point to fall back to: every request
        // over the (absurdly small) budget is shed, decodes stay under it.
        let trace = small_trace(16, 80.0, 17);
        let mut cfg = small_cfg(1);
        // Between a decode's projection (~9–19 µJ at this shape) and a
        // prefill's (~28 µJ).
        let budget = 2.0e7;
        cfg.energy_budget_pj_per_req = Some(budget);
        let sim = ServeSim::new(cfg);
        let report = sim.run(&trace);
        assert!(!report.shed.is_empty(), "prefills must exceed the budget");
        assert!(
            report.shed.iter().all(|s| s.class == RequestClass::Prefill),
            "only the bulky prefills exceed this budget"
        );
        assert_eq!(report.records.len() + report.shed.len(), trace.len());
        for r in &report.records {
            assert!(r.energy_pj <= budget);
        }
    }

    #[test]
    fn traced_run_matches_untraced_and_trace_validates() {
        let trace = small_trace(16, 120.0, 11);
        let sim = ServeSim::new(small_cfg(2));
        let plain = sim.run(&trace);
        let mut obs = TraceRecorder::enabled();
        let mut reg = MetricsRegistry::new();
        let traced = sim.run_traced(&trace, OpRouter::TraceNative, &mut obs, &mut reg);
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        let stats = sofa_obs::validate_chrome_trace(&obs.to_chrome_json()).expect("valid trace");
        // Per admitted request: queued + execute lifecycle spans on top of
        // the per-tile stage spans from the instances.
        assert!(stats.spans >= 2 * traced.records.len());
        assert!(
            stats.instants >= traced.records.len(),
            "one lowered instant each"
        );
        assert!(stats.counter_samples > 0, "booking counters sampled");
        assert!(stats.max_ts > 0 && stats.max_ts <= traced.total_cycles);
        assert_eq!(reg.counter("serve.requests.admitted"), 16);
        assert_eq!(reg.counter("serve.requests.shed"), 0);
        assert!(reg.gauge("serve.latency_p95").is_some());
        assert_eq!(
            reg.gauge("serve.total_cycles"),
            Some(traced.total_cycles as f64)
        );
    }

    #[test]
    fn trace_bytes_are_thread_count_independent() {
        let trace = small_trace(12, 150.0, 23);
        let sim = ServeSim::new(small_cfg(2));
        let run = |threads: usize| {
            sofa_par::with_threads(threads, || {
                let mut obs = TraceRecorder::enabled();
                let mut reg = MetricsRegistry::new();
                let report = sim.run_traced(&trace, OpRouter::TraceNative, &mut obs, &mut reg);
                (obs.to_chrome_json(), reg.to_json(), report)
            })
        };
        let (t1, m1, r1) = run(1);
        for threads in [2, 8] {
            let (t, m, r) = run(threads);
            assert_eq!(r1, r, "report differs at {threads} threads");
            assert_eq!(t1, t, "trace bytes differ at {threads} threads");
            assert_eq!(m1, m, "metrics differ at {threads} threads");
        }
    }

    #[test]
    fn shed_requests_leave_instants_not_lifecycle_spans() {
        let trace = small_trace(16, 80.0, 17);
        let mut cfg = small_cfg(1);
        cfg.energy_budget_pj_per_req = Some(2.0e7);
        let sim = ServeSim::new(cfg);
        let mut obs = TraceRecorder::enabled();
        let mut reg = MetricsRegistry::new();
        let report = sim.run_traced(&trace, OpRouter::TraceNative, &mut obs, &mut reg);
        assert!(!report.shed.is_empty());
        let json = obs.to_chrome_json();
        sofa_obs::validate_chrome_trace(&json).expect("valid trace");
        let count = |needle: &str| json.matches(needle).count();
        assert_eq!(count("\"name\":\"shed\""), report.shed.len());
        assert_eq!(
            count("\"name\":\"queued\""),
            report.records.len(),
            "only admitted requests get lifecycle spans"
        );
        assert_eq!(reg.counter("serve.requests.shed"), report.shed.len() as u64);
    }

    #[test]
    #[should_panic(expected = "invalid serve config")]
    fn underbooking_is_rejected() {
        let mut cfg = small_cfg(1);
        cfg.overbook = 0.5;
        let _ = ServeSim::new(cfg);
    }

    #[test]
    #[should_panic(expected = "invalid serve config")]
    fn non_positive_energy_budget_is_rejected() {
        let mut cfg = small_cfg(1);
        cfg.energy_budget_pj_per_req = Some(0.0);
        let _ = ServeSim::new(cfg);
    }
}
