//! Request-level serving on top of the SOFA cycle-level simulation.
//!
//! The paper evaluates one attention task at a time; this crate opens the
//! serving-workload scenario: a stream of mixed prefill/decode requests
//! (`sofa_model::trace`) is multiplexed onto one or more simulated SOFA
//! instances that share a DRAM channel (`sofa_sim::multi`), under a
//! continuous-batching admission scheduler.
//!
//! * [`scheduler`] — [`ServeSim`]: routes each request to an
//!   `OperatingPoint` ([`OpRouter`]: trace-native, fixed, or per-class
//!   Pareto routing through a DSE front), lowers it layer by layer into a
//!   tile stream, admits it against a per-instance buffer budget (with
//!   optional Tailors-style overbooking of the sparsity-reduced footprint)
//!   and a per-request energy budget (re-routing or shedding over-budget
//!   requests), balances load across instances, and ages waiting requests
//!   so none starves.
//! * [`report`] — [`ServeReport`]: per-request latency percentiles
//!   (p50/p95/p99), queueing delay, projected energy (J/req), per-instance
//!   utilization, DRAM-sharing statistics, shed requests.
//! * [`routing`] — [`DseServeComparison`] / [`RoutedServeStudy`]: serve the
//!   same trace at the paper-default point, a DSE-tuned point, and
//!   per-request Pareto routing (`sofa_dse::DseReport`), for side-by-side
//!   latency/energy comparison.
//! * [`fleet`] — [`FleetServeSim`]: sharded serving across many nodes
//!   (each a private-DRAM `sofa_sim::NodeSim`) joined by an inter-node
//!   fabric; epoch-synchronized least-booked placement with optional
//!   prefill/decode disaggregation, reporting streaming-sketch percentiles
//!   ([`FleetReport`]) so million-request traces stay cheap.
//!
//! # Example
//!
//! ```
//! use sofa_hw::config::HwConfig;
//! use sofa_model::trace::{RequestTrace, TraceConfig};
//! use sofa_serve::{ServeConfig, ServeSim};
//!
//! let mut tc = TraceConfig::new(8, 50.0, 42);
//! tc.seq_len = 256;
//! tc.hidden = 256;
//! tc.heads = 4;
//! tc.prefill_queries = 8;
//! let trace = RequestTrace::generate(&tc);
//! let report = ServeSim::new(ServeConfig::new(HwConfig::small(), 2)).run(&trace);
//! assert_eq!(report.records.len(), 8);
//! assert!(report.p99() >= report.p50());
//! ```

pub mod fleet;
pub mod report;
pub mod routing;
pub mod scheduler;

pub use fleet::{FleetConfig, FleetReport, FleetServeSim};
pub use report::{RequestRecord, ServeReport, ShedRecord};
pub use routing::{AdaptiveServeConfig, AdaptiveServeStudy, DseServeComparison, RoutedServeStudy};
pub use scheduler::{AdmitPolicy, FeedbackConfig, OpRouter, RetryPolicy, ServeConfig, ServeSim};
