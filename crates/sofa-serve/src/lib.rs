//! Request-level serving on top of the SOFA cycle-level simulation.
//!
//! The paper evaluates one attention task at a time; this crate opens the
//! serving-workload scenario: a stream of mixed prefill/decode requests
//! (`sofa_model::trace`) is multiplexed onto one or more simulated SOFA
//! instances that share a DRAM channel (`sofa_sim::multi`), under a
//! continuous-batching admission scheduler.
//!
//! * [`scheduler`] — [`ServeSim`]: lowers requests to per-request tile
//!   streams, admits them against a per-instance buffer budget (with
//!   optional Tailors-style overbooking of the sparsity-reduced footprint),
//!   balances load across instances, and ages waiting requests so none
//!   starves.
//! * [`report`] — [`ServeReport`]: per-request latency percentiles
//!   (p50/p95/p99), queueing delay, per-instance utilization, DRAM-sharing
//!   statistics.
//! * [`ab`] — [`DseServeComparison`]: serve the same trace with a DSE-tuned
//!   `(keep ratio, tile size)` operating point (`sofa_dse::DseReport`) next
//!   to the paper default, for side-by-side latency/throughput comparison.
//!
//! # Example
//!
//! ```
//! use sofa_hw::config::HwConfig;
//! use sofa_model::trace::{RequestTrace, TraceConfig};
//! use sofa_serve::{ServeConfig, ServeSim};
//!
//! let mut tc = TraceConfig::new(8, 50.0, 42);
//! tc.seq_len = 256;
//! tc.hidden = 256;
//! tc.heads = 4;
//! tc.prefill_queries = 8;
//! let trace = RequestTrace::generate(&tc);
//! let report = ServeSim::new(ServeConfig::new(HwConfig::small(), 2)).run(&trace);
//! assert_eq!(report.records.len(), 8);
//! assert!(report.p99() >= report.p50());
//! ```

pub mod ab;
pub mod report;
pub mod scheduler;

pub use ab::DseServeComparison;
pub use report::{RequestRecord, ServeReport};
pub use scheduler::{AdmitPolicy, ServeConfig, ServeSim};
