//! Fleet-scale sharded serving: cross-node placement over `sofa-sim`'s
//! node/fabric hierarchy.
//!
//! [`ServeSim`] schedules one node — `N` instances behind one shared DRAM
//! channel. [`FleetServeSim`] scales that out: requests are routed across
//! [`FleetConfig::nodes`] nodes (each a full [`sofa_sim::NodeSim`] with a
//! private DRAM channel), reaching their node through an inter-node
//! [`Fabric`] whose per-node ingress links add serialization and latency to
//! every placement. Placement is least-booked across the whole fleet, with
//! optional **prefill/decode disaggregation**: prefills pin to one node
//! pool, decodes to the other, spilling over only when their pool has no
//! capacity at all.
//!
//! **Epoch-synchronized.** The router interacts with the simulation only at
//! multiples of [`FleetConfig::epoch_cycles`]: each epoch, every node's
//! event stream advances independently (in parallel via `sofa-par` — nodes
//! share nothing between boundaries), then completions are folded into the
//! booking state, arrivals are ingested, and admission runs at the boundary
//! cycle. Queueing delays are therefore quantized to the epoch; the
//! boundary is computed from the next pending activity, so idle stretches
//! are skipped in one step.
//!
//! **Fleet-scale accounting.** A million-request trace cannot keep a
//! per-request record vector; [`FleetReport`] aggregates latency and
//! queueing delay into streaming [`QuantileSketch`]es (exact below 256
//! cycles, ≤1/128 relative error above) the moment each completion
//! surfaces. Lowering is shape-memoized: distinct request shapes are
//! lowered once (in parallel) and shared as [`Arc<PipelineJob>`]s across
//! every request of that shape.
//!
//! Determinism contract: the report (and, when traced, the Perfetto
//! artifact: per-node pid windows absorbed in node order, router/fabric
//! counters stamped at boundary cycles) is byte-identical at any
//! `SOFA_THREADS` and across repeated runs.

use crate::report::ServeReport;
use crate::scheduler::{AdmitPolicy, LowerCache, OpRouter, PointLowering, ServeConfig, ServeSim};
use sofa_core::cache::{CacheStats, ShapeKey};
use sofa_model::trace::{RequestClass, RequestTrace};
use sofa_obs::{MetricsRegistry, QuantileSketch, TraceRecorder};
use sofa_sim::tracks::{PID_FABRIC, PID_FLEET_ROUTER};
use sofa_sim::{
    CycleSim, Fabric, FabricParams, FabricReport, FleetSim, MultiReport, PipelineJob, QueueKind,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::ops::Range;
use std::sync::Arc;

/// Configuration of a sharded serving fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Per-node serving parameters; [`ServeConfig::instances`] is the
    /// instance count *per node*. The admission knobs (budget, overbooking,
    /// policy, aging, energy budget) apply fleet-wide.
    pub serve: ServeConfig,
    /// Number of nodes, each with [`ServeConfig::instances`] instances and
    /// a private DRAM channel.
    pub nodes: usize,
    /// Inter-node fabric model every placement pays to reach its node.
    pub fabric: FabricParams,
    /// Synchronization granularity: the router admits and collects
    /// completions only at multiples of this cycle count. Larger epochs
    /// amortize cross-node synchronization (and parallel-stepping overhead)
    /// at the cost of coarser admission timing.
    pub epoch_cycles: u64,
    /// How many waiting requests (oldest first) the smallest-first pick
    /// scans per admission — bounds the per-admission cost on deep
    /// backlogs; aging still protects the queue head.
    pub admit_window: usize,
    /// Split the fleet into a prefill node pool and a decode node pool
    /// (each class spills to the other pool only when its own has no
    /// capacity). Requires at least two nodes.
    pub disaggregate: bool,
    /// Fraction of nodes in the prefill pool when disaggregating (rounded,
    /// clamped so both pools are non-empty).
    pub prefill_node_fraction: f64,
}

impl FleetConfig {
    /// A fleet of `nodes` × `instances_per_node` instances of `hw` with the
    /// single-node serving defaults, the default fabric, a 64Ki-cycle
    /// epoch, a 64-request admission window, no disaggregation — and the
    /// calendar event queue, which keeps per-node event handling O(1) at
    /// fleet event counts (it pops in exactly the heap's order, so this is
    /// timing-neutral).
    pub fn new(hw: sofa_hw::config::HwConfig, nodes: usize, instances_per_node: usize) -> Self {
        let mut serve = ServeConfig::new(hw, instances_per_node);
        serve.sim.queue_kind = QueueKind::Calendar;
        FleetConfig {
            serve,
            nodes,
            fabric: FabricParams::default(),
            epoch_cycles: 1 << 16,
            admit_window: 64,
            disaggregate: false,
            prefill_node_fraction: 0.5,
        }
    }

    /// Instances per node.
    pub fn instances_per_node(&self) -> usize {
        self.serve.instances
    }

    /// Total instances across the fleet.
    pub fn total_instances(&self) -> usize {
        self.nodes * self.serve.instances
    }

    /// Number of nodes in the prefill pool — 0 when not disaggregating,
    /// and 0 for un-validatable configs (fewer than two nodes cannot be
    /// split into two non-empty pools; [`FleetConfig::validate`] rejects
    /// them, but this method must stay total for configs inspected before
    /// validation, where `clamp(1, nodes - 1)` would panic or underflow).
    pub fn prefill_nodes(&self) -> usize {
        if !self.disaggregate || self.nodes < 2 {
            return 0;
        }
        let p = (self.nodes as f64 * self.prefill_node_fraction).round() as usize;
        p.clamp(1, self.nodes - 1)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        self.serve.validate()?;
        if self.nodes == 0 {
            return Err("nodes must be positive".into());
        }
        if self.epoch_cycles == 0 {
            return Err("epoch_cycles must be positive".into());
        }
        if self.admit_window == 0 {
            return Err("admit_window must be positive".into());
        }
        if self.disaggregate {
            if self.nodes < 2 {
                return Err("disaggregation needs at least two nodes".into());
            }
            if !(self.prefill_node_fraction > 0.0 && self.prefill_node_fraction < 1.0) {
                return Err("prefill_node_fraction must be in (0, 1)".into());
            }
        }
        Ok(())
    }
}

/// One distinct request shape, lowered once and shared by every request of
/// that shape.
#[derive(Debug)]
struct Shape {
    job: Arc<PipelineJob>,
    footprint: u64,
    energy_pj: f64,
    rerouted: bool,
    admit: bool,
    class: RequestClass,
}

/// Aggregated outcome of serving one trace across the fleet. Per-request
/// records are never materialized — latency and queueing distributions are
/// streaming sketches, everything else is counters.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Requests served to completion.
    pub served: u64,
    /// Requests the energy budget shed.
    pub shed: u64,
    /// Served requests the energy budget re-routed to a leaner point.
    pub rerouted: u64,
    /// Retry re-arrivals admitted back into the wait queue (shed requests
    /// whose backoff-and-degrade resubmission fit the budget). Zero without
    /// a retry policy.
    pub retried: u64,
    /// Served prefills.
    pub prefills: u64,
    /// Served decodes.
    pub decodes: u64,
    /// End-to-end latency distribution (arrival → completion, cycles).
    pub latency: QuantileSketch,
    /// Queueing-delay distribution (arrival → admission boundary, cycles;
    /// quantized to the epoch).
    pub queueing: QuantileSketch,
    /// Fleet makespan: the latest cycle any node reached.
    pub total_cycles: u64,
    /// Per-node simulation accounting.
    pub nodes: Vec<MultiReport>,
    /// Inter-node fabric accounting.
    pub fabric: FabricReport,
    /// Total projected energy of the admitted requests in picojoules (from
    /// the DSE energy model, summed at admission).
    pub energy_pj: f64,
    /// Requests placed on each node.
    pub requests_per_node: Vec<u64>,
    /// Highest concurrently-booked bytes observed on any single instance of
    /// each node.
    pub peak_inflight_bytes: Vec<u64>,
    /// The effective per-instance admission budget in bytes.
    pub budget_bytes: u64,
}

impl FleetReport {
    /// Latency at percentile `p` (nearest-rank via the streaming sketch).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]` or nothing was served.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        assert!(self.served > 0, "no requests were served");
        self.latency.percentile(p)
    }

    /// Median latency.
    pub fn p50(&self) -> u64 {
        self.latency_percentile(50.0)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> u64 {
        self.latency_percentile(95.0)
    }

    /// 99th-percentile (tail) latency.
    pub fn p99(&self) -> u64 {
        self.latency_percentile(99.0)
    }

    /// Mean cycles requests waited for an admission boundary with capacity.
    pub fn mean_queueing_delay(&self) -> f64 {
        self.queueing.mean()
    }

    /// Completed requests per million cycles of makespan.
    pub fn throughput_per_mcycle(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.served as f64 * 1.0e6 / self.total_cycles as f64
    }

    /// Mean projected energy per served request in picojoules.
    pub fn energy_pj_per_request(&self) -> f64 {
        if self.served == 0 {
            return 0.0;
        }
        self.energy_pj / self.served as f64
    }

    /// Mean bottleneck-stage busy fraction of node `n`'s instances over the
    /// makespan.
    pub fn node_utilization(&self, n: usize) -> f64 {
        let node = &self.nodes[n];
        let total: f64 = node
            .instances
            .iter()
            .map(|i| i.utilization(self.total_cycles))
            .sum();
        total / node.instances.len() as f64
    }

    /// Mean utilization across all nodes.
    pub fn mean_utilization(&self) -> f64 {
        (0..self.nodes.len())
            .map(|n| self.node_utilization(n))
            .sum::<f64>()
            / self.nodes.len() as f64
    }

    /// Adds the fleet summary to `reg` under the `fleet.` prefix.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry) {
        reg.inc("fleet.requests.total", self.served + self.shed);
        reg.inc("fleet.requests.served", self.served);
        reg.inc("fleet.requests.shed", self.shed);
        reg.inc("fleet.requests.rerouted", self.rerouted);
        // Only adaptive (retry-enabled) runs carry the counter, so existing
        // metric snapshots stay byte-stable.
        if self.retried > 0 {
            reg.inc("fleet.requests.retried", self.retried);
        }
        reg.inc("fleet.requests.prefill", self.prefills);
        reg.inc("fleet.requests.decode", self.decodes);
        reg.set_gauge("fleet.total_cycles", self.total_cycles as f64);
        reg.set_gauge("fleet.throughput_per_mcycle", self.throughput_per_mcycle());
        reg.set_gauge("fleet.mean_queueing_delay", self.mean_queueing_delay());
        reg.set_gauge("fleet.energy_pj_per_request", self.energy_pj_per_request());
        if self.served > 0 {
            reg.set_gauge("fleet.latency_p50", self.p50() as f64);
            reg.set_gauge("fleet.latency_p95", self.p95() as f64);
            reg.set_gauge("fleet.latency_p99", self.p99() as f64);
        }
        reg.set_gauge("fleet.fabric.bytes", self.fabric.total_bytes() as f64);
        reg.set_gauge(
            "fleet.fabric.transfers",
            self.fabric.total_transfers() as f64,
        );
        for n in 0..self.nodes.len() {
            reg.set_gauge(
                &format!("fleet.node{n}.requests"),
                self.requests_per_node[n] as f64,
            );
            reg.set_gauge(
                &format!("fleet.node{n}.utilization"),
                self.node_utilization(n),
            );
            reg.set_gauge(
                &format!("fleet.node{n}.link_utilization"),
                self.fabric.link_utilization(n, self.total_cycles),
            );
            reg.set_gauge(
                &format!("fleet.node{n}.peak_inflight_bytes"),
                self.peak_inflight_bytes[n] as f64,
            );
        }
    }

    /// A compact human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "served {}  shed {}  rerouted {}  makespan {} cyc  throughput {:.2} req/Mcyc\n",
            self.served,
            self.shed,
            self.rerouted,
            self.total_cycles,
            self.throughput_per_mcycle(),
        ));
        if self.retried > 0 {
            out.push_str(&format!(
                "retried {} (served after client backoff)\n",
                self.retried
            ));
        }
        if self.served > 0 {
            out.push_str(&format!(
                "latency p50 {}  p95 {}  p99 {}  mean queueing {:.0} cyc\n",
                self.p50(),
                self.p95(),
                self.p99(),
                self.mean_queueing_delay(),
            ));
        }
        for n in 0..self.nodes.len() {
            out.push_str(&format!(
                "node {n}: {} requests  util {:>5.1}%  link busy {:>4.1}%  peak buffer {}/{} B\n",
                self.requests_per_node[n],
                100.0 * self.node_utilization(n),
                100.0 * self.fabric.link_utilization(n, self.total_cycles),
                self.peak_inflight_bytes[n],
                self.budget_bytes,
            ));
        }
        out.push_str(&format!(
            "fabric: {:.1} MB moved in {} transfers  energy {:.1} nJ/req\n",
            self.fabric.total_bytes() as f64 / 1e6,
            self.fabric.total_transfers(),
            self.energy_pj_per_request() / 1e3,
        ));
        out
    }
}

/// Mutable routing state of one fleet run.
struct RouterState {
    /// Waiting (admitted-eligible) request indices, in arrival order.
    waiting: VecDeque<usize>,
    /// Booked bytes per instance slot (`node * instances_per_node + inst`).
    inflight_bytes: Vec<u64>,
    /// Admitted-but-incomplete requests per instance slot.
    inflight_reqs: Vec<usize>,
    /// Booked (admitted-but-incomplete) energy per instance slot, for the
    /// per-instance energy budget.
    inflight_energy: Vec<f64>,
    /// Peak booked bytes per instance slot.
    peak: Vec<u64>,
    /// Effective arrival cycle per request: the spec's arrival, or the
    /// re-arrival time once a shed request's retry is admitted.
    arrival: Vec<u64>,
    requests_per_node: Vec<u64>,
    latency: QuantileSketch,
    queueing: QuantileSketch,
    served: u64,
    energy_pj: f64,
}

/// The fleet-scale serving simulator.
#[derive(Debug)]
pub struct FleetServeSim {
    cfg: FleetConfig,
}

impl FleetServeSim {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`FleetConfig::validate`].
    pub fn new(cfg: FleetConfig) -> Self {
        cfg.validate().expect("invalid fleet config");
        FleetServeSim { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Serves `trace` across the fleet under `router`.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn run(&self, trace: &RequestTrace, router: OpRouter) -> FleetReport {
        self.run_inner(
            trace,
            router,
            &mut TraceRecorder::disabled(),
            &mut CacheStats::default(),
        )
    }

    /// [`FleetServeSim::run`] plus the lowering-cache effectiveness counters
    /// of the run. The report is bit-identical to [`FleetServeSim::run`]'s;
    /// the statistics ride outside it so cache-on and cache-off reports stay
    /// comparable bytes.
    pub fn run_with_cache_stats(
        &self,
        trace: &RequestTrace,
        router: OpRouter,
    ) -> (FleetReport, CacheStats) {
        let mut stats = CacheStats::default();
        let report = self.run_inner(trace, router, &mut TraceRecorder::disabled(), &mut stats);
        (report, stats)
    }

    /// [`FleetServeSim::run`] plus observability: per-node pipeline tracks
    /// (each node in its own pid window), router wait-queue and per-node
    /// fabric counters land in `obs`; the report's summary lands in
    /// `metrics`. Unlike the single-node scheduler, no per-request spans
    /// are emitted — at fleet request counts they would dwarf the trace.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn run_traced(
        &self,
        trace: &RequestTrace,
        router: OpRouter,
        obs: &mut TraceRecorder,
        metrics: &mut MetricsRegistry,
    ) -> FleetReport {
        let report = self.run_inner(trace, router, obs, &mut CacheStats::default());
        report.record_metrics(metrics);
        report
    }

    /// Lowers the trace shape-memoized: one [`ServeSim`] lowering per
    /// *distinct* `(request shape, routed operating point)` key (in
    /// parallel, first-occurrence order), an index into the shape table per
    /// request. The keys and results seed `cache`, so retry re-lowerings
    /// share work with the batch; with the cache off every request lowers
    /// independently (the cache-differential baseline).
    fn lower_shapes(
        &self,
        trace: &RequestTrace,
        router: OpRouter,
        cache: &mut LowerCache,
    ) -> (Vec<Shape>, Vec<usize>) {
        let mut csim = CycleSim::new(self.cfg.serve.hw);
        csim.params = self.cfg.serve.sim;
        let lowerer = ServeSim::new(self.cfg.serve.clone());
        let mut table: HashMap<ShapeKey, usize> = HashMap::new();
        let mut shape_of = Vec::with_capacity(trace.requests.len());
        let mut reps: Vec<usize> = Vec::new();
        for (i, spec) in trace.requests.iter().enumerate() {
            if cache.enabled() {
                let op = router.pick(&self.cfg.serve.op, spec);
                let idx = *table.entry(ShapeKey::new(spec, &op)).or_insert_with(|| {
                    reps.push(i);
                    reps.len() - 1
                });
                shape_of.push(idx);
            } else {
                reps.push(i);
                shape_of.push(reps.len() - 1);
            }
        }
        let rep_lowered = sofa_par::par_map_index(reps.len(), |k| {
            lowerer.lower_routed(&csim, &trace.requests[reps[k]], &router)
        });
        cache.record_shared_hits((trace.requests.len() - reps.len()) as u64);
        let shapes = rep_lowered
            .into_iter()
            .map(|low| {
                cache.insert_computed(
                    ShapeKey::new(&low.spec, &low.op),
                    PointLowering {
                        job: Arc::clone(&low.job),
                        footprint: low.footprint,
                        energy_pj: low.energy_pj,
                    },
                );
                Shape {
                    job: low.job,
                    footprint: low.footprint,
                    energy_pj: low.energy_pj,
                    rerouted: low.rerouted,
                    admit: low.admit,
                    class: low.class,
                }
            })
            .collect();
        (shapes, shape_of)
    }

    /// The node pool `class` placements try first.
    fn pool(&self, class: RequestClass) -> Range<usize> {
        if !self.cfg.disaggregate {
            return 0..self.cfg.nodes;
        }
        let p = self.cfg.prefill_nodes();
        match class {
            RequestClass::Prefill => 0..p,
            RequestClass::Decode => p..self.cfg.nodes,
        }
    }

    /// Position in `waiting` of the next request to try: the oldest starved
    /// request if one aged past the threshold, else the policy's pick over
    /// the first [`FleetConfig::admit_window`] waiters. The oldest is found
    /// by scanning the window's arrivals — pushes happen in arrival order
    /// today (retry re-arrivals merge time-ordered at ingestion), but aging
    /// must not silently starve if that invariant ever changes, and the
    /// window bounds the scan cost on million-request backlogs.
    fn pick(
        &self,
        now: u64,
        waiting: &VecDeque<usize>,
        arrival: &[u64],
        shapes: &[Shape],
        shape_of: &[usize],
    ) -> usize {
        let window = waiting.len().min(self.cfg.admit_window);
        let oldest = (0..window)
            .min_by_key(|&p| (arrival[waiting[p]], waiting[p]))
            .expect("waiting is non-empty");
        let oldest_wait = now.saturating_sub(arrival[waiting[oldest]]);
        if oldest_wait >= self.cfg.serve.aging_threshold {
            return oldest;
        }
        match self.cfg.serve.policy {
            AdmitPolicy::Fifo => oldest,
            AdmitPolicy::SmallestFirst => (0..window)
                .min_by_key(|&p| (shapes[shape_of[waiting[p]]].footprint, waiting[p]))
                .expect("waiting is non-empty"),
        }
    }

    /// Least-booked instance slot in `nodes` that fits `fp` more bytes (or
    /// is completely idle, so oversized requests always make progress).
    /// With [`ServeConfig::instance_energy_budget_pj`], slots without
    /// energy headroom for `energy_pj` are skipped too, and booked-bytes
    /// ties break toward the most energy headroom.
    fn place(
        &self,
        nodes: Range<usize>,
        fp: u64,
        energy_pj: f64,
        state: &RouterState,
    ) -> Option<(usize, usize)> {
        let ipn = self.cfg.serve.instances;
        let budget = self.cfg.serve.budget_bytes();
        let fits = |slot: usize| {
            state.inflight_reqs[slot] == 0 || state.inflight_bytes[slot] + fp <= budget
        };
        match self.cfg.serve.instance_energy_budget_pj {
            None => nodes
                .flat_map(|n| (0..ipn).map(move |i| (n, i)))
                .filter(|&(n, i)| fits(n * ipn + i))
                .min_by_key(|&(n, i)| (state.inflight_bytes[n * ipn + i], n, i)),
            Some(eb) => nodes
                .flat_map(|n| (0..ipn).map(move |i| (n, i)))
                .filter(|&(n, i)| {
                    let slot = n * ipn + i;
                    fits(slot)
                        && (state.inflight_reqs[slot] == 0
                            || state.inflight_energy[slot] + energy_pj <= eb)
                })
                .min_by(|&(an, ai), &(bn, bi)| {
                    let a = an * ipn + ai;
                    let b = bn * ipn + bi;
                    state.inflight_bytes[a]
                        .cmp(&state.inflight_bytes[b])
                        .then_with(|| state.inflight_energy[a].total_cmp(&state.inflight_energy[b]))
                        .then_with(|| a.cmp(&b))
                }),
        }
    }

    /// Admits as many waiting requests as fit, at boundary cycle `now`:
    /// pick (aged oldest or windowed smallest-first), place (least-booked
    /// with energy headroom in the class pool, spilling fleet-wide when the
    /// pool is full), book the fabric transfer, and hand the job to the
    /// node at its delivery cycle.
    #[allow(clippy::too_many_arguments)]
    fn try_admit(
        &self,
        now: u64,
        shapes: &[Shape],
        shape_of: &[usize],
        state: &mut RouterState,
        fabric: &mut Fabric,
        fleet: &mut FleetSim,
        obs: &mut TraceRecorder,
    ) {
        let ipn = self.cfg.serve.instances;
        while !state.waiting.is_empty() {
            let pos = self.pick(now, &state.waiting, &state.arrival, shapes, shape_of);
            let req = state.waiting[pos];
            let shape = &shapes[shape_of[req]];
            let fp = shape.footprint;
            let target = self
                .place(self.pool(shape.class), fp, shape.energy_pj, state)
                .or_else(|| {
                    self.cfg
                        .disaggregate
                        .then(|| self.place(0..self.cfg.nodes, fp, shape.energy_pj, state))
                        .flatten()
                });
            let Some((node, inst)) = target else {
                // The candidate fits nowhere; the next boundary retries.
                // Stopping (not skipping to a smaller request) keeps the
                // aged head from being overtaken forever.
                return;
            };
            state.waiting.remove(pos);
            let delivery = fabric.transfer(node, fp, now);
            fleet.submit(node, inst, req as u64, Arc::clone(&shape.job), delivery);
            let slot = node * ipn + inst;
            state.inflight_bytes[slot] += fp;
            state.inflight_reqs[slot] += 1;
            state.inflight_energy[slot] += shape.energy_pj;
            state.peak[slot] = state.peak[slot].max(state.inflight_bytes[slot]);
            state.requests_per_node[node] += 1;
            state.energy_pj += shape.energy_pj;
            state.queueing.record(now - state.arrival[req]);
            if obs.is_enabled() {
                obs.counter(
                    PID_FABRIC,
                    node as u64,
                    "fabric.bytes",
                    now,
                    &[("bytes", fabric.report().links[node].bytes as f64)],
                );
            }
        }
    }

    fn run_inner(
        &self,
        trace: &RequestTrace,
        router: OpRouter,
        obs: &mut TraceRecorder,
        cache_stats: &mut CacheStats,
    ) -> FleetReport {
        assert!(!trace.is_empty(), "cannot serve an empty trace");
        let s = &self.cfg.serve;
        let ipn = s.instances;
        let mut cache = LowerCache::new(s.lowering_cache);
        let (mut shapes, mut shape_of) = self.lower_shapes(trace, router, &mut cache);
        // Retry re-lowering happens serially, on demand, memoized per
        // (original shape, attempt) — the retried shapes append to the same
        // table and `shape_of` is repointed on a successful re-admission.
        let mut retry_csim = CycleSim::new(s.hw);
        retry_csim.params = s.sim;
        let retry_lowerer = ServeSim::new(s.clone());
        let mut retry_table: HashMap<(usize, u32), usize> = HashMap::new();
        let mut attempts: HashMap<usize, u32> = HashMap::new();
        // Shed requests awaiting their client backoff: (re-arrival, id).
        let mut retryq: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();

        let mut fleet = FleetSim::new(&s.hw, self.cfg.nodes, ipn, s.sim);
        let mut fabric = Fabric::new(self.cfg.fabric, self.cfg.nodes);
        if obs.is_enabled() {
            obs.process_name(PID_FLEET_ROUTER, "fleet-router");
            obs.thread_name(PID_FLEET_ROUTER, 0, "fleet.wait_queue");
            obs.process_name(PID_FABRIC, "fabric");
            for n in 0..self.cfg.nodes {
                obs.thread_name(PID_FABRIC, n as u64, &format!("fabric.node{n}.bytes"));
            }
            fleet.enable_tracing();
        }

        let mut state = RouterState {
            waiting: VecDeque::new(),
            inflight_bytes: vec![0; self.cfg.total_instances()],
            inflight_reqs: vec![0; self.cfg.total_instances()],
            inflight_energy: vec![0.0; self.cfg.total_instances()],
            peak: vec![0; self.cfg.total_instances()],
            arrival: trace.requests.iter().map(|r| r.arrival_cycle).collect(),
            requests_per_node: vec![0; self.cfg.nodes],
            latency: QuantileSketch::new(),
            queueing: QuantileSketch::new(),
            served: 0,
            energy_pj: 0.0,
        };
        let mut shed = 0u64;
        let mut rerouted = 0u64;
        let mut retried = 0u64;
        let mut prefills = 0u64;
        let mut decodes = 0u64;
        let mut next_arrival = 0usize;
        let epoch = self.cfg.epoch_cycles;
        let specs = &trace.requests;

        loop {
            let fleet_next = fleet.next_activity();
            let arr_next = specs.get(next_arrival).map(|r| r.arrival_cycle);
            let retry_next = retryq.peek().map(|Reverse((t, _))| *t);
            let next = match [fleet_next, arr_next, retry_next]
                .into_iter()
                .flatten()
                .min()
            {
                Some(t) => t,
                None => break,
            };
            // The first boundary strictly past the next pending activity —
            // idle stretches collapse into one epoch step.
            let boundary = (next / epoch + 1) * epoch;
            for c in fleet.run_until(boundary) {
                let req = c.request as usize;
                let slot = c.node * ipn + c.instance;
                state.inflight_bytes[slot] -= shapes[shape_of[req]].footprint;
                state.inflight_reqs[slot] -= 1;
                state.inflight_energy[slot] -= shapes[shape_of[req]].energy_pj;
                state.latency.record(c.time - state.arrival[req]);
                state.served += 1;
            }
            // Ingest originals and retry re-arrivals below the boundary in
            // time order (originals first on ties), so the wait queue stays
            // arrival-ordered.
            loop {
                let arr = (next_arrival < specs.len())
                    .then(|| specs[next_arrival].arrival_cycle)
                    .filter(|&t| t < boundary);
                let rtr = retryq
                    .peek()
                    .map(|Reverse((t, _))| *t)
                    .filter(|&t| t < boundary);
                let take_retry = match (arr, rtr) {
                    (None, None) => break,
                    (Some(a), Some(r)) => r < a,
                    (None, Some(_)) => true,
                    (Some(_), None) => false,
                };
                if take_retry {
                    let Reverse((t, req)) = retryq.pop().expect("retry was pending");
                    let policy = self.cfg.serve.retry.expect("retries require a policy");
                    let attempt = attempts.get(&req).copied().unwrap_or(0) + 1;
                    let key = (shape_of[req], attempt);
                    let idx = *retry_table.entry(key).or_insert_with(|| {
                        let (_, lowering) = retry_lowerer.retry_lowering(
                            &mut cache,
                            &retry_csim,
                            &router,
                            &specs[req],
                            &policy,
                            attempt,
                        );
                        let admit = !self
                            .cfg
                            .serve
                            .energy_budget_pj_per_req
                            .is_some_and(|b| lowering.energy_pj > b);
                        shapes.push(Shape {
                            job: lowering.job,
                            footprint: lowering.footprint,
                            energy_pj: lowering.energy_pj,
                            rerouted: true,
                            admit,
                            class: specs[req].class,
                        });
                        shapes.len() - 1
                    });
                    if shapes[idx].admit {
                        shape_of[req] = idx;
                        state.arrival[req] = t;
                        retried += 1;
                        rerouted += 1;
                        match shapes[idx].class {
                            RequestClass::Prefill => prefills += 1,
                            RequestClass::Decode => decodes += 1,
                        }
                        state.waiting.push_back(req);
                    } else if attempt < policy.max_retries {
                        attempts.insert(req, attempt);
                        retryq.push(Reverse((t + policy.backoff_cycles, req)));
                    } else {
                        shed += 1;
                    }
                } else {
                    let shape = &shapes[shape_of[next_arrival]];
                    if shape.admit {
                        state.waiting.push_back(next_arrival);
                        if shape.rerouted {
                            rerouted += 1;
                        }
                        match shape.class {
                            RequestClass::Prefill => prefills += 1,
                            RequestClass::Decode => decodes += 1,
                        }
                    } else if let Some(policy) = &self.cfg.serve.retry {
                        retryq.push(Reverse((
                            specs[next_arrival].arrival_cycle + policy.backoff_cycles,
                            next_arrival,
                        )));
                    } else {
                        shed += 1;
                    }
                    next_arrival += 1;
                }
            }
            self.try_admit(
                boundary,
                &shapes,
                &shape_of,
                &mut state,
                &mut fabric,
                &mut fleet,
                obs,
            );
            if obs.is_enabled() {
                obs.counter(
                    PID_FLEET_ROUTER,
                    0,
                    "fleet.wait_queue",
                    boundary,
                    &[("waiting", state.waiting.len() as f64)],
                );
            }
        }
        debug_assert!(state.waiting.is_empty(), "all eligible requests admitted");
        *cache_stats = cache.stats();
        obs.absorb(fleet.take_trace());

        let sim_report = fleet.report();
        let total_cycles = sim_report
            .nodes
            .iter()
            .map(|n| n.total_cycles)
            .max()
            .unwrap_or(0);
        let peak_inflight_bytes = (0..self.cfg.nodes)
            .map(|n| (0..ipn).map(|i| state.peak[n * ipn + i]).max().unwrap_or(0))
            .collect();
        FleetReport {
            served: state.served,
            shed,
            rerouted,
            retried,
            prefills,
            decodes,
            latency: state.latency,
            queueing: state.queueing,
            total_cycles,
            nodes: sim_report.nodes,
            fabric: fabric.report(),
            energy_pj: state.energy_pj,
            requests_per_node: state.requests_per_node,
            peak_inflight_bytes,
            budget_bytes: s.budget_bytes(),
        }
    }
}

/// How far the fleet's p95 latency drifts from a reference single-node
/// serving run of the same trace — the 1-node × 1-instance consistency
/// check the regression gate enforces.
pub fn p95_drift(fleet: &FleetReport, single: &ServeReport) -> f64 {
    let f = fleet.p95() as f64;
    let s = single.p95() as f64;
    (f - s).abs() / s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofa_hw::config::HwConfig;
    use sofa_model::trace::TraceConfig;

    fn small_trace(n: usize, rate: f64) -> RequestTrace {
        let mut tc = TraceConfig::new(n, rate, 42);
        tc.seq_len = 256;
        tc.hidden = 256;
        tc.heads = 4;
        tc.prefill_queries = 8;
        RequestTrace::generate(&tc)
    }

    fn small_cfg(nodes: usize, ipn: usize) -> FleetConfig {
        let mut cfg = FleetConfig::new(HwConfig::small(), nodes, ipn);
        cfg.epoch_cycles = 4096;
        cfg
    }

    #[test]
    fn fleet_serves_every_request() {
        let trace = small_trace(24, 100.0);
        let report = FleetServeSim::new(small_cfg(2, 2)).run(&trace, OpRouter::TraceNative);
        assert_eq!(report.served, 24);
        assert_eq!(report.shed, 0);
        assert_eq!(report.prefills + report.decodes, 24);
        assert_eq!(report.requests_per_node.iter().sum::<u64>(), 24);
        assert!(report.p50() <= report.p95());
        assert!(report.p95() <= report.p99());
        assert!(report.total_cycles > 0);
        // Every placement crossed the fabric.
        assert_eq!(report.fabric.total_transfers(), 24);
    }

    #[test]
    fn fleet_is_deterministic_across_runs_and_epochs_shift_timing_only() {
        let trace = small_trace(16, 100.0);
        let sim = FleetServeSim::new(small_cfg(2, 1));
        let a = sim.run(&trace, OpRouter::TraceNative);
        let b = sim.run(&trace, OpRouter::TraceNative);
        assert_eq!(a, b);
    }

    #[test]
    fn disaggregation_splits_classes_across_pools() {
        let trace = small_trace(24, 100.0);
        let mut cfg = small_cfg(2, 1);
        cfg.disaggregate = true;
        let sim = FleetServeSim::new(cfg);
        let report = sim.run(&trace, OpRouter::TraceNative);
        assert_eq!(report.served, 24);
        // Pool split: node 0 takes prefills, node 1 decodes. Spillover may
        // blur the split under pressure, but both nodes must see work.
        assert!(report.requests_per_node.iter().all(|&r| r > 0));
        assert_eq!(sim.config().prefill_nodes(), 1);
    }

    #[test]
    fn single_node_fleet_tracks_the_single_node_scheduler() {
        let trace = small_trace(12, 50.0);
        let mut cfg = small_cfg(1, 1);
        // Isolate the epoch/fabric overheads the fleet path adds.
        cfg.fabric.latency_cycles = 0;
        let single = ServeSim::new(cfg.serve.clone()).run(&trace);
        let fleet = FleetServeSim::new(cfg).run(&trace, OpRouter::TraceNative);
        assert_eq!(fleet.served as usize, single.records.len());
        assert!(
            p95_drift(&fleet, &single) < 0.15,
            "fleet p95 {} vs single {}",
            fleet.p95(),
            single.p95()
        );
    }

    #[test]
    fn traced_run_matches_untraced_and_validates() {
        let trace = small_trace(10, 100.0);
        let sim = FleetServeSim::new(small_cfg(2, 1));
        let plain = sim.run(&trace, OpRouter::TraceNative);
        let mut obs = TraceRecorder::enabled();
        let mut metrics = MetricsRegistry::new();
        let traced = sim.run_traced(&trace, OpRouter::TraceNative, &mut obs, &mut metrics);
        assert_eq!(plain, traced);
        let json = obs.to_chrome_json();
        let stats = sofa_obs::validate_chrome_trace(&json).expect("valid trace");
        assert!(stats.spans > 0);
        assert!(json.contains("fleet-router"));
        assert!(json.contains("fabric.node1.bytes"));
        assert!(json.contains("node1.dram-channel"));
        assert!(!metrics.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid fleet config")]
    fn zero_nodes_rejected() {
        FleetServeSim::new(FleetConfig {
            nodes: 0,
            ..small_cfg(1, 1)
        });
    }

    #[test]
    fn prefill_nodes_is_total_on_unvalidatable_configs() {
        // Regression: `clamp(1, nodes - 1)` panicked (min > max) for a
        // single-node disaggregated config inspected before validate(), and
        // underflowed at nodes == 0.
        for nodes in [0, 1] {
            let cfg = FleetConfig {
                nodes,
                disaggregate: true,
                ..small_cfg(2, 1)
            };
            assert!(cfg.validate().is_err(), "{nodes} nodes must not validate");
            assert_eq!(cfg.prefill_nodes(), 0);
        }
        // Valid configs still split into two non-empty pools.
        let mut cfg = small_cfg(4, 1);
        cfg.disaggregate = true;
        assert_eq!(cfg.prefill_nodes(), 2);
    }

    #[test]
    fn fleet_retry_readmits_shed_requests() {
        let trace = small_trace(24, 150.0);
        let mut cfg = small_cfg(2, 1);
        // Between a decode's projection and a prefill's at this shape, so
        // prefills shed on first submission.
        cfg.serve.energy_budget_pj_per_req = Some(4.0e6);
        let base = FleetServeSim::new(cfg.clone()).run(&trace, OpRouter::TraceNative);
        assert!(base.shed > 0, "prefills must shed without retry");
        assert_eq!(base.retried, 0);

        cfg.serve.retry = Some(crate::RetryPolicy {
            backoff_cycles: 20_000,
            max_retries: 2,
            keep_factor: 0.5,
        });
        let sim = FleetServeSim::new(cfg);
        let adaptive = sim.run(&trace, OpRouter::TraceNative);
        assert!(
            adaptive.shed <= base.shed,
            "retry cannot shed more: {} vs {}",
            adaptive.shed,
            base.shed
        );
        assert!(adaptive.retried > 0, "degraded resubmissions must land");
        assert_eq!(adaptive.served + adaptive.shed, trace.len() as u64);
        // Determinism with the retry path active.
        let again = sim.run(&trace, OpRouter::TraceNative);
        assert_eq!(adaptive, again);
    }

    #[test]
    fn instance_energy_budget_spreads_load() {
        let trace = small_trace(24, 300.0);
        let mut cfg = small_cfg(2, 1);
        // Roomy enough that everything is eventually served, tight enough
        // that placement must account energy headroom.
        cfg.serve.instance_energy_budget_pj = Some(5.0e7);
        let sim = FleetServeSim::new(cfg.clone());
        let report = sim.run(&trace, OpRouter::TraceNative);
        assert_eq!(report.served, 24, "budgeted placement must still serve all");
        assert!(report.requests_per_node.iter().all(|&r| r > 0));
        assert_eq!(report, sim.run(&trace, OpRouter::TraceNative));
    }
}
