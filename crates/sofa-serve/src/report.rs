//! Per-request serving outcomes and their aggregation.

use sofa_model::trace::RequestClass;
use sofa_obs::QuantileSketch;
use sofa_sim::MultiReport;

/// The lifecycle timestamps of one served request (all in cycles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// Trace id of the request.
    pub id: u64,
    /// Prefill or decode.
    pub class: RequestClass,
    /// Instance the request was placed on.
    pub instance: usize,
    /// When the request arrived at the scheduler.
    pub arrival: u64,
    /// When admission control placed it on its instance.
    pub admitted: u64,
    /// When its formal-compute stage produced the last output tile.
    pub completed: u64,
    /// Buffer bytes admission control accounted for the request.
    pub footprint_bytes: u64,
    /// Projected energy of the request (all layers of its operating point)
    /// in picojoules, from the DSE energy model.
    pub energy_pj: f64,
    /// Whether any mechanism (energy budget, decay, feedback, retry)
    /// re-routed the request to a leaner operating point before admission.
    pub rerouted: bool,
    /// Whether the decay threshold re-lowered the request while it waited.
    pub decayed: bool,
    /// Client re-submissions before this request was served (0 for
    /// first-attempt admissions).
    pub retries: u32,
}

/// A request the energy budget rejected: even the leanest available
/// operating point projected above the per-request ceiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedRecord {
    /// Trace id of the request.
    pub id: u64,
    /// Prefill or decode.
    pub class: RequestClass,
    /// When the request first arrived at the scheduler (the original
    /// submission, not the last retry).
    pub arrival: u64,
    /// The (over-budget) projected energy at the leanest point tried.
    pub energy_pj: f64,
    /// Client re-submissions attempted before the request was shed for good
    /// (0 when no retry policy is configured).
    pub retries: u32,
}

impl RequestRecord {
    /// End-to-end latency: arrival to completion.
    pub fn latency(&self) -> u64 {
        self.completed - self.arrival
    }

    /// Queueing delay: arrival to admission.
    pub fn queueing_delay(&self) -> u64 {
        self.admitted - self.arrival
    }

    /// Service time: admission to completion.
    pub fn service_time(&self) -> u64 {
        self.completed - self.admitted
    }
}

/// The outcome of serving one request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Per-request lifecycle records of the *served* requests, in trace
    /// order.
    pub records: Vec<RequestRecord>,
    /// Requests the energy budget shed instead of admitting.
    pub shed: Vec<ShedRecord>,
    /// The underlying multi-instance simulation accounting (per-instance
    /// stage activity, shared-DRAM statistics).
    pub multi: MultiReport,
    /// End-to-end makespan in cycles (first arrival to last event).
    pub total_cycles: u64,
    /// The effective per-instance admission budget in bytes
    /// (`admit_buffer_bytes × overbook`).
    pub budget_bytes: u64,
    /// Highest concurrently-admitted footprint observed per instance.
    pub peak_inflight_bytes: Vec<u64>,
    /// Projected energy admitted onto each instance in picojoules.
    pub energy_pj_per_instance: Vec<f64>,
    /// Retry re-arrivals the scheduler admitted back into the wait queue
    /// (shed requests whose backoff-and-degrade resubmission fit the
    /// budget). Zero without a retry policy.
    pub retried: u64,
    /// Streaming sketch of the end-to-end latencies, built once at report
    /// construction — percentile queries are a bucket walk, not a sort.
    pub latency: QuantileSketch,
}

impl ServeReport {
    /// The latency sketch of `records`: build it once when constructing a
    /// report instead of sorting per percentile call.
    pub fn sketch_latencies(records: &[RequestRecord]) -> QuantileSketch {
        QuantileSketch::collect(records.iter().map(|r| r.latency()))
    }

    /// Latency at percentile `p` (nearest-rank over all requests, answered
    /// by the streaming sketch: exact below 256 cycles, within 1/128
    /// relative error above).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]` or the report is empty.
    pub fn latency_percentile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range");
        assert!(!self.records.is_empty(), "no requests were served");
        self.latency.percentile(p)
    }

    /// Median latency.
    pub fn p50(&self) -> u64 {
        self.latency_percentile(50.0)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> u64 {
        self.latency_percentile(95.0)
    }

    /// 99th-percentile (tail) latency.
    pub fn p99(&self) -> u64 {
        self.latency_percentile(99.0)
    }

    /// Mean cycles requests waited for admission.
    pub fn mean_queueing_delay(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let total: u64 = self.records.iter().map(|r| r.queueing_delay()).sum();
        total as f64 / self.records.len() as f64
    }

    /// Completed requests per million cycles.
    pub fn throughput_per_mcycle(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.records.len() as f64 * 1.0e6 / self.total_cycles as f64
    }

    /// Bottleneck-stage busy fraction of instance `i` over the makespan.
    pub fn instance_utilization(&self, i: usize) -> f64 {
        self.multi.instances[i].utilization(self.total_cycles)
    }

    /// Mean utilization across instances.
    pub fn mean_utilization(&self) -> f64 {
        let n = self.multi.instances.len();
        (0..n).map(|i| self.instance_utilization(i)).sum::<f64>() / n as f64
    }

    /// Requests that ran on instance `i`.
    pub fn requests_on(&self, i: usize) -> usize {
        self.records.iter().filter(|r| r.instance == i).count()
    }

    /// Total projected energy of the served requests in picojoules.
    pub fn total_energy_pj(&self) -> f64 {
        self.records.iter().map(|r| r.energy_pj).sum()
    }

    /// Mean projected energy per served request in picojoules — the J/req
    /// axis the routing gate tracks.
    pub fn energy_pj_per_request(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.total_energy_pj() / self.records.len() as f64
    }

    /// Requests the energy budget re-routed to a leaner point.
    pub fn rerouted_requests(&self) -> usize {
        self.records.iter().filter(|r| r.rerouted).count()
    }

    /// Served requests the decay threshold re-lowered while they waited.
    pub fn decayed_requests(&self) -> usize {
        self.records.iter().filter(|r| r.decayed).count()
    }

    /// Served requests that went through at least one client retry.
    pub fn retried_served(&self) -> usize {
        self.records.iter().filter(|r| r.retries > 0).count()
    }

    /// Adds the report's summary statistics to `reg` under the `serve.`
    /// prefix: request counters (total/admitted/shed/rerouted and per
    /// class), latency and queueing-delay histograms, scheduler-level
    /// gauges, and per-instance `serve.inst{i}.*` gauges.
    pub fn record_metrics(&self, reg: &mut sofa_obs::MetricsRegistry) {
        // Decade-ish buckets spanning single-tile decodes to saturated
        // multi-layer prefills (cycles).
        const CYCLE_BOUNDS: [f64; 8] = [1e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7];
        reg.inc(
            "serve.requests.total",
            (self.records.len() + self.shed.len()) as u64,
        );
        reg.inc("serve.requests.admitted", self.records.len() as u64);
        reg.inc("serve.requests.shed", self.shed.len() as u64);
        reg.inc("serve.requests.rerouted", self.rerouted_requests() as u64);
        // Adaptive-controller counters appear only when the mechanisms are
        // active, so non-adaptive runs keep their exact metrics snapshot.
        if self.decayed_requests() > 0 {
            reg.inc("serve.requests.decayed", self.decayed_requests() as u64);
        }
        if self.retried > 0 {
            reg.inc("serve.requests.retried", self.retried);
        }
        for r in &self.records {
            let class = match r.class {
                RequestClass::Prefill => "serve.requests.prefill",
                RequestClass::Decode => "serve.requests.decode",
            };
            reg.inc(class, 1);
            reg.observe("serve.latency_cycles", &CYCLE_BOUNDS, r.latency() as f64);
            reg.observe(
                "serve.queueing_cycles",
                &CYCLE_BOUNDS,
                r.queueing_delay() as f64,
            );
        }
        reg.set_gauge("serve.total_cycles", self.total_cycles as f64);
        reg.set_gauge("serve.throughput_per_mcycle", self.throughput_per_mcycle());
        reg.set_gauge("serve.mean_queueing_delay", self.mean_queueing_delay());
        reg.set_gauge("serve.energy_pj_per_request", self.energy_pj_per_request());
        if !self.records.is_empty() {
            reg.set_gauge("serve.latency_p50", self.p50() as f64);
            reg.set_gauge("serve.latency_p95", self.p95() as f64);
            reg.set_gauge("serve.latency_p99", self.p99() as f64);
        }
        for i in 0..self.multi.instances.len() {
            reg.set_gauge(
                &format!("serve.inst{i}.requests"),
                self.requests_on(i) as f64,
            );
            reg.set_gauge(
                &format!("serve.inst{i}.utilization"),
                self.instance_utilization(i),
            );
            reg.set_gauge(
                &format!("serve.inst{i}.peak_inflight_bytes"),
                self.peak_inflight_bytes[i] as f64,
            );
            reg.set_gauge(
                &format!("serve.inst{i}.energy_pj"),
                self.energy_pj_per_instance[i],
            );
        }
    }

    /// A compact human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "requests {}  makespan {} cyc  throughput {:.2} req/Mcyc\n",
            self.records.len(),
            self.total_cycles,
            self.throughput_per_mcycle(),
        ));
        out.push_str(&format!(
            "latency p50 {}  p95 {}  p99 {}  mean queueing {:.0} cyc\n",
            self.p50(),
            self.p95(),
            self.p99(),
            self.mean_queueing_delay(),
        ));
        out.push_str(&format!(
            "energy {:.1} nJ total, {:.1} nJ/req  rerouted {}  shed {}\n",
            self.total_energy_pj() / 1e3,
            self.energy_pj_per_request() / 1e3,
            self.rerouted_requests(),
            self.shed.len(),
        ));
        if self.decayed_requests() > 0 || self.retried > 0 {
            out.push_str(&format!(
                "adaptive: decayed {}  retried {} ({} served after retry)\n",
                self.decayed_requests(),
                self.retried,
                self.retried_served(),
            ));
        }
        for (i, act) in self.multi.instances.iter().enumerate() {
            out.push_str(&format!(
                "instance {i}: {} requests  util {:>5.1}%  peak buffer {}/{} B\n",
                act.requests,
                100.0 * self.instance_utilization(i),
                self.peak_inflight_bytes[i],
                self.budget_bytes,
            ));
        }
        out.push_str(&format!(
            "dram: {:.1} MB moved, {:.1}% busy, mean queue wait {:.0} cyc, {} aged issues\n",
            self.multi.dram.total_bytes() as f64 / 1e6,
            100.0 * self.multi.dram.utilization(self.total_cycles),
            self.multi.dram_mean_queue_wait,
            self.multi.dram_aged_issues,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofa_sim::{DramActivity, InstanceActivity, StageActivity};

    fn record(id: u64, arrival: u64, admitted: u64, completed: u64) -> RequestRecord {
        RequestRecord {
            id,
            class: RequestClass::Decode,
            instance: 0,
            arrival,
            admitted,
            completed,
            footprint_bytes: 100,
            energy_pj: 500.0,
            rerouted: false,
            decayed: false,
            retries: 0,
        }
    }

    fn report(records: Vec<RequestRecord>) -> ServeReport {
        let n = records.len();
        let latency = ServeReport::sketch_latencies(&records);
        ServeReport {
            records,
            shed: Vec::new(),
            multi: MultiReport {
                total_cycles: 1000,
                instances: vec![InstanceActivity {
                    stages: [StageActivity {
                        busy: 500,
                        ..Default::default()
                    }; 4],
                    tiles: 4 * n,
                    requests: n,
                    buffer_occupancy: [0.0; 3],
                }],
                dram: DramActivity {
                    bytes_read: 1_000_000,
                    bytes_written: 100_000,
                    busy_cycles: 400,
                },
                dram_aged_issues: 0,
                dram_mean_queue_wait: 0.0,
            },
            total_cycles: 1000,
            budget_bytes: 1000,
            peak_inflight_bytes: vec![300],
            energy_pj_per_instance: vec![500.0 * n as f64],
            retried: 0,
            latency,
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        // Latencies 10, 20, ..., 100.
        let records = (0..10).map(|i| record(i, 0, 0, (i + 1) * 10)).collect();
        let r = report(records);
        assert_eq!(r.p50(), 50);
        assert_eq!(r.p95(), 100);
        assert_eq!(r.p99(), 100);
        assert_eq!(r.latency_percentile(10.0), 10);
        assert_eq!(r.latency_percentile(100.0), 100);
    }

    #[test]
    fn delays_and_throughput() {
        let r = report(vec![record(0, 0, 40, 100), record(1, 10, 20, 60)]);
        assert!((r.mean_queueing_delay() - 25.0).abs() < 1e-12);
        assert_eq!(r.records[0].service_time(), 60);
        assert_eq!(r.records[1].latency(), 50);
        assert!((r.throughput_per_mcycle() - 2000.0).abs() < 1e-9);
        assert!((r.instance_utilization(0) - 0.5).abs() < 1e-12);
        assert!((r.mean_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(r.requests_on(0), 2);
        assert!((r.total_energy_pj() - 1000.0).abs() < 1e-12);
        assert!((r.energy_pj_per_request() - 500.0).abs() < 1e-12);
        assert_eq!(r.rerouted_requests(), 0);
    }

    #[test]
    fn summary_mentions_the_key_numbers() {
        let r = report(vec![record(0, 0, 0, 100)]);
        let s = r.summary();
        assert!(s.contains("p50"));
        assert!(s.contains("instance 0"));
        assert!(s.contains("dram"));
        assert!(s.contains("nJ/req"));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn zero_percentile_panics() {
        let r = report(vec![record(0, 0, 0, 1)]);
        let _ = r.latency_percentile(0.0);
    }
}
