//! Serving a trace under DSE-derived operating points: single tuned points,
//! per-class Pareto routing, and the three-way study the `serve_routed`
//! experiment and CI gate consume.
//!
//! `sofa-dse`'s [`DseReport`] carries both a single tuned recommendation
//! ([`DseReport::tuned_operating_point`]) and the full Pareto front as a
//! routing table ([`sofa_dse::ParetoFront::route`]). This module makes the
//! report directly consumable by the serving layer:
//!
//! * [`ServeSim::run_tuned`] serves a trace with every request lowered at
//!   one fixed [`OperatingPoint`];
//! * [`ServeSim::run_routed`] routes each request through the front at
//!   admission time — latency-lean points for decodes, energy-lean points
//!   for prefills — with the energy budget re-routing or shedding
//!   over-budget requests;
//! * [`ServeSim::run_ab`] compares the paper-default point against the
//!   tuned point on the same trace;
//! * [`ServeSim::run_routed_study`] adds the routed deployment (and a
//!   budgeted variant of it) to that comparison — the (p95, J/req) evidence
//!   the regression gate checks;
//! * [`ServeSim::run_adaptive_study`] pits the closed-loop controller
//!   (decay + measured-state feedback + shed/retry + instance energy
//!   budgets, [`AdaptiveServeConfig`]) against static budgeted Pareto
//!   routing on the same overload trace — the evidence behind the
//!   `serve_adaptive` experiment and regression gate 7.

use crate::report::ServeReport;
use crate::scheduler::{FeedbackConfig, OpRouter, RetryPolicy, ServeSim};
use sofa_dse::DseReport;
use sofa_model::trace::{RequestClass, RequestTrace};
use sofa_model::OperatingPoint;

/// The two serving outcomes of one [`ServeSim::run_ab`] call, plus the tuned
/// operating point that produced the B side.
#[derive(Debug, Clone, PartialEq)]
pub struct DseServeComparison {
    /// The trace served at the paper-default operating point (same layer
    /// count as the tuned point, so the work is comparable).
    pub baseline: ServeReport,
    /// The trace served at the tuned operating point.
    pub tuned: ServeReport,
    /// The operating point every request of the tuned side was lowered at.
    pub tuned_op: OperatingPoint,
}

impl DseServeComparison {
    /// Tail-latency gain of the tuned configuration (`baseline p95 /
    /// tuned p95`; > 1 means the tuned point is faster).
    pub fn p95_gain(&self) -> f64 {
        self.baseline.p95() as f64 / self.tuned.p95().max(1) as f64
    }

    /// Makespan gain of the tuned configuration (> 1 means faster).
    pub fn makespan_gain(&self) -> f64 {
        self.baseline.total_cycles as f64 / self.tuned.total_cycles.max(1) as f64
    }

    /// Energy-per-request gain of the tuned configuration (> 1 means the
    /// tuned point spends less energy per served request).
    pub fn energy_gain(&self) -> f64 {
        self.baseline.energy_pj_per_request() / self.tuned.energy_pj_per_request().max(1e-12)
    }
}

/// The four-way routed serving study: the same trace at the paper-default
/// point, the single tuned point, Pareto-routed, and Pareto-routed under an
/// energy budget.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedServeStudy {
    /// Served at [`OperatingPoint::paper_default`] (the front's layer
    /// count).
    pub paper_default: ServeReport,
    /// Served at the single tuned recommendation.
    pub tuned: ServeReport,
    /// Per-request Pareto routing, no energy budget.
    pub routed: ServeReport,
    /// Per-request Pareto routing under [`RoutedServeStudy::budget_pj`].
    pub budgeted: ServeReport,
    /// The single tuned point the `tuned` report used.
    pub tuned_op: OperatingPoint,
    /// The point decodes route to.
    pub decode_op: OperatingPoint,
    /// The point prefills route to.
    pub prefill_op: OperatingPoint,
    /// The per-request energy ceiling of the budgeted run (¾ of the
    /// paper-default J/req).
    pub budget_pj: f64,
}

impl RoutedServeStudy {
    /// Whether the routed deployment strictly dominates the paper default
    /// on (p95 latency, J/req) — the acceptance bar of the `serve_routed`
    /// regression gate.
    pub fn routed_dominates_default(&self) -> bool {
        self.routed.p95() < self.paper_default.p95()
            && self.routed.energy_pj_per_request() < self.paper_default.energy_pj_per_request()
    }
}

/// The adaptive arm's controller knobs, bundled so the experiment, the
/// regression gate and the golden snapshot agree on one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveServeConfig {
    /// Waiting cycles past which a queued request decays to a leaner point
    /// ([`crate::ServeConfig::decay_threshold`]).
    pub decay_threshold: u64,
    /// Client backoff/degrade model for shed requests
    /// ([`crate::ServeConfig::retry`]).
    pub retry: RetryPolicy,
    /// Measured-state feedback parameters ([`OpRouter::Feedback`]).
    pub feedback: FeedbackConfig,
    /// Optional per-instance in-flight energy ceiling
    /// ([`crate::ServeConfig::instance_energy_budget_pj`]).
    pub instance_energy_budget_pj: Option<f64>,
}

impl AdaptiveServeConfig {
    /// A controller targeting `target_latency_cycles`: decay at half the
    /// target, default client retries, default feedback bars, no instance
    /// energy ceiling.
    pub fn targeting(target_latency_cycles: u64) -> Self {
        AdaptiveServeConfig {
            decay_threshold: (target_latency_cycles / 2).max(1),
            retry: RetryPolicy::default(),
            feedback: FeedbackConfig::new(target_latency_cycles),
            instance_energy_budget_pj: None,
        }
    }
}

/// The two arms of one [`ServeSim::run_adaptive_study`] call: the same
/// overload trace under static budgeted Pareto routing and under the
/// closed-loop adaptive controller.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveServeStudy {
    /// Static per-class Pareto routing under [`AdaptiveServeStudy::budget_pj`]
    /// — the strongest open-loop deployment (PR 5's budgeted routed serving).
    pub static_routed: ServeReport,
    /// The closed-loop controller on the identical trace, budget and front:
    /// decay, measured-state feedback, shed/retry and instance energy
    /// budgets all active.
    pub adaptive: ServeReport,
    /// The per-request energy ceiling both arms run under (¾ of the
    /// measured paper-default J/req, as in [`RoutedServeStudy`]).
    pub budget_pj: f64,
    /// The controller configuration of the adaptive arm.
    pub controller: AdaptiveServeConfig,
}

impl AdaptiveServeStudy {
    /// Whether the adaptive arm strictly dominates static routing on
    /// (p95 latency, shed count) while staying within 5% of its J/req —
    /// the acceptance bar of regression gate 7.
    pub fn adaptive_dominates_static(&self) -> bool {
        self.adaptive.p95() < self.static_routed.p95()
            && self.adaptive.shed.len() <= self.static_routed.shed.len()
            && self.adaptive.energy_pj_per_request()
                <= 1.05 * self.static_routed.energy_pj_per_request()
    }

    /// J/req of the adaptive arm relative to the static arm (< 1 means the
    /// controller also saves energy).
    pub fn energy_ratio(&self) -> f64 {
        self.adaptive.energy_pj_per_request()
            / self.static_routed.energy_pj_per_request().max(1e-12)
    }
}

impl ServeSim {
    /// Serves `trace` with every request lowered at `op`; everything else
    /// (HW, instances, admission policy, energy budget) comes from this
    /// scheduler's config.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn run_tuned(&self, trace: &RequestTrace, op: &OperatingPoint) -> ServeReport {
        self.run_with(trace, OpRouter::Fixed(op))
    }

    /// Serves `trace` with each request routed through `dse`'s Pareto front
    /// at admission time ([`sofa_dse::ParetoFront::route`]).
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn run_routed(&self, trace: &RequestTrace, dse: &DseReport) -> ServeReport {
        self.run_with(trace, OpRouter::Pareto(&dse.pareto))
    }

    /// Serves `trace` twice — at the paper-default point and at `dse`'s
    /// tuned point, both with the tuned point's layer count — and returns
    /// both reports for side-by-side comparison.
    pub fn run_ab(&self, trace: &RequestTrace, dse: &DseReport) -> DseServeComparison {
        let tuned_op = dse.tuned_operating_point();
        let default_op = OperatingPoint::paper_default(tuned_op.layers());
        DseServeComparison {
            baseline: self.run_tuned(trace, &default_op),
            tuned: self.run_tuned(trace, &tuned_op),
            tuned_op,
        }
    }

    /// The full routed study: paper default vs single tuned point vs Pareto
    /// routing vs budgeted Pareto routing, all on the same trace and layer
    /// count. The budgeted run re-uses this scheduler's configuration with
    /// the per-request energy ceiling set to ¾ of the measured
    /// paper-default J/req, demonstrating budget-driven re-routing/shedding.
    pub fn run_routed_study(&self, trace: &RequestTrace, dse: &DseReport) -> RoutedServeStudy {
        let tuned_op = dse.tuned_operating_point();
        let default_op = OperatingPoint::paper_default(tuned_op.layers());
        let paper_default = self.run_tuned(trace, &default_op);
        let tuned = self.run_tuned(trace, &tuned_op);
        let routed = self.run_routed(trace, dse);
        let budget_pj = 0.75 * paper_default.energy_pj_per_request();
        let mut budget_cfg = self.config().clone();
        budget_cfg.energy_budget_pj_per_req = Some(budget_pj);
        let budgeted = ServeSim::new(budget_cfg).run_routed(trace, dse);
        RoutedServeStudy {
            paper_default,
            tuned,
            routed,
            budgeted,
            tuned_op,
            decode_op: dse.route(&RequestClass::Decode),
            prefill_op: dse.route(&RequestClass::Prefill),
            budget_pj,
        }
    }

    /// The closed-loop study: the same overload trace under static budgeted
    /// Pareto routing and under the full adaptive controller, with the
    /// per-request energy ceiling set (as in
    /// [`ServeSim::run_routed_study`]) to ¾ of the measured paper-default
    /// J/req. The static arm runs this scheduler's configuration plus the
    /// budget; the adaptive arm additionally enables `controller`'s decay
    /// threshold, retry policy and instance energy ceiling, and routes
    /// through [`OpRouter::Feedback`]. Both arms are deterministic, so the
    /// study is too.
    pub fn run_adaptive_study(
        &self,
        trace: &RequestTrace,
        dse: &DseReport,
        controller: &AdaptiveServeConfig,
    ) -> AdaptiveServeStudy {
        let default_op = OperatingPoint::paper_default(dse.pareto.layers());
        let paper_default = self.run_tuned(trace, &default_op);
        let budget_pj = 0.75 * paper_default.energy_pj_per_request();

        let mut static_cfg = self.config().clone();
        static_cfg.energy_budget_pj_per_req = Some(budget_pj);
        let static_routed = ServeSim::new(static_cfg.clone()).run_routed(trace, dse);

        let mut adaptive_cfg = static_cfg;
        adaptive_cfg.decay_threshold = Some(controller.decay_threshold);
        adaptive_cfg.retry = Some(controller.retry);
        adaptive_cfg.instance_energy_budget_pj = controller.instance_energy_budget_pj;
        let adaptive = ServeSim::new(adaptive_cfg)
            .run_with(trace, OpRouter::Feedback(&dse.pareto, &controller.feedback));

        AdaptiveServeStudy {
            static_routed,
            adaptive,
            budget_pj,
            controller: controller.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServeConfig;
    use sofa_dse::{hardware_aware_search, DseSearchConfig, EvalConfig, HwAwareEvaluator};
    use sofa_hw::config::HwConfig;
    use sofa_model::trace::TraceConfig;

    fn trace(n: usize, seed: u64) -> RequestTrace {
        let mut tc = TraceConfig::new(n, 80.0, seed);
        tc.seq_len = 256;
        tc.hidden = 256;
        tc.heads = 4;
        tc.prefill_queries = 8;
        RequestTrace::generate(&tc)
    }

    fn smoke_dse(seed: u64) -> DseReport {
        let evaluator = HwAwareEvaluator::new(EvalConfig::tiny(seed), 2);
        hardware_aware_search(&evaluator, &DseSearchConfig::smoke(seed))
    }

    #[test]
    fn tuned_run_lowers_every_request_at_the_fixed_point() {
        let sim = ServeSim::new(ServeConfig::new(HwConfig::small(), 1));
        let t = trace(8, 3);
        let lean = OperatingPoint::single(0.1, 64);
        let tuned = sim.run_tuned(&t, &lean);
        assert_eq!(tuned.records.len(), 8);
        // A 10% keep ratio books smaller footprints than the trace's native
        // 25%-ish ratios under measured-footprint admission.
        let base = sim.run(&t);
        let sum = |r: &ServeReport| r.records.iter().map(|x| x.footprint_bytes).sum::<u64>();
        assert!(sum(&tuned) < sum(&base));
    }

    #[test]
    fn ab_comparison_is_deterministic_and_complete() {
        let sim = ServeSim::new(ServeConfig::new(HwConfig::small(), 2));
        let t = trace(10, 7);
        let dse = smoke_dse(7);
        let a = sim.run_ab(&t, &dse);
        let b = sim.run_ab(&t, &dse);
        assert_eq!(a, b);
        assert_eq!(a.baseline.records.len(), 10);
        assert_eq!(a.tuned.records.len(), 10);
        assert_eq!(a.tuned_op, dse.tuned_operating_point());
        assert!(a.p95_gain() > 0.0);
        assert!(a.makespan_gain() > 0.0);
        assert!(a.energy_gain() > 0.0);
    }

    #[test]
    fn routed_requests_follow_their_class_route() {
        let sim = ServeSim::new(ServeConfig::new(HwConfig::small(), 2));
        let t = trace(12, 11);
        let dse = smoke_dse(11);
        let routed = sim.run_routed(&t, &dse);
        assert_eq!(routed.records.len(), 12);
        // Same class → same operating point → same projected energy for
        // requests of identical shape.
        let decode_energy: Vec<u64> = routed
            .records
            .iter()
            .filter(|r| {
                r.class == RequestClass::Decode
                    && t.requests[r.id as usize].queries == t.requests[0].queries
            })
            .map(|r| r.energy_pj.to_bits())
            .collect();
        for w in decode_energy.windows(2) {
            assert_eq!(w[0], w[1], "same-shape decodes must project equally");
        }
    }

    #[test]
    fn routed_study_is_deterministic_and_self_consistent() {
        let sim = ServeSim::new(ServeConfig::new(HwConfig::small(), 2));
        let t = trace(10, 13);
        let dse = smoke_dse(13);
        let a = sim.run_routed_study(&t, &dse);
        let b = sim.run_routed_study(&t, &dse);
        assert_eq!(a, b);
        assert_eq!(a.tuned_op.layers(), a.decode_op.layers());
        assert!(a.budget_pj > 0.0);
        // The budgeted run serves or sheds every request.
        assert_eq!(
            a.budgeted.records.len() + a.budgeted.shed.len(),
            t.len(),
            "budgeted run must account for the whole trace"
        );
        // Routed J/req never exceeds the paper default's: both classes route
        // to points at or below the default's energy.
        assert!(
            a.routed.energy_pj_per_request()
                <= a.paper_default.energy_pj_per_request() * (1.0 + 1e-9)
        );
    }

    #[test]
    fn adaptive_study_is_deterministic_and_accounts_for_every_request() {
        let sim = ServeSim::new(ServeConfig::new(HwConfig::small(), 1));
        // An overload burst on one instance, so decay/feedback/retry engage.
        let mut tc = TraceConfig::new(24, 400.0, 17);
        tc.seq_len = 256;
        tc.hidden = 256;
        tc.heads = 4;
        tc.prefill_queries = 8;
        let t = RequestTrace::generate(&tc);
        let dse = smoke_dse(17);
        let ctl = AdaptiveServeConfig::targeting(200_000);
        let a = sim.run_adaptive_study(&t, &dse, &ctl);
        let b = sim.run_adaptive_study(&t, &dse, &ctl);
        assert_eq!(a, b);
        assert!(a.budget_pj > 0.0);
        assert!(a.energy_ratio() > 0.0);
        assert_eq!(
            a.static_routed.records.len() + a.static_routed.shed.len(),
            t.len()
        );
        assert_eq!(a.adaptive.records.len() + a.adaptive.shed.len(), t.len());
        assert!(
            a.adaptive.shed.len() <= a.static_routed.shed.len(),
            "client retries cannot shed more than immediate shedding"
        );
    }
}
