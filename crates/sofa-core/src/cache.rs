//! Deterministic lowering/evaluation caches.
//!
//! The serving and DSE hot paths repeatedly lower the same `(request shape,
//! operating point)` pairs: benchmark-derived traces draw from a handful of
//! shapes, adaptive decay/retry/feedback re-lowerings revisit the same lean
//! points, and the DSE weight profiles propose overlapping candidates. Every
//! such lowering is a *pure function* of its key — the pipeline, the cycle
//! simulator and the energy model take no input besides the shape, the
//! operating point and immutable configuration — so memoising it cannot
//! change any output bit. What memoisation *can* change is determinism
//! bookkeeping: a concurrently-filled cache would make hit/miss counters (and
//! any eval counters derived from them) depend on thread interleaving. The
//! types here therefore only support two access disciplines, both
//! deterministic at any `SOFA_THREADS`:
//!
//! 1. **Serial memoisation** via [`LoweringCache::get_or_insert_with`] from a
//!    single-threaded event loop, and
//! 2. **Dedup-before-parallel**: a serial pass over the work list computes
//!    keys and elects first-occurrence representatives, only the unique
//!    representatives are lowered (possibly in parallel, in index order), and
//!    the results are shared back by key. The cache is consulted and filled
//!    serially on either side of the parallel region.
//!
//! Hit/miss statistics are part of the deterministic contract: for a fixed
//! trace and configuration they are identical across runs and thread counts.

use std::collections::HashMap;
use std::hash::Hash;

use sofa_model::{OperatingPoint, RequestSpec};

/// Snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and store) a fresh value.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache; 0.0 when nothing was
    /// looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Merge another snapshot into this one.
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// A deterministic memo table for pure lowering/evaluation functions.
///
/// Generic over the key and value so the same machinery serves the
/// request-shape lowering cache in `sofa-serve` (value: lowered pipeline job +
/// footprint + energy) and the per-layer evaluation memo in `sofa-dse`
/// (value: loss/cycles/energy triple). Disabled caches behave as pass-through
/// computations that still count every lookup as a miss, so cache-on vs
/// cache-off runs differ only in wall time, never in output.
#[derive(Debug, Clone)]
pub struct LoweringCache<K, V> {
    map: HashMap<K, V>,
    stats: CacheStats,
    enabled: bool,
}

impl<K: Eq + Hash, V> LoweringCache<K, V> {
    /// An empty cache; `enabled = false` turns it into a counting
    /// pass-through.
    pub fn new(enabled: bool) -> Self {
        Self {
            map: HashMap::new(),
            stats: CacheStats::default(),
            enabled,
        }
    }

    /// Whether lookups may be answered from the memo table.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Effectiveness counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look up `key`, computing and storing the value on a miss. On a
    /// disabled cache the value is recomputed on every call (the slot is
    /// overwritten so the returned reference can borrow from the map).
    pub fn get_or_insert_with(&mut self, key: K, compute: impl FnOnce() -> V) -> &V {
        use std::collections::hash_map::Entry;
        if !self.enabled {
            self.stats.misses += 1;
            let value = compute();
            return match self.map.entry(key) {
                Entry::Occupied(mut slot) => {
                    slot.insert(value);
                    slot.into_mut()
                }
                Entry::Vacant(slot) => slot.insert(value),
            };
        }
        if self.map.contains_key(&key) {
            self.stats.hits += 1;
            return self.map.get(&key).expect("hit was just observed");
        }
        self.stats.misses += 1;
        let value = compute();
        match self.map.entry(key) {
            Entry::Vacant(slot) => slot.insert(value),
            Entry::Occupied(_) => unreachable!("key was absent above"),
        }
    }

    /// Look up `key` without computing; counts neither hit nor miss.
    pub fn peek(&self, key: &K) -> Option<&V> {
        if self.enabled {
            self.map.get(key)
        } else {
            None
        }
    }

    /// Store a precomputed value (dedup-before-parallel backfill). Counts as
    /// a miss — the value was computed outside the cache. No-op storage-wise
    /// when disabled.
    pub fn insert_computed(&mut self, key: K, value: V) {
        self.stats.misses += 1;
        if self.enabled {
            self.map.insert(key, value);
        }
    }

    /// Record `n` lookups answered by the dedup-before-parallel pass without
    /// reaching the memo table (requests that shared a representative).
    pub fn record_shared_hits(&mut self, n: u64) {
        self.stats.hits += n;
    }

    /// Store a value without touching the counters — for seeding a cache
    /// with results that were already accounted elsewhere (e.g. a reference
    /// point every run computes regardless of caching). No-op when disabled.
    pub fn preload(&mut self, key: K, value: V) {
        if self.enabled {
            self.map.insert(key, value);
        }
    }
}

/// Cache key identifying a request lowering: the request *shape* (class,
/// query count, geometry) plus the full per-layer operating point. The
/// per-layer keep ratios enter as IEEE-754 bit patterns so two points that
/// differ in any layer's keep — e.g. an attempt-shrunk retry keep — can never
/// collide, while bit-identical floats always do.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShapeKey {
    class: u8,
    queries: usize,
    seq_len: usize,
    hidden: usize,
    heads: usize,
    keeps: Vec<u64>,
    tiles: Vec<usize>,
}

impl ShapeKey {
    /// Build the key for lowering `spec` at `op`.
    pub fn new(spec: &RequestSpec, op: &OperatingPoint) -> Self {
        Self {
            class: spec.class as u8,
            queries: spec.queries,
            seq_len: spec.seq_len,
            hidden: spec.hidden,
            heads: spec.heads,
            keeps: op.keeps().iter().map(|k| k.to_bits()).collect(),
            tiles: op.tiles().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofa_model::RequestClass;

    fn spec(queries: usize) -> RequestSpec {
        RequestSpec {
            id: 0,
            arrival_cycle: 0,
            class: RequestClass::Decode,
            queries,
            seq_len: 512,
            hidden: 256,
            heads: 4,
            keep_ratio: 0.25,
        }
    }

    #[test]
    fn memoises_and_counts() {
        let mut cache: LoweringCache<u32, u64> = LoweringCache::new(true);
        let mut computed = 0u64;
        for key in [1u32, 2, 1, 1, 2, 3] {
            cache.get_or_insert_with(key, || {
                computed += 1;
                u64::from(key) * 10
            });
        }
        assert_eq!(computed, 3);
        assert_eq!(cache.stats(), CacheStats { hits: 3, misses: 3 });
        assert_eq!(cache.len(), 3);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_recomputes_every_lookup() {
        let mut cache: LoweringCache<u32, u64> = LoweringCache::new(false);
        let mut computed = 0u64;
        for _ in 0..4 {
            cache.get_or_insert_with(7, || {
                computed += 1;
                computed
            });
        }
        assert_eq!(computed, 4);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 4 });
        assert!(cache.peek(&7).is_none());
    }

    #[test]
    fn shared_hit_accounting_matches_dedup_pass() {
        let mut cache: LoweringCache<u32, u64> = LoweringCache::new(true);
        // Dedup-before-parallel: 5 requests, 2 unique keys.
        cache.insert_computed(1, 10);
        cache.insert_computed(2, 20);
        cache.record_shared_hits(3);
        assert_eq!(cache.stats(), CacheStats { hits: 3, misses: 2 });
    }

    #[test]
    fn same_shape_different_per_layer_keep_misses() {
        let s = spec(4);
        let a = OperatingPoint::new(vec![0.25, 0.25, 0.25, 0.25], vec![16, 16, 16, 16]).unwrap();
        let b = OperatingPoint::new(vec![0.25, 0.25, 0.2, 0.25], vec![16, 16, 16, 16]).unwrap();
        assert_ne!(ShapeKey::new(&s, &a), ShapeKey::new(&s, &b));
        // Retry-shrunk uniform keep must also be a distinct key.
        let shrunk = a.with_uniform_keep(a.mean_keep() * 0.5);
        assert_ne!(ShapeKey::new(&s, &a), ShapeKey::new(&s, &shrunk));
    }

    #[test]
    fn same_shape_different_tile_misses() {
        let s = spec(4);
        let a = OperatingPoint::uniform(0.25, 16, 4);
        let b = OperatingPoint::uniform(0.25, 32, 4);
        assert_ne!(ShapeKey::new(&s, &a), ShapeKey::new(&s, &b));
    }

    #[test]
    fn identical_inputs_collide() {
        let s = spec(4);
        let a = OperatingPoint::uniform(0.25, 16, 4);
        let b = OperatingPoint::uniform(0.25, 16, 4);
        assert_eq!(ShapeKey::new(&s, &a), ShapeKey::new(&s, &b));
        // Different query counts (decode vs prefill shapes) must miss.
        assert_ne!(ShapeKey::new(&spec(4), &a), ShapeKey::new(&spec(64), &a));
    }
}
