//! Sorted-Updating FlashAttention — SU-FA (paper §III-C, Fig. 10).
//!
//! The top-k stage already knows the (predicted) rank order of the selected
//! Q-K pairs. SU-FA exploits that: if the selected keys are processed in
//! *descending* predicted-score order, the running maximum of the online
//! softmax is simply the first score processed, so the per-tile maximum
//! refresh, the correction exponentiation and the accumulator rescaling of
//! FlashAttention all disappear from the steady state. The update for the
//! denominator collapses to `l ← l + exp(x − m)` — one exponentiation and one
//! addition (Eq. (2) of Fig. 10) instead of the exp + multiply + add of the
//! ascending order (Eq. (1)).
//!
//! Because the prediction is approximate (DLZS is a log-domain estimate), the
//! true maximum may show up later. The *max-ensuring* path of the hardware
//! (and of this implementation) detects that with a single comparison and
//! rescales the accumulated state — a rare event whose cost is also counted.

use crate::ops::{OpCounts, OpKind};
use crate::topk::TopKMask;
use sofa_tensor::Matrix;

/// Processing order of the selected keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuFaOrder {
    /// Highest predicted score first (the paper's default; cheapest updates).
    Descending,
    /// Lowest predicted score first (kept for the ablation of Fig. 10(a)).
    Ascending,
}

/// Statistics of one SU-FA execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SuFaStats {
    /// Number of times the max-ensuring circuit had to correct the running
    /// maximum (i.e. the prediction order was violated).
    pub max_corrections: u64,
    /// Number of selected Q-K pairs processed.
    pub pairs_processed: u64,
}

/// Computes sparse attention over the keys selected by `mask`, processing them
/// in the order dictated by `order`, and counts every primitive operation.
///
/// The result is numerically identical (up to floating-point rounding) to
/// [`sofa_tensor::attention::masked_attention`] with the same mask: the
/// max-ensuring path keeps the computation exact even when the predicted
/// order is wrong.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the mask.
pub fn sorted_updating_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    mask: &TopKMask,
    order: SuFaOrder,
    ops: &mut OpCounts,
) -> (Matrix, SuFaStats) {
    assert_eq!(q.cols(), k.cols(), "Q and K head dims must match");
    assert_eq!(k.rows(), v.rows(), "K and V lengths must match");
    assert_eq!(mask.queries(), q.rows(), "mask must cover every query");
    assert_eq!(mask.seq_len(), k.rows(), "mask must cover every key");

    let d = q.cols();
    let dv = v.cols();
    let scale = 1.0 / (d as f32).sqrt();
    let mut out = Matrix::zeros(q.rows(), dv);
    let mut stats = SuFaStats::default();

    for i in 0..q.rows() {
        let qrow = q.row(i);
        let selected = mask.row(i);
        if selected.is_empty() {
            continue;
        }
        // The mask is stored in descending predicted order; ascending simply
        // reverses the walk.
        let indices: Vec<usize> = match order {
            SuFaOrder::Descending => selected.to_vec(),
            SuFaOrder::Ascending => selected.iter().rev().copied().collect(),
        };

        let mut m = f32::NEG_INFINITY;
        let mut l = 0.0f32;
        let mut acc = vec![0.0f32; dv];
        let mut first = true;

        for &j in &indices {
            stats.pairs_processed += 1;
            // Score of the selected pair.
            let krow = k.row(j);
            let mut x = 0.0f32;
            for (a, b) in qrow.iter().zip(krow.iter()) {
                x += a * b;
            }
            x *= scale;
            ops.record(OpKind::Mul, d as u64);
            ops.record(OpKind::Add, d as u64);

            if first {
                // The scheduler guarantees the first processed score is the
                // predicted maximum; it becomes the reference for free.
                m = x;
                first = false;
                l = 1.0;
                ops.record(OpKind::Exp, 1); // exp(0) evaluated by the unit
                let vrow = v.row(j);
                for (a, &vv) in acc.iter_mut().zip(vrow.iter()) {
                    *a += vv;
                }
                ops.record(OpKind::Mul, dv as u64);
                ops.record(OpKind::Add, dv as u64);
                continue;
            }

            // Max-ensuring comparison (AP module, mode 1 at tile switch /
            // mode 0 otherwise — one comparison either way).
            ops.record(OpKind::Cmp, 1);
            if x > m {
                // Prediction order violated: rescale accumulated state.
                stats.max_corrections += 1;
                let corr = (m - x).exp();
                ops.record(OpKind::Exp, 1);
                l *= corr;
                ops.record(OpKind::Mul, 1);
                for a in acc.iter_mut() {
                    *a *= corr;
                }
                ops.record(OpKind::Mul, dv as u64);
                m = x;
            }

            match order {
                SuFaOrder::Descending => {
                    // Eq. (2): l ← l + exp(x − m). One exp, one add.
                    let p = (x - m).exp();
                    ops.record(OpKind::Exp, 1);
                    l += p;
                    ops.record(OpKind::Add, 1);
                    let vrow = v.row(j);
                    for (a, &vv) in acc.iter_mut().zip(vrow.iter()) {
                        *a += p * vv;
                    }
                    ops.record(OpKind::Mul, dv as u64);
                    ops.record(OpKind::Add, dv as u64);
                }
                SuFaOrder::Ascending => {
                    // Eq. (1): the new score is (predictedly) the new maximum,
                    // so the previous denominator and accumulator must be
                    // rescaled every step: one extra exp-multiply pair.
                    let p = (x - m).exp();
                    ops.record(OpKind::Exp, 1);
                    let corr = if x >= m { (m - x).exp() } else { 1.0 };
                    ops.record(OpKind::Exp, 1);
                    ops.record(OpKind::Mul, 1);
                    l = l * corr + p;
                    ops.record(OpKind::Add, 1);
                    let vrow = v.row(j);
                    for a in acc.iter_mut() {
                        *a *= corr;
                    }
                    ops.record(OpKind::Mul, dv as u64);
                    for (a, &vv) in acc.iter_mut().zip(vrow.iter()) {
                        *a += p * vv;
                    }
                    ops.record(OpKind::Mul, dv as u64);
                    ops.record(OpKind::Add, dv as u64);
                }
            }
        }

        // Final normalisation.
        let orow = out.row_mut(i);
        for (o, a) in orow.iter_mut().zip(acc.iter()) {
            *o = a / l;
        }
        ops.record(OpKind::Div, dv as u64);
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flash::{flash_attention, FlashConfig, FlashVersion};
    use crate::topk::{topk_exact, TopKMask};
    use sofa_model::{AttentionWorkload, ScoreDistribution};
    use sofa_tensor::attention::{attention_scores, masked_attention};
    use sofa_tensor::stats::max_abs_diff;

    fn workload(queries: usize, s: usize) -> (Matrix, Matrix, Matrix) {
        let w =
            AttentionWorkload::generate(&ScoreDistribution::llama_like(), queries, s, 32, 16, 17);
        (w.q.clone(), w.keys(), w.values())
    }

    fn exact_mask(q: &Matrix, k: &Matrix, keep: usize) -> TopKMask {
        let scores = attention_scores(q, k);
        let mut ops = OpCounts::new();
        topk_exact(&scores, keep, &mut ops)
    }

    #[test]
    fn sufa_matches_masked_dense_attention() {
        let (q, k, v) = workload(6, 96);
        let mask = exact_mask(&q, &k, 24);
        let want = masked_attention(&q, &k, &v, &mask.to_bool_rows());
        for order in [SuFaOrder::Descending, SuFaOrder::Ascending] {
            let mut ops = OpCounts::new();
            let (got, _) = sorted_updating_attention(&q, &k, &v, &mask, order, &mut ops);
            assert!(
                max_abs_diff(&got, &want) < 1e-3,
                "{order:?} output diverges from masked dense"
            );
        }
    }

    #[test]
    fn full_mask_sufa_matches_flash_attention() {
        let (q, k, v) = workload(4, 64);
        let mask = exact_mask(&q, &k, 64);
        let mut ops = OpCounts::new();
        let (got, _) =
            sorted_updating_attention(&q, &k, &v, &mask, SuFaOrder::Descending, &mut ops);
        let mut fops = OpCounts::new();
        let want = flash_attention(
            &q,
            &k,
            &v,
            &FlashConfig::new(16, FlashVersion::V2),
            &mut fops,
        );
        assert!(max_abs_diff(&got, &want) < 1e-3);
    }

    #[test]
    fn descending_needs_no_corrections_with_exact_order() {
        let (q, k, v) = workload(8, 128);
        let mask = exact_mask(&q, &k, 32);
        let mut ops = OpCounts::new();
        let (_, stats) =
            sorted_updating_attention(&q, &k, &v, &mask, SuFaOrder::Descending, &mut ops);
        assert_eq!(
            stats.max_corrections, 0,
            "exactly ordered masks never trigger the max-ensuring path"
        );
        assert_eq!(stats.pairs_processed, 8 * 32);
    }

    #[test]
    fn descending_is_cheaper_than_ascending() {
        // Fig. 10(a): the descending update needs one exp + one add, the
        // ascending update needs an extra exp and multiplication.
        let (q, k, v) = workload(8, 128);
        let mask = exact_mask(&q, &k, 32);
        let mut desc = OpCounts::new();
        let _ = sorted_updating_attention(&q, &k, &v, &mask, SuFaOrder::Descending, &mut desc);
        let mut asc = OpCounts::new();
        let _ = sorted_updating_attention(&q, &k, &v, &mask, SuFaOrder::Ascending, &mut asc);
        assert!(desc.exp < asc.exp);
        assert!(desc.normalized_complexity() < asc.normalized_complexity());
    }

    #[test]
    fn sufa_is_cheaper_than_fa2_on_the_same_sparse_budget() {
        // SU-FA over the selected 25% of keys must cost less than FA-2 over
        // the full row, and also less than FA-2 restricted to the same number
        // of keys (because it avoids per-tile max refresh work).
        let (q, k, v) = workload(8, 256);
        let keep = 64;
        let mask = exact_mask(&q, &k, keep);
        let mut sufa = OpCounts::new();
        let _ = sorted_updating_attention(&q, &k, &v, &mask, SuFaOrder::Descending, &mut sufa);

        let mut fa2_full = OpCounts::new();
        let _ = flash_attention(
            &q,
            &k,
            &v,
            &FlashConfig::new(16, FlashVersion::V2),
            &mut fa2_full,
        );
        assert!(sufa.normalized_complexity() < fa2_full.normalized_complexity());

        // FA-2 on a context truncated to `keep` keys (same MAC count).
        let kk = k.select_rows(&(0..keep).collect::<Vec<_>>());
        let vv = v.select_rows(&(0..keep).collect::<Vec<_>>());
        let mut fa2_small = OpCounts::new();
        let _ = flash_attention(
            &q,
            &kk,
            &vv,
            &FlashConfig::new(16, FlashVersion::V2),
            &mut fa2_small,
        );
        assert!(
            sufa.exp <= fa2_small.exp,
            "SU-FA exp count {} should not exceed FA-2-over-k {}",
            sufa.exp,
            fa2_small.exp
        );
    }

    #[test]
    fn noisy_prediction_order_triggers_corrections_but_stays_exact() {
        let (q, k, v) = workload(5, 80);
        // Build a deliberately mis-ordered mask: correct set, wrong order.
        let exact = exact_mask(&q, &k, 20);
        let shuffled: Vec<Vec<usize>> = exact
            .iter()
            .map(|r| {
                let mut v = r.to_vec();
                v.reverse(); // worst case: ascending true order
                v
            })
            .collect();
        let bad_mask = TopKMask::new(exact.seq_len(), shuffled);
        let want = masked_attention(&q, &k, &v, &bad_mask.to_bool_rows());
        let mut ops = OpCounts::new();
        let (got, stats) =
            sorted_updating_attention(&q, &k, &v, &bad_mask, SuFaOrder::Descending, &mut ops);
        assert!(stats.max_corrections > 0);
        assert!(
            max_abs_diff(&got, &want) < 1e-3,
            "max-ensure keeps it exact"
        );
    }

    #[test]
    fn empty_mask_rows_produce_zero_output() {
        let (q, k, v) = workload(2, 16);
        let mask = TopKMask::new(16, vec![vec![], vec![3, 1]]);
        let mut ops = OpCounts::new();
        let (out, _) =
            sorted_updating_attention(&q, &k, &v, &mask, SuFaOrder::Descending, &mut ops);
        assert!(out.row(0).iter().all(|&x| x == 0.0));
        assert!(out.row(1).iter().any(|&x| x != 0.0));
    }
}
