//! Accuracy-proxy evaluation.
//!
//! The paper's evaluation reports computation savings "with 0 %/1 %/2 %
//! accuracy loss". Without the original checkpoints and datasets we use a
//! proxy (documented in `DESIGN.md`): the loss of a sparse configuration is
//! `1 − mean row-wise cosine similarity` between the sparse attention output
//! and the dense reference. The proxy is monotone in the same direction as
//! task accuracy — keeping fewer Q-K pairs can only move the output further
//! from the dense result — so the "smallest k under a loss budget" search
//! behaves like the paper's per-dataset top-k tuning.

use crate::pipeline::{PipelineConfig, SofaPipeline};
use sofa_model::AttentionWorkload;
use sofa_tensor::stats::mean_row_cosine;
use sofa_tensor::Matrix;

/// Accuracy proxy: `1 − mean row cosine similarity` between a sparse output
/// and the dense reference. 0 means identical, larger means worse.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn proxy_loss(sparse_output: &Matrix, dense_output: &Matrix) -> f64 {
    (1.0 - mean_row_cosine(sparse_output, dense_output) as f64).max(0.0)
}

/// The outcome of evaluating one keep-ratio on one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyPoint {
    /// The keep ratio that was evaluated.
    pub keep_ratio: f64,
    /// The measured proxy loss.
    pub loss: f64,
    /// Fraction of attention-stage computation removed relative to dense
    /// (1 − keep_ratio, since the formal stage scales with kept pairs).
    pub attention_compute_saving: f64,
}

/// Evaluates the proxy loss of the SOFA pipeline at a specific keep ratio.
pub fn evaluate_keep_ratio(
    workload: &AttentionWorkload,
    dense_output: &Matrix,
    keep_ratio: f64,
    tile_size: usize,
) -> AccuracyPoint {
    let cfg = PipelineConfig::new(keep_ratio, tile_size).expect("keep_ratio validated by caller");
    let result = SofaPipeline::new(cfg).run(workload);
    AccuracyPoint {
        keep_ratio,
        loss: proxy_loss(&result.output, dense_output),
        attention_compute_saving: 1.0 - keep_ratio,
    }
}

/// Finds the smallest keep ratio (from the provided candidate grid, which must
/// be sorted ascending) whose proxy loss stays within `loss_budget`.
/// Falls back to the largest candidate if none satisfies the budget.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn smallest_keep_ratio_within_budget(
    workload: &AttentionWorkload,
    loss_budget: f64,
    candidates: &[f64],
    tile_size: usize,
) -> AccuracyPoint {
    assert!(!candidates.is_empty(), "candidate grid must not be empty");
    let dense = workload.dense_output();
    let mut last = None;
    for &keep in candidates {
        let point = evaluate_keep_ratio(workload, &dense, keep, tile_size);
        last = Some(point);
        if point.loss <= loss_budget {
            return point;
        }
    }
    last.expect("candidates is non-empty")
}

/// The default candidate grid of keep ratios used by the experiments
/// (5 % to 50 % in 5 % steps, then dense).
pub fn default_keep_grid() -> Vec<f64> {
    let mut v: Vec<f64> = (1..=10).map(|i| i as f64 * 0.05).collect();
    v.push(1.0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofa_model::ScoreDistribution;

    fn workload() -> AttentionWorkload {
        AttentionWorkload::generate(&ScoreDistribution::bert_like(), 8, 128, 48, 32, 77)
    }

    #[test]
    fn proxy_loss_zero_for_identical() {
        let m = Matrix::from_fn(4, 4, |i, j| (i + j) as f32 + 1.0);
        assert_eq!(proxy_loss(&m, &m), 0.0);
    }

    #[test]
    fn proxy_loss_decreases_with_keep_ratio() {
        let w = workload();
        let dense = w.dense_output();
        let low = evaluate_keep_ratio(&w, &dense, 0.05, 16);
        let high = evaluate_keep_ratio(&w, &dense, 0.5, 16);
        assert!(
            high.loss <= low.loss + 1e-6,
            "keeping more pairs must not hurt: {} vs {}",
            high.loss,
            low.loss
        );
        assert!(high.attention_compute_saving < low.attention_compute_saving);
    }

    #[test]
    fn full_keep_ratio_has_negligible_loss() {
        let w = workload();
        let dense = w.dense_output();
        let p = evaluate_keep_ratio(&w, &dense, 1.0, 16);
        assert!(
            p.loss < 1e-3,
            "keeping everything should match dense: {}",
            p.loss
        );
    }

    #[test]
    fn budget_search_returns_feasible_point_when_possible() {
        let w = workload();
        let point = smallest_keep_ratio_within_budget(&w, 0.02, &default_keep_grid(), 16);
        assert!(point.loss <= 0.02 || (point.keep_ratio - 1.0).abs() < 1e-9);
        assert!(point.keep_ratio > 0.0 && point.keep_ratio <= 1.0);
    }

    #[test]
    fn tighter_budget_keeps_more() {
        let w = workload();
        let strict = smallest_keep_ratio_within_budget(&w, 0.0005, &default_keep_grid(), 16);
        let loose = smallest_keep_ratio_within_budget(&w, 0.05, &default_keep_grid(), 16);
        assert!(strict.keep_ratio >= loose.keep_ratio);
    }

    #[test]
    fn default_grid_is_ascending_and_bounded() {
        let g = default_keep_grid();
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert!(*g.first().unwrap() > 0.0);
        assert_eq!(*g.last().unwrap(), 1.0);
    }

    #[test]
    #[should_panic(expected = "candidate grid")]
    fn empty_grid_panics() {
        let w = workload();
        let _ = smallest_keep_ratio_within_budget(&w, 0.01, &[], 16);
    }
}
