//! Per-tile selection statistics of a top-k mask.
//!
//! The cross-stage tiled pipeline partitions the context dimension `S` into
//! tiles of `Bc` keys. How the selected Q-K pairs distribute over those tiles
//! decides the per-tile load of the sorting / KV-generation / formal stages:
//! the Distributed Cluster Effect (paper §III-B) makes the distribution fairly
//! even, but real masks still show imbalance that a cycle-level simulator must
//! see. [`TileSelectionStats`] extracts exactly that — per-tile kept-pair
//! counts and per-tile distinct-key counts — from a real [`TopKMask`], and
//! offers an expected-value construction for when no mask is available.

use crate::topk::TopKMask;

/// Per-tile counts of selected Q-K pairs and distinct selected keys.
#[derive(Debug, Clone, PartialEq)]
pub struct TileSelectionStats {
    /// Cross-stage tile size `Bc` used to bucket the keys.
    pub tile_size: usize,
    /// Context length `S` the tiles partition.
    pub seq_len: usize,
    /// Number of query rows the mask covered.
    pub queries: usize,
    /// Selected Q-K pairs whose key falls in each tile (summed over queries).
    pub kept_per_tile: Vec<u64>,
    /// Distinct keys in each tile selected by at least one query — the keys
    /// the on-demand KV-generation stage must materialise for the tile.
    pub distinct_per_tile: Vec<u64>,
}

impl TileSelectionStats {
    /// Measures the per-tile selection counts of a real mask.
    ///
    /// # Panics
    ///
    /// Panics if `tile_size` is zero.
    pub fn from_mask(mask: &TopKMask, tile_size: usize) -> Self {
        assert!(tile_size > 0, "tile_size must be positive");
        let s = mask.seq_len();
        let n = s.div_ceil(tile_size).max(1);
        let mut kept = vec![0u64; n];
        let mut distinct_seen = vec![false; s];
        for row in mask.iter() {
            for &key in row {
                kept[key / tile_size] += 1;
                distinct_seen[key] = true;
            }
        }
        let mut distinct = vec![0u64; n];
        for (key, &seen) in distinct_seen.iter().enumerate() {
            if seen {
                distinct[key / tile_size] += 1;
            }
        }
        TileSelectionStats {
            tile_size,
            seq_len: s,
            queries: mask.queries(),
            kept_per_tile: kept,
            distinct_per_tile: distinct,
        }
    }

    /// Expected-value statistics for a uniform selection: `k` keys kept per
    /// query and a fraction `union_fraction` of all keys selected by at least
    /// one query, both spread proportionally to each tile's width. This is the
    /// fallback the hardware models use when no real mask is available.
    ///
    /// # Panics
    ///
    /// Panics if `tile_size` or `seq_len` is zero, or `union_fraction` is
    /// outside `[0, 1]`.
    pub fn uniform(
        queries: usize,
        seq_len: usize,
        tile_size: usize,
        k_per_query: usize,
        union_fraction: f64,
    ) -> Self {
        assert!(tile_size > 0 && seq_len > 0, "dimensions must be positive");
        assert!(
            (0.0..=1.0).contains(&union_fraction),
            "union_fraction out of range"
        );
        let n = seq_len.div_ceil(tile_size).max(1);
        let total_kept = (queries * k_per_query) as u64;
        // Ceil matches the analytic accelerator model's union-key count.
        let total_distinct = (union_fraction * seq_len as f64).ceil() as u64;
        let widths: Vec<f64> = (0..n)
            .map(|i| (seq_len - i * tile_size).min(tile_size) as f64)
            .collect();
        TileSelectionStats {
            tile_size,
            seq_len,
            queries,
            kept_per_tile: split_proportional(total_kept, &widths),
            distinct_per_tile: split_proportional(total_distinct, &widths),
        }
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.kept_per_tile.len()
    }

    /// Number of keys the tile at `index` covers (the last tile may be short).
    pub fn tile_width(&self, index: usize) -> usize {
        (self.seq_len - (index * self.tile_size).min(self.seq_len)).min(self.tile_size)
    }

    /// Total selected Q-K pairs across tiles.
    pub fn total_kept(&self) -> u64 {
        self.kept_per_tile.iter().sum()
    }

    /// Total distinct selected keys across tiles.
    pub fn total_distinct(&self) -> u64 {
        self.distinct_per_tile.iter().sum()
    }

    /// Load imbalance of the kept pairs: the busiest tile's share divided by
    /// the mean share (1.0 = perfectly balanced). The formal stage of a tiled
    /// pipeline runs at the pace of the busiest tile, so this is the factor a
    /// mean-value model underestimates the critical path by.
    pub fn imbalance(&self) -> f64 {
        let n = self.num_tiles() as f64;
        let total = self.total_kept() as f64;
        if total == 0.0 {
            return 1.0;
        }
        let max = *self.kept_per_tile.iter().max().expect("non-empty") as f64;
        max / (total / n)
    }

    /// Records this selection into `reg`: gauges `{prefix}.tiles`,
    /// `{prefix}.imbalance`, counters `{prefix}.kept` / `{prefix}.distinct`,
    /// and a `{prefix}.kept_per_tile` histogram (power-of-four buckets) —
    /// the Distributed Cluster Effect evidence, registry-facing.
    pub fn record_metrics(&self, reg: &mut sofa_obs::MetricsRegistry, prefix: &str) {
        reg.set_gauge(&format!("{prefix}.tiles"), self.num_tiles() as f64);
        reg.set_gauge(&format!("{prefix}.imbalance"), self.imbalance());
        reg.inc(&format!("{prefix}.kept"), self.total_kept());
        reg.inc(&format!("{prefix}.distinct"), self.total_distinct());
        const BOUNDS: [f64; 6] = [16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0];
        for &kept in &self.kept_per_tile {
            reg.observe(&format!("{prefix}.kept_per_tile"), &BOUNDS, kept as f64);
        }
    }
}

/// Splits an integer `total` into one part per weight, proportionally, with
/// cumulative rounding so the parts always sum to exactly `total`.
pub fn split_proportional(total: u64, weights: &[f64]) -> Vec<u64> {
    let sum: f64 = weights.iter().sum();
    if weights.is_empty() || sum <= 0.0 {
        return vec![0; weights.len()];
    }
    let mut out = Vec::with_capacity(weights.len());
    let mut cum_weight = 0.0;
    let mut assigned = 0u64;
    for &w in weights {
        cum_weight += w;
        let cum_target = ((total as f64) * cum_weight / sum).round() as u64;
        let cum_target = cum_target.min(total);
        out.push(cum_target - assigned);
        assigned = cum_target;
    }
    // Guard against floating-point shortfall on the last tile.
    if assigned < total {
        *out.last_mut().expect("non-empty") += total - assigned;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask() -> TopKMask {
        // S = 10, tiles of 4 → tiles [0..4), [4..8), [8..10).
        TopKMask::new(10, vec![vec![0, 1, 9], vec![1, 4, 9], vec![0, 1, 2, 3]])
    }

    #[test]
    fn record_metrics_exports_selection_evidence() {
        let s = TileSelectionStats::from_mask(&mask(), 4);
        let mut reg = sofa_obs::MetricsRegistry::new();
        s.record_metrics(&mut reg, "core.selection");
        assert_eq!(reg.gauge("core.selection.tiles"), Some(3.0));
        assert_eq!(reg.counter("core.selection.kept"), 10);
        assert_eq!(reg.counter("core.selection.distinct"), 6);
        assert!((reg.gauge("core.selection.imbalance").unwrap() - s.imbalance()).abs() < 1e-12);
        let h = reg.histogram("core.selection.kept_per_tile").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 10.0);
    }

    #[test]
    fn from_mask_counts_kept_and_distinct() {
        let s = TileSelectionStats::from_mask(&mask(), 4);
        assert_eq!(s.num_tiles(), 3);
        assert_eq!(s.kept_per_tile, vec![7, 1, 2]);
        // Distinct: {0,1,2,3} | {4} | {9}.
        assert_eq!(s.distinct_per_tile, vec![4, 1, 1]);
        assert_eq!(s.total_kept(), 10);
        assert_eq!(s.total_distinct(), 6);
        assert_eq!(s.queries, 3);
    }

    #[test]
    fn tile_widths_handle_partial_last_tile() {
        let s = TileSelectionStats::from_mask(&mask(), 4);
        assert_eq!(s.tile_width(0), 4);
        assert_eq!(s.tile_width(1), 4);
        assert_eq!(s.tile_width(2), 2);
    }

    #[test]
    fn tile_larger_than_sequence_collapses_to_one_tile() {
        let s = TileSelectionStats::from_mask(&mask(), 64);
        assert_eq!(s.num_tiles(), 1);
        assert_eq!(s.kept_per_tile, vec![10]);
        assert_eq!(s.tile_width(0), 10);
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mask_has_zero_counts_and_unit_imbalance() {
        let m = TopKMask::new(8, vec![vec![], vec![]]);
        let s = TileSelectionStats::from_mask(&m, 4);
        assert_eq!(s.total_kept(), 0);
        assert_eq!(s.total_distinct(), 0);
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    fn imbalance_of_clustered_mask_exceeds_one() {
        let s = TileSelectionStats::from_mask(&mask(), 4);
        // Tile 0 holds 7 of 10 pairs over 3 tiles → 7 / (10/3) = 2.1.
        assert!((s.imbalance() - 2.1).abs() < 1e-9);
    }

    #[test]
    fn uniform_preserves_totals() {
        let s = TileSelectionStats::uniform(16, 100, 16, 25, 0.8);
        assert_eq!(s.num_tiles(), 7);
        assert_eq!(s.total_kept(), 400);
        assert_eq!(s.total_distinct(), 80);
        // The short last tile (4 keys wide) gets proportionally less.
        assert!(s.kept_per_tile[6] < s.kept_per_tile[0]);
    }

    #[test]
    fn split_proportional_is_exact() {
        assert_eq!(split_proportional(10, &[1.0, 1.0, 1.0]), vec![3, 4, 3]);
        assert_eq!(split_proportional(0, &[1.0, 2.0]), vec![0, 0]);
        assert_eq!(split_proportional(7, &[]), Vec::<u64>::new());
        assert_eq!(split_proportional(5, &[0.0, 0.0]), vec![0, 0]);
        let parts = split_proportional(1_000_003, &[0.1, 3.0, 2.5, 0.01]);
        assert_eq!(parts.iter().sum::<u64>(), 1_000_003);
    }

    #[test]
    #[should_panic(expected = "tile_size")]
    fn zero_tile_size_panics() {
        let _ = TileSelectionStats::from_mask(&mask(), 0);
    }
}
