//! Design-space exploration of per-layer tile sizes and top-k (paper §III-D,
//! Algorithm 1).
//!
//! The per-layer tile size `Bc` and the keep ratio `k` trade accuracy against
//! sorting and SU-FA complexity: larger tiles improve selection accuracy but
//! cost more comparisons, smaller tiles multiply the number of tile
//! synchronisations. The search space is far too large for grid search
//! (`~10¹⁵` points for a 12-layer model), so the paper uses Bayesian
//! optimisation over the objective
//!
//! ```text
//! L(R) = L_en + α·L_cmp + β·L_exp
//! L_cmp = Σᵢ (Bcᵢ·k) / Σᵢ (S·k)         (sorting-cost penalty)
//! L_exp = Σᵢ (S / Bcᵢ)                   (tile-synchronisation penalty)
//! ```
//!
//! This module implements that loop with a Gaussian-process surrogate (RBF
//! kernel) and an expected-improvement acquisition function, plus a random
//! search baseline used by the ablation experiment.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use sofa_tensor::seeded_rng;

/// The discrete search space.
#[derive(Debug, Clone, PartialEq)]
pub struct DseSpace {
    /// Candidate tile sizes `Bc` (paper: 2..=32, step 2).
    pub tile_options: Vec<usize>,
    /// Candidate keep ratios (paper: 5 %..=50 %, step 5 %).
    pub keep_options: Vec<f64>,
    /// Number of Transformer layers (one tile size chosen per layer).
    pub layers: usize,
    /// Sequence length the penalties are computed against.
    pub seq_len: usize,
}

impl DseSpace {
    /// The paper's search space for a model with `layers` layers at `seq_len`.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0` or `seq_len == 0`.
    pub fn paper_space(layers: usize, seq_len: usize) -> Self {
        assert!(
            layers > 0 && seq_len > 0,
            "layers and seq_len must be positive"
        );
        DseSpace {
            tile_options: (1..=16).map(|i| i * 2).collect(),
            keep_options: (1..=10).map(|i| i as f64 * 0.05).collect(),
            layers,
            seq_len,
        }
    }

    /// Total number of configurations in the space.
    pub fn cardinality(&self) -> f64 {
        self.keep_options.len() as f64 * (self.tile_options.len() as f64).powi(self.layers as i32)
    }

    /// Samples one random candidate.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> DseCandidate {
        DseCandidate {
            keep_ratio: self.keep_options[rng.gen_range(0..self.keep_options.len())],
            tile_sizes: (0..self.layers)
                .map(|_| self.tile_options[rng.gen_range(0..self.tile_options.len())])
                .collect(),
        }
    }

    /// Encodes a candidate as a normalised feature vector for the surrogate.
    fn encode(&self, c: &DseCandidate) -> Vec<f64> {
        let kmax = *self
            .keep_options
            .last()
            .expect("keep options must not be empty");
        let bmax = *self
            .tile_options
            .last()
            .expect("tile options must not be empty") as f64;
        let mut v = Vec::with_capacity(1 + c.tile_sizes.len());
        v.push(c.keep_ratio / kmax);
        for &b in &c.tile_sizes {
            v.push(b as f64 / bmax);
        }
        v
    }
}

/// One point of the design space: a keep ratio plus per-layer tile sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct DseCandidate {
    /// Top-k keep ratio shared by all layers.
    pub keep_ratio: f64,
    /// Tile size `Bc` per layer.
    pub tile_sizes: Vec<usize>,
}

impl DseCandidate {
    /// Sorting-cost penalty `L_cmp = Σ (Bcᵢ·k) / Σ (S·k) = mean(Bcᵢ)/S`.
    pub fn penalty_cmp(&self, seq_len: usize) -> f64 {
        if self.tile_sizes.is_empty() {
            return 0.0;
        }
        let mean_bc: f64 =
            self.tile_sizes.iter().map(|&b| b as f64).sum::<f64>() / self.tile_sizes.len() as f64;
        mean_bc / seq_len as f64
    }

    /// Tile-synchronisation penalty `L_exp = Σ (S / Bcᵢ)`, normalised by the
    /// worst case (`layers · S / min_bc = layers · S / 2`) so it is
    /// commensurable with the loss term.
    pub fn penalty_exp(&self, seq_len: usize) -> f64 {
        if self.tile_sizes.is_empty() {
            return 0.0;
        }
        let raw: f64 = self
            .tile_sizes
            .iter()
            .map(|&b| seq_len as f64 / b.max(1) as f64)
            .sum();
        let worst = self.tile_sizes.len() as f64 * seq_len as f64 / 2.0;
        raw / worst
    }
}

/// Configuration of the Bayesian-optimisation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseConfig {
    /// Weight α of the sorting penalty.
    pub alpha: f64,
    /// Weight β of the tile-synchronisation penalty.
    pub beta: f64,
    /// Number of random initial samples before the surrogate is used.
    pub init_samples: usize,
    /// Total evaluation budget (including the initial samples).
    pub max_iters: usize,
    /// Number of random candidates scored by the acquisition function per
    /// iteration.
    pub acquisition_candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DseConfig {
    /// A small-budget default suitable for tests and examples.
    pub fn quick(seed: u64) -> Self {
        DseConfig {
            alpha: 0.3,
            beta: 0.3,
            init_samples: 6,
            max_iters: 24,
            acquisition_candidates: 64,
            seed,
        }
    }

    /// The per-model α/β settings reported in §V-B.1.
    pub fn paper_weights(model_name: &str, seed: u64) -> Self {
        let (alpha, beta) = match model_name {
            n if n.contains("BERT") => (0.24, 0.31),
            n if n.contains("ViT") || n.contains("PVT") => (0.20, 0.24),
            n if n.contains("GPT") => (0.40, 0.42),
            n if n.contains("Bloom") => (0.53, 0.56),
            n if n.contains("Llama") => (0.58, 0.63),
            _ => (0.3, 0.3),
        };
        DseConfig {
            alpha,
            beta,
            init_samples: 8,
            max_iters: 40,
            acquisition_candidates: 128,
            seed,
        }
    }
}

/// The result of a DSE run.
#[derive(Debug, Clone, PartialEq)]
pub struct DseResult {
    /// The best candidate found.
    pub best: DseCandidate,
    /// Objective value of the best candidate.
    pub best_objective: f64,
    /// Best-so-far objective after each evaluation (for convergence plots).
    pub history: Vec<f64>,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
}

/// Combines a measured accuracy-loss term with the analytic penalties.
pub fn objective(
    loss: f64,
    candidate: &DseCandidate,
    seq_len: usize,
    alpha: f64,
    beta: f64,
) -> f64 {
    loss + alpha * candidate.penalty_cmp(seq_len) + beta * candidate.penalty_exp(seq_len)
}

// ------------------------- Gaussian process surrogate -------------------------

/// A minimal Gaussian process with an RBF kernel used as the DSE surrogate.
#[derive(Debug, Clone)]
struct GaussianProcess {
    xs: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Vec<Vec<f64>>,
    length_scale: f64,
    noise: f64,
    y_mean: f64,
}

impl GaussianProcess {
    fn rbf(a: &[f64], b: &[f64], length_scale: f64) -> f64 {
        let d2: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
        (-d2 / (2.0 * length_scale * length_scale)).exp()
    }

    /// Fits the GP to observations `(xs, ys)`.
    fn fit(xs: Vec<Vec<f64>>, ys: &[f64], length_scale: f64, noise: f64) -> Self {
        let n = xs.len();
        let y_mean = ys.iter().sum::<f64>() / n.max(1) as f64;
        // K + σ²I
        let mut k = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                k[i][j] = Self::rbf(&xs[i], &xs[j], length_scale);
            }
            k[i][i] += noise;
        }
        let chol = cholesky(&k);
        let centered: Vec<f64> = ys.iter().map(|y| y - y_mean).collect();
        let alpha = cholesky_solve(&chol, &centered);
        GaussianProcess {
            xs,
            alpha,
            chol,
            length_scale,
            noise,
            y_mean,
        }
    }

    /// Posterior mean and standard deviation at `x`.
    fn predict(&self, x: &[f64]) -> (f64, f64) {
        let kx: Vec<f64> = self
            .xs
            .iter()
            .map(|xi| Self::rbf(xi, x, self.length_scale))
            .collect();
        let mean = self.y_mean
            + kx.iter()
                .zip(self.alpha.iter())
                .map(|(a, b)| a * b)
                .sum::<f64>();
        // var = k(x,x) + σ² − vᵀv with v = L⁻¹ kx
        let v = forward_substitute(&self.chol, &kx);
        let var = (1.0 + self.noise - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        (mean, var.sqrt())
    }
}

/// Cholesky decomposition of a symmetric positive-definite matrix.
fn cholesky(a: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i][j];
            for (lik, ljk) in l[i][..j].iter().zip(&l[j][..j]) {
                sum -= lik * ljk;
            }
            if i == j {
                l[i][j] = sum.max(1e-12).sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    l
}

/// Solves `L y = b` (forward substitution).
fn forward_substitute(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i][k] * y[k];
        }
        y[i] = sum / l[i][i];
    }
    y
}

/// Solves `(L Lᵀ) x = b` given the Cholesky factor `L`.
fn cholesky_solve(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let y = forward_substitute(l, b);
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k][i] * x[k];
        }
        x[i] = sum / l[i][i];
    }
    x
}

/// Standard normal PDF.
fn norm_pdf(z: f64) -> f64 {
    (-(z * z) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF (Abramowitz–Stegun approximation).
fn norm_cdf(z: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * z.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let cdf = 1.0 - norm_pdf(z.abs()) * poly;
    if z >= 0.0 {
        cdf
    } else {
        1.0 - cdf
    }
}

/// Expected improvement of a (minimisation) candidate with posterior
/// `(mean, std)` over the incumbent `best`.
fn expected_improvement(mean: f64, std: f64, best: f64) -> f64 {
    if std <= 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / std;
    (best - mean) * norm_cdf(z) + std * norm_pdf(z)
}

// ------------------------------- Search loops -------------------------------

/// Runs Bayesian optimisation over `space`, calling `loss_fn` to obtain the
/// accuracy-loss term of a candidate (the penalties are added internally).
pub fn bayesian_optimize<F>(space: &DseSpace, cfg: &DseConfig, mut loss_fn: F) -> DseResult
where
    F: FnMut(&DseCandidate) -> f64,
{
    let mut rng = seeded_rng(cfg.seed);
    let mut observed_x: Vec<Vec<f64>> = Vec::new();
    let mut observed_y: Vec<f64> = Vec::new();
    let mut candidates: Vec<DseCandidate> = Vec::new();
    let mut history = Vec::new();
    let mut best_idx = 0usize;

    let evaluate = |c: &DseCandidate, loss_fn: &mut F| {
        objective(loss_fn(c), c, space.seq_len, cfg.alpha, cfg.beta)
    };

    // Initial random design.
    let init = cfg.init_samples.max(2).min(cfg.max_iters.max(2));
    for _ in 0..init {
        let c = space.sample(&mut rng);
        let y = evaluate(&c, &mut loss_fn);
        observed_x.push(space.encode(&c));
        observed_y.push(y);
        candidates.push(c);
        if y < observed_y[best_idx] {
            best_idx = observed_y.len() - 1;
        }
        history.push(observed_y[best_idx]);
    }

    // Surrogate-guided iterations.
    while candidates.len() < cfg.max_iters {
        let gp = GaussianProcess::fit(observed_x.clone(), &observed_y, 0.35, 1e-4);
        let incumbent = observed_y[best_idx];
        let mut best_cand: Option<(f64, DseCandidate)> = None;
        for _ in 0..cfg.acquisition_candidates.max(8) {
            let c = space.sample(&mut rng);
            let (mean, std) = gp.predict(&space.encode(&c));
            let ei = expected_improvement(mean, std, incumbent);
            if best_cand.as_ref().is_none_or(|(b, _)| ei > *b) {
                best_cand = Some((ei, c));
            }
        }
        let (_, chosen) = best_cand.expect("acquisition candidates > 0");
        let y = evaluate(&chosen, &mut loss_fn);
        observed_x.push(space.encode(&chosen));
        observed_y.push(y);
        candidates.push(chosen);
        if y < observed_y[best_idx] {
            best_idx = observed_y.len() - 1;
        }
        history.push(observed_y[best_idx]);
    }

    DseResult {
        best: candidates[best_idx].clone(),
        best_objective: observed_y[best_idx],
        history,
        evaluations: candidates.len(),
    }
}

/// Pure random search with the same budget, used as the DSE ablation baseline.
pub fn random_search<F>(space: &DseSpace, cfg: &DseConfig, mut loss_fn: F) -> DseResult
where
    F: FnMut(&DseCandidate) -> f64,
{
    let mut rng = seeded_rng(cfg.seed);
    let mut best: Option<(f64, DseCandidate)> = None;
    let mut history = Vec::new();
    for _ in 0..cfg.max_iters {
        let c = space.sample(&mut rng);
        let y = objective(loss_fn(&c), &c, space.seq_len, cfg.alpha, cfg.beta);
        if best.as_ref().is_none_or(|(b, _)| y < *b) {
            best = Some((y, c));
        }
        history.push(best.as_ref().expect("just set").0);
    }
    let (best_objective, best) = best.expect("max_iters > 0");
    DseResult {
        best,
        best_objective,
        history,
        evaluations: cfg.max_iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic loss surface: prefers keep ratios around 0.25 and tile
    /// sizes around 16.
    fn synthetic_loss(c: &DseCandidate) -> f64 {
        let k_term = (c.keep_ratio - 0.25).powi(2) * 4.0;
        let b_term: f64 = c
            .tile_sizes
            .iter()
            .map(|&b| ((b as f64 - 16.0) / 32.0).powi(2))
            .sum::<f64>()
            / c.tile_sizes.len() as f64;
        k_term + b_term
    }

    #[test]
    fn space_cardinality_is_huge_for_deep_models() {
        let space = DseSpace::paper_space(12, 512);
        assert!(space.cardinality() > 1e14, "got {}", space.cardinality());
    }

    #[test]
    fn penalties_behave_monotonically() {
        let small = DseCandidate {
            keep_ratio: 0.2,
            tile_sizes: vec![2, 2],
        };
        let large = DseCandidate {
            keep_ratio: 0.2,
            tile_sizes: vec![32, 32],
        };
        // Larger tiles → more sorting cost, fewer synchronisations.
        assert!(large.penalty_cmp(512) > small.penalty_cmp(512));
        assert!(large.penalty_exp(512) < small.penalty_exp(512));
        assert!(small.penalty_exp(512) <= 1.0 + 1e-12);
    }

    #[test]
    fn objective_combines_terms() {
        let c = DseCandidate {
            keep_ratio: 0.2,
            tile_sizes: vec![16],
        };
        let base = objective(0.1, &c, 512, 0.0, 0.0);
        assert!((base - 0.1).abs() < 1e-12);
        let with_pen = objective(0.1, &c, 512, 1.0, 1.0);
        assert!(with_pen > base);
    }

    #[test]
    fn gp_interpolates_observations() {
        let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
        let ys = [1.0, 0.0, 1.0];
        let gp = GaussianProcess::fit(xs, &ys, 0.3, 1e-6);
        let (m, s) = gp.predict(&[0.5]);
        assert!((m - 0.0).abs() < 0.05, "mean at observed point: {m}");
        assert!(
            s < 0.1,
            "uncertainty at observed point should be small: {s}"
        );
        let (_, s_far) = gp.predict(&[2.5]);
        assert!(s_far > s, "uncertainty should grow away from data");
    }

    #[test]
    fn cdf_and_pdf_sanity() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!(norm_cdf(3.0) > 0.99);
        assert!(norm_cdf(-3.0) < 0.01);
        assert!(norm_pdf(0.0) > norm_pdf(1.0));
    }

    #[test]
    fn expected_improvement_prefers_low_mean_and_high_std() {
        let a = expected_improvement(0.5, 0.1, 1.0);
        let b = expected_improvement(0.9, 0.1, 1.0);
        assert!(a > b);
        let c = expected_improvement(1.0, 0.5, 1.0);
        let d = expected_improvement(1.0, 0.01, 1.0);
        assert!(c > d);
    }

    #[test]
    fn bayesian_optimisation_finds_good_configurations() {
        let space = DseSpace::paper_space(4, 512);
        let cfg = DseConfig::quick(3);
        let result = bayesian_optimize(&space, &cfg, synthetic_loss);
        assert_eq!(result.evaluations, cfg.max_iters);
        assert_eq!(result.history.len(), cfg.max_iters);
        // History is monotonically non-increasing (best-so-far).
        assert!(result.history.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        // The optimum keep ratio is 0.25; BO should land near it.
        assert!(
            (result.best.keep_ratio - 0.25).abs() <= 0.1,
            "best keep ratio {} too far from optimum",
            result.best.keep_ratio
        );
    }

    #[test]
    fn bayesian_beats_or_matches_random_search_on_average() {
        let space = DseSpace::paper_space(6, 1024);
        let mut bo_wins = 0;
        for seed in 0..5u64 {
            let cfg = DseConfig {
                max_iters: 20,
                ..DseConfig::quick(seed)
            };
            let bo = bayesian_optimize(&space, &cfg, synthetic_loss);
            let rs = random_search(&space, &cfg, synthetic_loss);
            if bo.best_objective <= rs.best_objective + 1e-9 {
                bo_wins += 1;
            }
        }
        assert!(bo_wins >= 3, "BO should win most seeds, won {bo_wins}/5");
    }

    #[test]
    fn paper_weights_are_model_specific() {
        let bert = DseConfig::paper_weights("BERT-Base", 1);
        let llama = DseConfig::paper_weights("Llama-7B", 1);
        assert!(llama.alpha > bert.alpha);
        assert!(llama.beta > bert.beta);
        let unknown = DseConfig::paper_weights("Mystery", 1);
        assert!((unknown.alpha - 0.3).abs() < 1e-12);
    }

    #[test]
    fn random_search_history_is_monotone() {
        let space = DseSpace::paper_space(2, 256);
        let cfg = DseConfig::quick(9);
        let r = random_search(&space, &cfg, synthetic_loss);
        assert!(r.history.windows(2).all(|w| w[1] <= w[0] + 1e-12));
        assert_eq!(r.evaluations, cfg.max_iters);
    }
}
