//! Operation accounting with the arithmetic-complexity model.
//!
//! The paper normalises the cost of heterogeneous operations (multiplication,
//! exponentiation, comparison, shift, …) using the arithmetic complexity model
//! of Brent & Zimmermann so that "28 % lower computation complexity" is a
//! well-defined statement. Every algorithm in this crate threads an
//! [`OpCounts`] through its inner loops; the ablation experiments (paper
//! Fig. 17) are regenerated directly from these counters.

/// Kinds of primitive operations tracked by the complexity model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Fixed/floating point multiplication.
    Mul,
    /// Addition / subtraction.
    Add,
    /// Exponentiation (`exp`).
    Exp,
    /// Comparison (max/sort compare-exchange).
    Cmp,
    /// Bit shift (the DLZS substitute for multiplication).
    Shift,
    /// Division (final softmax normalisation).
    Div,
    /// Leading-zero encode of one operand.
    LzEncode,
}

impl OpKind {
    /// All operation kinds, in a stable order.
    pub const ALL: [OpKind; 7] = [
        OpKind::Mul,
        OpKind::Add,
        OpKind::Exp,
        OpKind::Cmp,
        OpKind::Shift,
        OpKind::Div,
        OpKind::LzEncode,
    ];

    /// Relative cost of one operation under the arithmetic-complexity model,
    /// normalised so a 16-bit addition costs 1.
    ///
    /// Multiplication of `n`-bit operands costs O(n²/16) additions in the
    /// schoolbook model; exponentiation is evaluated by a piecewise table +
    /// multiply (the paper's hardware uses a LUT-based unit) and costs several
    /// multiplications; shifts and comparisons cost about one addition;
    /// division costs roughly a multiplication plus iterations.
    pub fn weight(self) -> f64 {
        match self {
            OpKind::Mul => 16.0,
            OpKind::Add => 1.0,
            OpKind::Exp => 40.0,
            OpKind::Cmp => 1.0,
            OpKind::Shift => 0.5,
            OpKind::Div => 20.0,
            OpKind::LzEncode => 1.0,
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpKind::Mul => "mul",
            OpKind::Add => "add",
            OpKind::Exp => "exp",
            OpKind::Cmp => "cmp",
            OpKind::Shift => "shift",
            OpKind::Div => "div",
            OpKind::LzEncode => "lz-encode",
        };
        write!(f, "{s}")
    }
}

/// A tally of primitive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Multiplications.
    pub mul: u64,
    /// Additions / subtractions.
    pub add: u64,
    /// Exponentiations.
    pub exp: u64,
    /// Comparisons.
    pub cmp: u64,
    /// Shifts.
    pub shift: u64,
    /// Divisions.
    pub div: u64,
    /// Leading-zero encodes.
    pub lz_encode: u64,
}

impl OpCounts {
    /// An empty tally.
    pub fn new() -> Self {
        OpCounts::default()
    }

    /// Records `n` operations of the given kind.
    pub fn record(&mut self, kind: OpKind, n: u64) {
        match kind {
            OpKind::Mul => self.mul += n,
            OpKind::Add => self.add += n,
            OpKind::Exp => self.exp += n,
            OpKind::Cmp => self.cmp += n,
            OpKind::Shift => self.shift += n,
            OpKind::Div => self.div += n,
            OpKind::LzEncode => self.lz_encode += n,
        }
    }

    /// Returns the raw count of one kind.
    pub fn count(&self, kind: OpKind) -> u64 {
        match kind {
            OpKind::Mul => self.mul,
            OpKind::Add => self.add,
            OpKind::Exp => self.exp,
            OpKind::Cmp => self.cmp,
            OpKind::Shift => self.shift,
            OpKind::Div => self.div,
            OpKind::LzEncode => self.lz_encode,
        }
    }

    /// Total number of primitive operations regardless of kind.
    pub fn total_ops(&self) -> u64 {
        OpKind::ALL.iter().map(|&k| self.count(k)).sum()
    }

    /// Normalised complexity under the arithmetic-complexity model
    /// (weighted sum of counts).
    pub fn normalized_complexity(&self) -> f64 {
        OpKind::ALL
            .iter()
            .map(|&k| self.count(k) as f64 * k.weight())
            .sum()
    }

    /// Element-wise sum of two tallies.
    pub fn combine(&self, other: &OpCounts) -> OpCounts {
        let mut out = *self;
        for k in OpKind::ALL {
            out.record(k, other.count(k));
        }
        out
    }

    /// Element-wise scaling of a tally (used when one representative tile is
    /// simulated and the total is extrapolated).
    pub fn scaled(&self, factor: u64) -> OpCounts {
        let mut out = OpCounts::new();
        for k in OpKind::ALL {
            out.record(k, self.count(k) * factor);
        }
        out
    }

    /// Adds this tally to `reg` as counters `{prefix}.{kind}` (snake_case,
    /// e.g. `core.ops.mul`, `core.ops.lz_encode`) plus `{prefix}.total` —
    /// the registry-facing view of the arithmetic-complexity accounting.
    pub fn record_metrics(&self, reg: &mut sofa_obs::MetricsRegistry, prefix: &str) {
        for k in OpKind::ALL {
            let name = match k {
                OpKind::Mul => "mul",
                OpKind::Add => "add",
                OpKind::Exp => "exp",
                OpKind::Cmp => "cmp",
                OpKind::Shift => "shift",
                OpKind::Div => "div",
                OpKind::LzEncode => "lz_encode",
            };
            reg.inc(&format!("{prefix}.{name}"), self.count(k));
        }
        reg.inc(&format!("{prefix}.total"), self.total_ops());
    }
}

impl std::ops::Add for OpCounts {
    type Output = OpCounts;
    fn add(self, rhs: OpCounts) -> OpCounts {
        self.combine(&rhs)
    }
}

impl std::ops::AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = self.combine(&rhs);
    }
}

impl std::fmt::Display for OpCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mul={} add={} exp={} cmp={} shift={} div={} lze={} (norm={:.1})",
            self.mul,
            self.add,
            self.exp,
            self.cmp,
            self.shift,
            self.div,
            self.lz_encode,
            self.normalized_complexity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_metrics_exports_every_kind() {
        let mut c = OpCounts::new();
        c.record(OpKind::Mul, 3);
        c.record(OpKind::LzEncode, 2);
        let mut reg = sofa_obs::MetricsRegistry::new();
        c.record_metrics(&mut reg, "core.ops");
        assert_eq!(reg.counter("core.ops.mul"), 3);
        assert_eq!(reg.counter("core.ops.lz_encode"), 2);
        assert_eq!(reg.counter("core.ops.add"), 0);
        assert_eq!(reg.counter("core.ops.total"), 5);
    }

    #[test]
    fn record_and_count_round_trip() {
        let mut c = OpCounts::new();
        for (i, k) in OpKind::ALL.iter().enumerate() {
            c.record(*k, (i + 1) as u64);
        }
        for (i, k) in OpKind::ALL.iter().enumerate() {
            assert_eq!(c.count(*k), (i + 1) as u64);
        }
        assert_eq!(c.total_ops(), (1..=7).sum::<u64>());
    }

    #[test]
    fn normalized_complexity_uses_weights() {
        let mut c = OpCounts::new();
        c.record(OpKind::Mul, 2);
        c.record(OpKind::Add, 3);
        assert!((c.normalized_complexity() - (2.0 * 16.0 + 3.0)).abs() < 1e-9);
    }

    #[test]
    fn shift_is_cheaper_than_mul() {
        assert!(OpKind::Shift.weight() < OpKind::Mul.weight());
        assert!(OpKind::Exp.weight() > OpKind::Mul.weight());
    }

    #[test]
    fn combine_add_scale() {
        let mut a = OpCounts::new();
        a.record(OpKind::Mul, 5);
        let mut b = OpCounts::new();
        b.record(OpKind::Mul, 7);
        b.record(OpKind::Exp, 1);
        let c = a + b;
        assert_eq!(c.mul, 12);
        assert_eq!(c.exp, 1);
        let d = c.scaled(3);
        assert_eq!(d.mul, 36);
        assert_eq!(d.exp, 3);
        a += b;
        assert_eq!(a.mul, 12);
    }

    #[test]
    fn display_contains_all_kinds() {
        let mut c = OpCounts::new();
        c.record(OpKind::Div, 9);
        let s = c.to_string();
        assert!(s.contains("div=9"));
        assert!(s.contains("norm="));
        assert_eq!(OpKind::Div.to_string(), "div");
    }
}
