//! The end-to-end SOFA dynamic-sparsity pipeline and its ablatable variants.
//!
//! The cross-stage tiled workflow of the paper (Fig. 6) is:
//!
//! 1. **Pre-compute** — DLZS predicts the attention matrix `Â` from the raw
//!    tokens and the pre-converted `W_k` (no multiplications).
//! 2. **Top-k** — SADS picks the vital Q-K pairs per tile.
//! 3. **On-demand KV generation** — only the keys/values some query actually
//!    selected are projected (`K_i = x_i·W_k`, `V_i = x_i·W_v`).
//! 4. **Formal compute** — SU-FA consumes the sorted mask and produces the
//!    attention output without re-deriving the softmax maximum.
//!
//! Each stage can be swapped for its baseline (4-bit multiply prediction,
//! whole-row sorting, FlashAttention-2) so the ablation of paper Fig. 17 falls
//! out of a single configurable pipeline.

use crate::dlzs::{predict_scores_int4, predict_scores_vanilla_lz, DlzsPredictor, PredictionStats};
use crate::flash::{FlashConfig, FlashVersion};
use crate::ops::{OpCounts, OpKind};
use crate::sads::{sads_topk, SadsConfig};
use crate::sufa::{sorted_updating_attention, SuFaOrder, SuFaStats};
use crate::topk::{resolve_k, topk_exact, TopKMask};
use crate::SofaError;
use sofa_model::{AttentionWorkload, OperatingPoint};
use sofa_tensor::Matrix;

/// Which prediction scheme the pre-compute stage uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionScheme {
    /// SOFA's differential leading-zero summation.
    Dlzs,
    /// 4-bit integer multiplication (prior-work baseline).
    Int4Multiply,
    /// Vanilla leading-zero scheme converting both operands.
    VanillaLz,
}

/// Which sorting scheme the top-k stage uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortingScheme {
    /// SOFA's sphere-search aided distributed sorting.
    Sads,
    /// Whole-row exact sorting (prior-work baseline).
    FullSort,
}

/// Which formal-compute scheme processes the selected pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormalScheme {
    /// SOFA's sorted-updating FlashAttention with the given order.
    SuFa(SuFaOrder),
    /// FlashAttention over the gathered selected keys (prior-work baseline).
    Flash(FlashVersion),
}

/// Configuration of the SOFA pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Fraction of keys kept per query row (top-k / S).
    pub keep_ratio: f64,
    /// Cross-stage tile size `Bc` (drives both SADS segmentation and the
    /// formal-compute tiling).
    pub tile_size: usize,
    /// SADS sphere-search radius as a fraction of the segment range.
    pub radius_frac: f64,
    /// SADS adjustive-exchange iterations.
    pub refine_iters: usize,
    /// Pre-compute scheme.
    pub prediction: PredictionScheme,
    /// Top-k scheme.
    pub sorting: SortingScheme,
    /// Formal-compute scheme.
    pub formal: FormalScheme,
}

impl PipelineConfig {
    /// Creates the default SOFA configuration (DLZS + SADS + descending SU-FA)
    /// with the given keep ratio and tile size. This is the validated scalar
    /// base constructor `OperatingPoint` lowering builds on — lowering call
    /// sites go through [`PipelineConfig::for_layer`] instead of passing
    /// scalar pairs.
    ///
    /// # Errors
    ///
    /// Returns [`SofaError::InvalidConfig`] if `keep_ratio` is outside `(0, 1]`
    /// or `tile_size == 0`.
    pub fn new(keep_ratio: f64, tile_size: usize) -> Result<Self, SofaError> {
        if !(keep_ratio > 0.0 && keep_ratio <= 1.0) {
            return Err(SofaError::InvalidConfig {
                param: "keep_ratio",
                reason: format!("must be in (0, 1], got {keep_ratio}"),
            });
        }
        if tile_size == 0 {
            return Err(SofaError::InvalidConfig {
                param: "tile_size",
                reason: "must be positive".to_string(),
            });
        }
        Ok(PipelineConfig {
            keep_ratio,
            tile_size,
            radius_frac: 0.5,
            refine_iters: 2,
            prediction: PredictionScheme::Dlzs,
            sorting: SortingScheme::Sads,
            formal: FormalScheme::SuFa(SuFaOrder::Descending),
        })
    }

    /// The default SOFA configuration at one layer of an operating point —
    /// the lowering entry point consumers use instead of passing scalar
    /// `(keep, Bc)` pairs (`OperatingPoint` invariants guarantee validity,
    /// so this cannot fail).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of the point's range.
    pub fn for_layer(op: &OperatingPoint, layer: usize) -> Self {
        Self::new(op.keep(layer), op.tile(layer))
            .expect("operating points are valid pipeline configs")
    }

    /// The prior-work baseline: 4-bit multiply prediction, whole-row sorting
    /// and FlashAttention-2 over the selected keys.
    ///
    /// # Errors
    ///
    /// Same as [`PipelineConfig::new`].
    pub fn baseline(keep_ratio: f64, tile_size: usize) -> Result<Self, SofaError> {
        let mut cfg = Self::new(keep_ratio, tile_size)?;
        cfg.prediction = PredictionScheme::Int4Multiply;
        cfg.sorting = SortingScheme::FullSort;
        cfg.formal = FormalScheme::Flash(FlashVersion::V2);
        Ok(cfg)
    }

    /// Replaces the prediction scheme (builder style).
    pub fn with_prediction(mut self, scheme: PredictionScheme) -> Self {
        self.prediction = scheme;
        self
    }

    /// Replaces the sorting scheme (builder style).
    pub fn with_sorting(mut self, scheme: SortingScheme) -> Self {
        self.sorting = scheme;
        self
    }

    /// Replaces the formal-compute scheme (builder style).
    pub fn with_formal(mut self, scheme: FormalScheme) -> Self {
        self.formal = scheme;
        self
    }
}

/// Result of running the pipeline on one attention workload.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The sparse attention output, shape `(queries, head_dim)`.
    pub output: Matrix,
    /// The top-k mask the formal stage consumed.
    pub mask: TopKMask,
    /// Operation/traffic statistics of the prediction stage.
    pub prediction: PredictionStats,
    /// Operation counts of the top-k sorting stage.
    pub sorting_ops: OpCounts,
    /// Operation counts of on-demand K/V generation.
    pub kv_generation_ops: OpCounts,
    /// Operation counts of the formal compute stage.
    pub formal_ops: OpCounts,
    /// SU-FA statistics (zero if the formal stage was FlashAttention).
    pub sufa_stats: SuFaStats,
    /// Number of distinct keys that had to be generated on demand.
    pub keys_generated: usize,
}

impl PipelineResult {
    /// Total operation counts across all stages.
    pub fn total_ops(&self) -> OpCounts {
        self.prediction.ops + self.sorting_ops + self.kv_generation_ops + self.formal_ops
    }

    /// Per-tile selection statistics of the mask this run produced — the
    /// real-workload load profile a cycle-level simulator consumes instead of
    /// expected values.
    ///
    /// # Panics
    ///
    /// Panics if `tile_size` is zero.
    pub fn tile_selection_stats(&self, tile_size: usize) -> crate::tiling::TileSelectionStats {
        crate::tiling::TileSelectionStats::from_mask(&self.mask, tile_size)
    }

    /// Total normalised complexity across all stages.
    pub fn normalized_complexity(&self) -> f64 {
        self.total_ops().normalized_complexity()
    }
}

/// Reusable per-run scratch buffers (the on-demand K/V matrices), so a
/// batched run allocates once per worker instead of once per workload.
/// Reuse never changes results: the buffers are reshaped and zeroed before
/// every run, exactly matching a fresh [`Matrix::zeros`].
#[derive(Debug)]
pub struct RunScratch {
    keys: Matrix,
    values: Matrix,
}

impl RunScratch {
    /// Creates empty scratch; buffers grow to the largest workload they see.
    pub fn new() -> Self {
        RunScratch {
            keys: Matrix::zeros(0, 0),
            values: Matrix::zeros(0, 0),
        }
    }
}

impl Default for RunScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// The configurable SOFA pipeline.
#[derive(Debug, Clone, Copy)]
pub struct SofaPipeline {
    cfg: PipelineConfig,
}

impl SofaPipeline {
    /// Creates a pipeline from a configuration.
    pub fn new(cfg: PipelineConfig) -> Self {
        SofaPipeline { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// This pipeline's schemes (prediction/sorting/formal, SADS tuning) at
    /// one layer of an operating point: the keep ratio and tile size are
    /// swapped for `op`'s, everything else is inherited. This is how a
    /// multi-layer lowering switches tile size and keep ratio between layer
    /// invocations.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of the point's range.
    pub fn at_layer(&self, op: &OperatingPoint, layer: usize) -> SofaPipeline {
        let mut cfg = self.cfg;
        cfg.keep_ratio = op.keep(layer);
        cfg.tile_size = op.tile(layer);
        SofaPipeline::new(cfg)
    }

    /// Runs the pipeline on a batch of independent workloads — one serving
    /// request each — at a **single-layer** operating point, returning one
    /// result per workload in input order. For multi-layer points use
    /// [`SofaPipeline::run_layers`]; keeping the two entry points separate
    /// means a layer count that happens to match the batch length can never
    /// silently change what a call computes. Schemes come from this
    /// pipeline ([`SofaPipeline::at_layer`]).
    ///
    /// From the results, [`PipelineResult::tile_selection_stats`] and
    /// `sofa_hw::SofaAccelerator::request_descriptors` produce per-request
    /// tile descriptor streams for multi-instance cycle simulation. (The
    /// `sofa-serve` experiments lower requests from expected-value
    /// statistics instead, trading mask fidelity for sweep speed.)
    ///
    /// Workloads are independent, so the batch fans out across CPU cores
    /// (`sofa_par::par_chunks`, worker count from `SOFA_THREADS`), with one
    /// reusable [`RunScratch`] per worker instead of fresh allocations per
    /// workload. Results are bit-identical to calling [`SofaPipeline::run`]
    /// per workload, at any thread count — the differential property test
    /// in `tests/property_tests.rs` enforces this.
    ///
    /// # Panics
    ///
    /// Panics if `op` has more than one layer.
    pub fn run_batch(
        &self,
        op: &OperatingPoint,
        workloads: &[AttentionWorkload],
    ) -> Vec<PipelineResult> {
        assert_eq!(
            op.layers(),
            1,
            "run_batch broadcasts a single-layer point; use run_layers for \
             per-layer lowering"
        );
        self.run_mapped(op, workloads, |_| 0)
    }

    /// Runs one workload per layer of `op`, workload `i` at layer `i`'s
    /// keep ratio and tile size — the per-layer lowering path of a
    /// multi-layer request, switching the operating point between layer
    /// invocations. Same parallelism and determinism guarantees as
    /// [`SofaPipeline::run_batch`].
    ///
    /// # Panics
    ///
    /// Panics if the workload count differs from `op`'s layer count.
    pub fn run_layers(
        &self,
        op: &OperatingPoint,
        layer_workloads: &[AttentionWorkload],
    ) -> Vec<PipelineResult> {
        assert_eq!(
            layer_workloads.len(),
            op.layers(),
            "run_layers needs exactly one workload per layer"
        );
        self.run_mapped(op, layer_workloads, |i| i)
    }

    /// Shared fan-out of `run_batch`/`run_layers`: workload `i` runs at
    /// layer `layer_of(i)` of `op`, one scratch per worker.
    fn run_mapped(
        &self,
        op: &OperatingPoint,
        workloads: &[AttentionWorkload],
        layer_of: impl Fn(usize) -> usize + Sync,
    ) -> Vec<PipelineResult> {
        sofa_par::par_chunks(workloads, |start, chunk| {
            let mut scratch = RunScratch::new();
            chunk
                .iter()
                .enumerate()
                .map(|(offset, w)| {
                    self.at_layer(op, layer_of(start + offset))
                        .run_with_scratch(w, &mut scratch)
                })
                .collect()
        })
    }

    /// Runs the full pipeline on one workload.
    pub fn run(&self, w: &AttentionWorkload) -> PipelineResult {
        self.run_with_scratch(w, &mut RunScratch::new())
    }

    /// Runs the full pipeline on one workload, reusing `scratch`'s buffers
    /// for the on-demand K/V matrices. Output is identical to
    /// [`SofaPipeline::run`]; only the allocation behaviour differs.
    pub fn run_with_scratch(
        &self,
        w: &AttentionWorkload,
        scratch: &mut RunScratch,
    ) -> PipelineResult {
        let s = w.seq_len();
        let k = resolve_k(s, self.cfg.keep_ratio);

        // Stage 1: prediction.
        let mut prediction = PredictionStats::default();
        let predicted_scores = match self.cfg.prediction {
            PredictionScheme::Dlzs => {
                let predictor = DlzsPredictor::prepare(&w.wk);
                let (scores, stats) = predictor.predict(&w.x, &w.q);
                prediction = stats;
                scores
            }
            PredictionScheme::Int4Multiply => {
                predict_scores_int4(&w.x, &w.wk, &w.q, &mut prediction)
            }
            PredictionScheme::VanillaLz => {
                predict_scores_vanilla_lz(&w.x, &w.wk, &w.q, &mut prediction)
            }
        };

        // Stage 2: top-k sorting.
        let (mask, sorting_ops) = match self.cfg.sorting {
            SortingScheme::Sads => {
                let sads = SadsConfig::from_tile_size(
                    s,
                    self.cfg.tile_size,
                    self.cfg.radius_frac,
                    self.cfg.refine_iters,
                );
                sads_topk(&predicted_scores, k, &sads)
            }
            SortingScheme::FullSort => {
                let mut ops = OpCounts::new();
                let mask = topk_exact(&predicted_scores, k, &mut ops);
                (mask, ops)
            }
        };

        // Stage 3: on-demand KV generation — only the keys any query needs.
        let needed = mask.union_of_keys();
        let mut kv_generation_ops = OpCounts::new();
        generate_kv_on_demand(w, &needed, &mut kv_generation_ops, scratch);
        let (keys, values) = (&scratch.keys, &scratch.values);

        // Stage 4: formal compute.
        let mut formal_ops = OpCounts::new();
        let (output, sufa_stats) = match self.cfg.formal {
            FormalScheme::SuFa(order) => {
                sorted_updating_attention(&w.q, keys, values, &mask, order, &mut formal_ops)
            }
            FormalScheme::Flash(version) => (
                flash_over_mask(
                    &w.q,
                    keys,
                    values,
                    &mask,
                    &FlashConfig::new(self.cfg.tile_size, version),
                    &mut formal_ops,
                ),
                SuFaStats::default(),
            ),
        };

        PipelineResult {
            output,
            mask,
            prediction,
            sorting_ops,
            kv_generation_ops,
            formal_ops,
            sufa_stats,
            keys_generated: needed.len(),
        }
    }
}

/// Generates only the needed K/V rows (`K_i = x_i·W_k`, `V_i = x_i·W_v`)
/// into `scratch`'s reset buffers, leaving unneeded rows zero. Counts one
/// multiply and one add per MAC.
fn generate_kv_on_demand(
    w: &AttentionWorkload,
    needed: &[usize],
    ops: &mut OpCounts,
    scratch: &mut RunScratch,
) {
    let d = w.wk.cols();
    let n = w.x.cols();
    scratch.keys.reset_zeros(w.seq_len(), d);
    scratch.values.reset_zeros(w.seq_len(), d);
    for &row in needed {
        let xrow = w.x.row(row);
        for j in 0..d {
            let mut ka = 0.0f32;
            let mut va = 0.0f32;
            for (i, &x) in xrow.iter().enumerate() {
                ka += x * w.wk.get(i, j);
                va += x * w.wv.get(i, j);
            }
            scratch.keys.set(row, j, ka);
            scratch.values.set(row, j, va);
        }
        ops.record(OpKind::Mul, 2 * (n * d) as u64);
        ops.record(OpKind::Add, 2 * (n * d) as u64);
    }
}

/// Baseline formal compute: per query row, gather the selected keys/values and
/// run FlashAttention over them (order-agnostic — it re-derives the maximum).
fn flash_over_mask(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    mask: &TopKMask,
    cfg: &FlashConfig,
    ops: &mut OpCounts,
) -> Matrix {
    let mut out = Matrix::zeros(q.rows(), v.cols());
    for i in 0..q.rows() {
        let selected = mask.row(i);
        if selected.is_empty() {
            continue;
        }
        let qi = q.select_rows(&[i]);
        // Gather in ascending key order (the baseline has no rank information).
        let mut idx = selected.to_vec();
        idx.sort_unstable();
        let ki = k.select_rows(&idx);
        let vi = v.select_rows(&idx);
        let oi = crate::flash::flash_attention(&qi, &ki, &vi, cfg, ops);
        out.row_mut(i).copy_from_slice(oi.row(0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofa_model::ScoreDistribution;
    use sofa_tensor::stats::mean_row_cosine;

    fn workload() -> AttentionWorkload {
        AttentionWorkload::generate(&ScoreDistribution::bert_like(), 8, 128, 48, 32, 321)
    }

    #[test]
    fn config_validation() {
        assert!(PipelineConfig::new(0.0, 16).is_err());
        assert!(PipelineConfig::new(1.1, 16).is_err());
        assert!(PipelineConfig::new(0.5, 0).is_err());
        assert!(PipelineConfig::new(0.25, 16).is_ok());
        assert!(PipelineConfig::baseline(0.25, 16).is_ok());
    }

    #[test]
    fn sofa_pipeline_output_approximates_dense() {
        let w = workload();
        let cfg = PipelineConfig::new(0.3, 16).unwrap();
        let result = SofaPipeline::new(cfg).run(&w);
        assert_eq!(result.output.shape(), (8, 32));
        let dense = w.dense_output();
        let cos = mean_row_cosine(&result.output, &dense);
        assert!(cos > 0.9, "sparse output should track dense output: {cos}");
    }

    #[test]
    fn run_batch_matches_individual_runs() {
        let workloads = [
            workload(),
            AttentionWorkload::generate(&ScoreDistribution::gpt_like(), 4, 64, 32, 16, 99),
        ];
        let pipeline = SofaPipeline::new(PipelineConfig::new(0.25, 16).unwrap());
        let batch = pipeline.run_batch(&OperatingPoint::single(0.25, 16), &workloads);
        assert_eq!(batch.len(), 2);
        for (r, w) in batch.iter().zip(workloads.iter()) {
            let solo = pipeline.run(w);
            assert_eq!(r.output, solo.output, "batch entry must equal solo run");
            assert_eq!(r.mask, solo.mask);
        }
        // Each entry exports its own per-tile selection stats.
        let stats = batch[1].tile_selection_stats(16);
        assert_eq!(stats.num_tiles(), 64 / 16);
    }

    #[test]
    fn multi_layer_points_switch_keep_and_tile_between_layers() {
        // A two-layer point must run workload i at layer i's configuration —
        // identical to building that layer's pipeline by hand.
        let workloads = [workload(), workload()];
        let op = OperatingPoint::new(vec![0.1, 0.4], vec![8, 32]).unwrap();
        let pipeline = SofaPipeline::new(PipelineConfig::new(0.25, 16).unwrap());
        let batch = pipeline.run_layers(&op, &workloads);
        for (layer, r) in batch.iter().enumerate() {
            let solo =
                SofaPipeline::new(PipelineConfig::for_layer(&op, layer)).run(&workloads[layer]);
            assert_eq!(r.output, solo.output, "layer {layer}");
            assert_eq!(r.mask, solo.mask, "layer {layer}");
        }
        // Distinct layers really saw distinct operating points.
        assert_ne!(batch[0].mask, batch[1].mask);
    }

    #[test]
    #[should_panic(expected = "one workload per layer")]
    fn run_layers_rejects_mismatched_batches() {
        let pipeline = SofaPipeline::new(PipelineConfig::new(0.25, 16).unwrap());
        let _ = pipeline.run_layers(&OperatingPoint::paper_default(3), &[workload()]);
    }

    #[test]
    #[should_panic(expected = "broadcasts a single-layer point")]
    fn run_batch_rejects_multi_layer_points() {
        // A layer count that happens to equal the batch length must not
        // silently turn a request batch into per-layer lowering.
        let pipeline = SofaPipeline::new(PipelineConfig::new(0.25, 16).unwrap());
        let _ = pipeline.run_batch(&OperatingPoint::paper_default(2), &[workload(), workload()]);
    }

    #[test]
    fn scratch_reuse_across_shapes_changes_nothing() {
        // One scratch serving a large → small → large sequence must produce
        // the same bits as fresh per-run allocation, including after the
        // buffers shrink and regrow.
        let big = workload();
        let small = AttentionWorkload::generate(&ScoreDistribution::gpt_like(), 4, 64, 32, 16, 5);
        let pipeline = SofaPipeline::new(PipelineConfig::new(0.25, 16).unwrap());
        let mut scratch = RunScratch::new();
        let b1 = pipeline.run_with_scratch(&big, &mut scratch);
        let s1 = pipeline.run_with_scratch(&small, &mut scratch);
        let b2 = pipeline.run_with_scratch(&big, &mut scratch);
        assert_eq!(b1.output, pipeline.run(&big).output);
        assert_eq!(s1.output, pipeline.run(&small).output);
        assert_eq!(b1.output, b2.output);
        assert_eq!(b1.mask, b2.mask);
    }

    #[test]
    fn run_batch_is_bit_identical_at_any_thread_count() {
        let workloads = [
            workload(),
            AttentionWorkload::generate(&ScoreDistribution::gpt_like(), 4, 64, 32, 16, 99),
            AttentionWorkload::generate(&ScoreDistribution::vit_like(), 8, 96, 48, 32, 7),
        ];
        let pipeline = SofaPipeline::new(PipelineConfig::new(0.25, 16).unwrap());
        let op = OperatingPoint::single(0.25, 16);
        let solo: Vec<PipelineResult> = workloads.iter().map(|w| pipeline.run(w)).collect();
        for threads in [1usize, 2, 8] {
            let batch = sofa_par::with_threads(threads, || pipeline.run_batch(&op, &workloads));
            assert_eq!(batch.len(), solo.len());
            for (b, s) in batch.iter().zip(solo.iter()) {
                assert_eq!(b.output, s.output, "threads={threads}");
                assert_eq!(b.mask, s.mask, "threads={threads}");
                assert_eq!(b.total_ops(), s.total_ops(), "threads={threads}");
            }
        }
    }

    #[test]
    fn pipeline_respects_keep_ratio() {
        let w = workload();
        let cfg = PipelineConfig::new(0.25, 16).unwrap();
        let result = SofaPipeline::new(cfg).run(&w);
        assert!((result.mask.keep_ratio() - 0.25).abs() < 0.02);
        assert!(result.keys_generated <= w.seq_len());
        assert!(
            result.keys_generated >= 32,
            "several keys must be generated"
        );
    }

    #[test]
    fn on_demand_kv_generates_fewer_keys_than_full() {
        let w = workload();
        let cfg = PipelineConfig::new(0.1, 16).unwrap();
        let result = SofaPipeline::new(cfg).run(&w);
        assert!(
            result.keys_generated < w.seq_len(),
            "only {} of {} keys should be generated",
            result.keys_generated,
            w.seq_len()
        );
    }

    #[test]
    fn sofa_is_cheaper_than_baseline_pipeline() {
        // Fig. 17: the full SOFA stack reduces normalized complexity versus
        // 4-bit-multiply prediction + whole-row sort + FA-2.
        let w = workload();
        let sofa = SofaPipeline::new(PipelineConfig::new(0.25, 16).unwrap()).run(&w);
        let base = SofaPipeline::new(PipelineConfig::baseline(0.25, 16).unwrap()).run(&w);
        assert!(
            sofa.normalized_complexity() < base.normalized_complexity(),
            "SOFA {} should be cheaper than baseline {}",
            sofa.normalized_complexity(),
            base.normalized_complexity()
        );
    }

    #[test]
    fn ablation_is_monotonic() {
        // Each SOFA component should reduce (or at least not increase) the
        // total complexity: baseline → +DLZS → +SADS → +SU-FA. Averaged over
        // seeds because the SADS adjustive-exchange cost is data-dependent
        // (single workloads can sit within a percent of the full sort).
        let keep = 0.25;
        let bc = 16;
        let run = |cfg: PipelineConfig| -> f64 {
            [321u64, 322, 323]
                .iter()
                .map(|&seed| {
                    let w = AttentionWorkload::generate(
                        &ScoreDistribution::bert_like(),
                        8,
                        128,
                        48,
                        32,
                        seed,
                    );
                    SofaPipeline::new(cfg).run(&w).normalized_complexity()
                })
                .sum::<f64>()
                / 3.0
        };
        let c0 = run(PipelineConfig::baseline(keep, bc).unwrap());
        let c1 = run(PipelineConfig::baseline(keep, bc)
            .unwrap()
            .with_prediction(PredictionScheme::Dlzs));
        let c2 = run(PipelineConfig::baseline(keep, bc)
            .unwrap()
            .with_prediction(PredictionScheme::Dlzs)
            .with_sorting(SortingScheme::Sads));
        let c3 = run(PipelineConfig::new(keep, bc).unwrap());
        assert!(c1 < c0, "DLZS should reduce complexity ({c1} vs {c0})");
        assert!(
            c2 <= c1,
            "SADS should not increase complexity ({c2} vs {c1})"
        );
        assert!(
            c3 <= c2,
            "SU-FA should not increase complexity ({c3} vs {c2})"
        );
    }

    #[test]
    fn flash_formal_stage_matches_sufa_output() {
        let w = workload();
        let sufa_cfg = PipelineConfig::new(0.3, 16).unwrap();
        let flash_cfg = sufa_cfg.with_formal(FormalScheme::Flash(FlashVersion::V2));
        let a = SofaPipeline::new(sufa_cfg).run(&w);
        let b = SofaPipeline::new(flash_cfg).run(&w);
        // Same prediction + sorting configuration ⇒ same mask ⇒ same output.
        let cos = mean_row_cosine(&a.output, &b.output);
        assert!(cos > 0.999, "formal stages disagree: {cos}");
    }

    #[test]
    fn total_ops_sums_stages() {
        let w = workload();
        let r = SofaPipeline::new(PipelineConfig::new(0.25, 16).unwrap()).run(&w);
        let total = r.total_ops();
        assert_eq!(
            total.shift,
            r.prediction.ops.shift
                + r.sorting_ops.shift
                + r.kv_generation_ops.shift
                + r.formal_ops.shift
        );
        assert!(total.total_ops() > 0);
        assert!(!format!("{:?}", r.sufa_stats).is_empty());
    }
}
