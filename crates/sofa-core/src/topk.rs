//! Exact top-k selection (the vanilla sorting baseline) and the top-k mask
//! representation shared by all stages.
//!
//! The vanilla dynamic-sparsity flow sorts each *whole row* of the predicted
//! attention matrix to pick its k largest entries — which both serialises the
//! pipeline (the row must be complete before sorting starts) and costs
//! `O(S log S)` comparisons per row. SOFA's SADS (see [`crate::sads`])
//! replaces it; this module provides the exact reference and the mask type.

use crate::ops::{OpCounts, OpKind};
use sofa_tensor::Matrix;
use std::cell::Cell;

/// The per-query selection of vital keys produced by the top-k stage.
///
/// Indices in each row are ordered by decreasing predicted score, so
/// `rows[i][0]` is the predicted argmax — exactly the information SU-FA's
/// descending update order consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKMask {
    /// Context length `S` the mask refers to.
    seq_len: usize,
    /// Selected key indices per query row, sorted by descending score.
    rows: Vec<Vec<usize>>,
}

impl TopKMask {
    /// Builds a mask from per-row index lists (already sorted by descending
    /// predicted score).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds for `seq_len`.
    pub fn new(seq_len: usize, rows: Vec<Vec<usize>>) -> Self {
        for r in &rows {
            for &i in r {
                assert!(i < seq_len, "index {i} out of bounds for S={seq_len}");
            }
        }
        TopKMask { seq_len, rows }
    }

    /// Number of query rows.
    pub fn queries(&self) -> usize {
        self.rows.len()
    }

    /// Context length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// The selected indices of query `i`, ordered by descending score.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[usize] {
        &self.rows[i]
    }

    /// Iterates over all rows.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// Predicted argmax index of query `i` (None if the row is empty).
    pub fn predicted_max(&self, i: usize) -> Option<usize> {
        self.rows[i].first().copied()
    }

    /// Total number of kept Q-K pairs.
    pub fn total_kept(&self) -> usize {
        self.rows.iter().map(|r| r.len()).sum()
    }

    /// Average keep ratio across rows.
    pub fn keep_ratio(&self) -> f64 {
        if self.rows.is_empty() || self.seq_len == 0 {
            return 0.0;
        }
        self.total_kept() as f64 / (self.rows.len() * self.seq_len) as f64
    }

    /// Converts to per-row boolean masks of length `seq_len` (the layout
    /// consumed by [`sofa_tensor::attention::masked_attention`]).
    pub fn to_bool_rows(&self) -> Vec<Vec<bool>> {
        self.rows
            .iter()
            .map(|r| {
                let mut m = vec![false; self.seq_len];
                for &i in r {
                    m[i] = true;
                }
                m
            })
            .collect()
    }

    /// The set of key indices needed by *any* query (deduplicated, ascending).
    /// This is what the on-demand KV generation stage materialises.
    pub fn union_of_keys(&self) -> Vec<usize> {
        let mut needed = vec![false; self.seq_len];
        for r in &self.rows {
            for &i in r {
                needed[i] = true;
            }
        }
        needed
            .iter()
            .enumerate()
            .filter_map(|(i, &n)| if n { Some(i) } else { None })
            .collect()
    }
}

/// Resolves a keep-ratio into an integer `k ≥ 1` for rows of length `seq_len`.
///
/// # Panics
///
/// Panics if `keep_ratio` is not within `(0, 1]`.
pub fn resolve_k(seq_len: usize, keep_ratio: f64) -> usize {
    assert!(
        keep_ratio > 0.0 && keep_ratio <= 1.0,
        "keep ratio must be in (0, 1], got {keep_ratio}"
    );
    ((seq_len as f64 * keep_ratio).round() as usize).clamp(1, seq_len)
}

/// Exact top-k of one row by full sorting, counting every comparison the sort
/// performs (the "vanilla sorting" baseline of the paper's ablation).
/// Returns indices sorted by descending value.
pub fn topk_row_exact(row: &[f32], k: usize, ops: &mut OpCounts) -> Vec<usize> {
    let k = k.min(row.len());
    let mut idx: Vec<usize> = (0..row.len()).collect();
    let comparisons = Cell::new(0u64);
    idx.sort_by(|&a, &b| {
        comparisons.set(comparisons.get() + 1);
        row[b]
            .partial_cmp(&row[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    ops.record(OpKind::Cmp, comparisons.get());
    idx.truncate(k);
    idx
}

/// Exact top-k over every row of a score matrix (whole-row processing).
pub fn topk_exact(scores: &Matrix, k: usize, ops: &mut OpCounts) -> TopKMask {
    let rows = (0..scores.rows())
        .map(|i| topk_row_exact(scores.row(i), k, ops))
        .collect();
    TopKMask::new(scores.cols(), rows)
}

/// Analytical comparison count of a full-row merge sort (`S·log2(S)`), used
/// when extrapolating the baseline cost to sequence lengths too large to run.
pub fn full_sort_comparisons(seq_len: usize) -> u64 {
    if seq_len <= 1 {
        return 0;
    }
    let s = seq_len as f64;
    (s * s.log2()).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_row_returns_largest_indices_in_order() {
        let row = [0.1f32, 5.0, -1.0, 3.0, 4.0];
        let mut ops = OpCounts::new();
        let top = topk_row_exact(&row, 3, &mut ops);
        assert_eq!(top, vec![1, 4, 3]);
        assert!(ops.cmp > 0, "comparisons must be counted");
    }

    #[test]
    fn topk_row_k_larger_than_row() {
        let row = [1.0f32, 2.0];
        let mut ops = OpCounts::new();
        assert_eq!(topk_row_exact(&row, 10, &mut ops).len(), 2);
    }

    #[test]
    fn topk_exact_masks_each_row() {
        let m = Matrix::from_rows(&[vec![1.0, 9.0, 2.0, 8.0], vec![4.0, 3.0, 2.0, 1.0]]).unwrap();
        let mut ops = OpCounts::new();
        let mask = topk_exact(&m, 2, &mut ops);
        assert_eq!(mask.queries(), 2);
        assert_eq!(mask.row(0), &[1, 3]);
        assert_eq!(mask.row(1), &[0, 1]);
        assert_eq!(mask.predicted_max(0), Some(1));
        assert_eq!(mask.total_kept(), 4);
        assert!((mask.keep_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mask_bool_rows_and_union() {
        let mask = TopKMask::new(5, vec![vec![4, 0], vec![4, 2]]);
        let rows = mask.to_bool_rows();
        assert_eq!(rows[0], vec![true, false, false, false, true]);
        assert_eq!(rows[1], vec![false, false, true, false, true]);
        assert_eq!(mask.union_of_keys(), vec![0, 2, 4]);
        assert_eq!(mask.iter().count(), 2);
        assert_eq!(mask.seq_len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn mask_rejects_out_of_range_indices() {
        let _ = TopKMask::new(3, vec![vec![3]]);
    }

    #[test]
    fn resolve_k_bounds() {
        assert_eq!(resolve_k(100, 0.25), 25);
        assert_eq!(resolve_k(100, 1.0), 100);
        assert_eq!(resolve_k(3, 0.01), 1, "never below 1");
    }

    #[test]
    #[should_panic(expected = "keep ratio")]
    fn resolve_k_rejects_zero() {
        let _ = resolve_k(10, 0.0);
    }

    #[test]
    fn full_sort_comparisons_grows_superlinearly() {
        assert_eq!(full_sort_comparisons(1), 0);
        let c1 = full_sort_comparisons(1024);
        let c2 = full_sort_comparisons(2048);
        assert!(c2 > 2 * c1);
    }

    #[test]
    fn empty_mask_keep_ratio_is_zero() {
        let mask = TopKMask::new(0, vec![]);
        assert_eq!(mask.keep_ratio(), 0.0);
    }
}
