//! Sphere-search Aided Distributed Sorting — SADS (paper §III-B, Fig. 9/13).
//!
//! SADS exploits the *Distributed Cluster Effect*: because attention rows are
//! almost always Type-I or Type-II (see [`sofa_model::distribution`]), the
//! large values of each sub-segment collectively represent the large values of
//! the whole row. Each row is therefore split into `n` sub-segments that are
//! sorted *independently* — which is what unlocks tiled, pipelined execution
//! across the pre-compute and top-k stages — and each contributes its local
//! top-(k/n) to the final selection.
//!
//! Two refinements keep the comparison count and the accuracy loss low:
//!
//! * **Sphere search / clipping** — inside a segment, only values within a
//!   radius `r` of the running maximum (or above the current minimum of the
//!   output buffer) are candidates; everything else is blocked without being
//!   sorted (the hardware zeroes them to save switching power).
//! * **Adjustive exchange** — a bounded number of exchange iterations swap the
//!   smallest selected value with the largest excluded candidate when they are
//!   out of order, recovering most of the exact top-k set.

use crate::ops::{OpCounts, OpKind};
use crate::topk::TopKMask;
use sofa_tensor::Matrix;

/// Configuration of the SADS top-k stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SadsConfig {
    /// Number of sub-segments `n` a row is divided into (the cross-stage tile
    /// count; `S / n` is the tile width `Bc`).
    pub segments: usize,
    /// Sphere-search radius as a fraction of the segment's value range:
    /// candidates must lie within `radius_frac · range` of the segment max.
    pub radius_frac: f64,
    /// Number of adjustive exchange iterations (`DSn` in the paper's Fig. 9).
    pub refine_iters: usize,
}

impl SadsConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns an error message if `segments == 0` or `radius_frac` is not in
    /// `(0, 1]`.
    pub fn new(segments: usize, radius_frac: f64, refine_iters: usize) -> Result<Self, String> {
        if segments == 0 {
            return Err("segments must be at least 1".to_string());
        }
        if !(radius_frac > 0.0 && radius_frac <= 1.0) {
            return Err(format!("radius_frac must be in (0, 1], got {radius_frac}"));
        }
        Ok(SadsConfig {
            segments,
            radius_frac,
            refine_iters,
        })
    }

    /// The default configuration used by the paper's examples: 4 segments,
    /// half-range radius, 2 exchange iterations.
    pub fn paper_default() -> Self {
        SadsConfig {
            segments: 4,
            radius_frac: 0.5,
            refine_iters: 2,
        }
    }

    /// Derives the per-layer configuration from a tile size `bc`
    /// (`segments = ceil(S / Bc)`).
    pub fn from_tile_size(
        seq_len: usize,
        bc: usize,
        radius_frac: f64,
        refine_iters: usize,
    ) -> Self {
        let segments = seq_len.div_ceil(bc.max(1)).max(1);
        SadsConfig {
            segments,
            radius_frac,
            refine_iters,
        }
    }
}

impl Default for SadsConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Selects the top-k indices of one row with distributed sub-segment sorting.
/// The returned indices are ordered by descending value (so index 0 is the
/// predicted maximum — the hint SU-FA consumes).
pub fn sads_topk_row(row: &[f32], k: usize, cfg: &SadsConfig, ops: &mut OpCounts) -> Vec<usize> {
    let s = row.len();
    if s == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(s);
    let n = cfg.segments.min(s);
    let seg_len = s.div_ceil(n);

    // Per-segment quota: distribute k as evenly as possible.
    let base = k / n;
    let extra = k % n;

    let mut selected: Vec<usize> = Vec::with_capacity(k + n);
    let mut excluded_candidates: Vec<usize> = Vec::new();

    for seg in 0..n {
        let lo = seg * seg_len;
        if lo >= s {
            break;
        }
        let hi = ((seg + 1) * seg_len).min(s);
        let quota = base + usize::from(seg < extra);

        // Segment max / min with one comparison per element.
        let mut seg_max = f32::NEG_INFINITY;
        let mut seg_min = f32::INFINITY;
        for &v in &row[lo..hi] {
            ops.record(OpKind::Cmp, 1);
            if v > seg_max {
                seg_max = v;
            }
            if v < seg_min {
                seg_min = v;
            }
        }
        let range = (seg_max - seg_min).max(f32::EPSILON);
        let threshold = seg_max - range * cfg.radius_frac as f32;

        // Clipping: gather in-radius candidates (one comparison each).
        let mut candidates: Vec<usize> = Vec::new();
        let mut clipped: Vec<usize> = Vec::new();
        for (off, &v) in row[lo..hi].iter().enumerate() {
            ops.record(OpKind::Cmp, 1);
            if v >= threshold {
                candidates.push(lo + off);
            } else {
                clipped.push(lo + off);
            }
        }
        // Adaptive clipping (Threshold-Updating unit): if the radius would
        // starve the quota, the threshold falls back to the low bound and the
        // clipped values re-enter the candidate pool.
        if candidates.len() < quota {
            candidates.append(&mut clipped);
        }
        excluded_candidates.extend_from_slice(&clipped);

        // Local selection of the quota largest candidates. The streaming
        // bitonic cores keep a small sorted working set and merge 12 new
        // values per round; a bounded min-heap has the same comparison
        // profile (one compare per streamed value plus log(quota) on the rare
        // replacements).
        let (kept, spilled) = select_top_q(row, &candidates, quota, ops);
        // Candidates beyond the quota remain available for the exchange step.
        excluded_candidates.extend_from_slice(&spilled);
        selected.extend_from_slice(&kept);
    }

    // If short trailing segments could not meet their quota, top the selection
    // up from the best excluded candidates so exactly k entries are returned.
    while selected.len() < k && !excluded_candidates.is_empty() {
        let mut best = 0;
        for i in 1..excluded_candidates.len() {
            ops.record(OpKind::Cmp, 1);
            if row[excluded_candidates[i]] > row[excluded_candidates[best]] {
                best = i;
            }
        }
        selected.push(excluded_candidates.swap_remove(best));
    }

    // Adjustive exchange: recover misplaced values across segment borders.
    for _ in 0..cfg.refine_iters {
        if selected.is_empty() || excluded_candidates.is_empty() {
            break;
        }
        // Find min of selected and max of excluded.
        let mut min_sel = 0;
        for i in 1..selected.len() {
            ops.record(OpKind::Cmp, 1);
            if row[selected[i]] < row[selected[min_sel]] {
                min_sel = i;
            }
        }
        let mut max_exc = 0;
        for i in 1..excluded_candidates.len() {
            ops.record(OpKind::Cmp, 1);
            if row[excluded_candidates[i]] > row[excluded_candidates[max_exc]] {
                max_exc = i;
            }
        }
        ops.record(OpKind::Cmp, 1);
        if row[excluded_candidates[max_exc]] > row[selected[min_sel]] {
            std::mem::swap(&mut selected[min_sel], &mut excluded_candidates[max_exc]);
        } else {
            break;
        }
    }

    // Order the final selection by descending value. Only the top-1/top-2
    // order actually matters downstream, but keeping the list sorted makes the
    // mask easier to consume; the comparisons are counted.
    let cmp_counter = std::cell::Cell::new(0u64);
    selected.sort_by(|&a, &b| {
        cmp_counter.set(cmp_counter.get() + 1);
        row[b]
            .partial_cmp(&row[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    ops.record(OpKind::Cmp, cmp_counter.get());
    selected.truncate(k);
    selected
}

/// Streaming selection of the `quota` largest candidate indices using a
/// bounded min-heap; returns `(kept, spilled)` and counts comparisons.
fn select_top_q(
    row: &[f32],
    candidates: &[usize],
    quota: usize,
    ops: &mut OpCounts,
) -> (Vec<usize>, Vec<usize>) {
    if quota == 0 {
        return (Vec::new(), candidates.to_vec());
    }
    if candidates.len() <= quota {
        return (candidates.to_vec(), Vec::new());
    }
    // `heap` is a min-heap over the kept indices (by value).
    let mut heap: Vec<usize> = Vec::with_capacity(quota);
    let mut spilled: Vec<usize> = Vec::new();

    let sift_up = |heap: &mut Vec<usize>, ops: &mut OpCounts, mut i: usize| {
        while i > 0 {
            let parent = (i - 1) / 2;
            ops.record(OpKind::Cmp, 1);
            if row[heap[i]] < row[heap[parent]] {
                heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    };
    let sift_down = |heap: &mut Vec<usize>, ops: &mut OpCounts| {
        let n = heap.len();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n {
                ops.record(OpKind::Cmp, 1);
                if row[heap[l]] < row[heap[smallest]] {
                    smallest = l;
                }
            }
            if r < n {
                ops.record(OpKind::Cmp, 1);
                if row[heap[r]] < row[heap[smallest]] {
                    smallest = r;
                }
            }
            if smallest == i {
                break;
            }
            heap.swap(i, smallest);
            i = smallest;
        }
    };

    for &c in candidates {
        if heap.len() < quota {
            heap.push(c);
            let i = heap.len() - 1;
            sift_up(&mut heap, ops, i);
        } else {
            ops.record(OpKind::Cmp, 1);
            if row[c] > row[heap[0]] {
                let evicted = std::mem::replace(&mut heap[0], c);
                spilled.push(evicted);
                sift_down(&mut heap, ops);
            } else {
                spilled.push(c);
            }
        }
    }
    (heap, spilled)
}

/// Runs SADS over every row of a predicted score matrix.
///
/// Rows are independent (the Distributed Cluster Effect is a per-row
/// property), so they fan out across CPU cores via `sofa_par::par_map_index`.
/// Each row tallies its own [`OpCounts`]; the tallies are summed in row
/// order afterwards, so both the mask and the operation counts are
/// bit-identical to the sequential loop at any `SOFA_THREADS` setting.
pub fn sads_topk(scores: &Matrix, k: usize, cfg: &SadsConfig) -> (TopKMask, OpCounts) {
    let per_row = sofa_par::par_map_index(scores.rows(), |i| {
        let mut ops = OpCounts::new();
        let selected = sads_topk_row(scores.row(i), k, cfg, &mut ops);
        (selected, ops)
    });
    let mut ops = OpCounts::new();
    let rows = per_row
        .into_iter()
        .map(|(selected, row_ops)| {
            ops += row_ops;
            selected
        })
        .collect();
    (TopKMask::new(scores.cols(), rows), ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::{topk_exact, topk_row_exact};
    use sofa_model::{DistributionType, ScoreDistribution, ScoreWorkload};
    use sofa_tensor::seeded_rng;
    use sofa_tensor::stats::recall;

    #[test]
    fn config_validation() {
        assert!(SadsConfig::new(0, 0.5, 1).is_err());
        assert!(SadsConfig::new(4, 0.0, 1).is_err());
        assert!(SadsConfig::new(4, 1.5, 1).is_err());
        assert!(SadsConfig::new(4, 1.0, 0).is_ok());
        let d = SadsConfig::default();
        assert_eq!(d.segments, 4);
    }

    #[test]
    fn from_tile_size_computes_segment_count() {
        let c = SadsConfig::from_tile_size(1024, 16, 0.5, 2);
        assert_eq!(c.segments, 64);
        let c = SadsConfig::from_tile_size(100, 0, 0.5, 2);
        assert_eq!(c.segments, 100, "tile size clamps to 1");
    }

    #[test]
    fn sads_row_handles_edge_cases() {
        let cfg = SadsConfig::paper_default();
        let mut ops = OpCounts::new();
        assert!(sads_topk_row(&[], 4, &cfg, &mut ops).is_empty());
        assert!(sads_topk_row(&[1.0, 2.0], 0, &cfg, &mut ops).is_empty());
        let got = sads_topk_row(&[1.0, 2.0], 10, &cfg, &mut ops);
        assert_eq!(got.len(), 2);
        // Constant rows must not panic (range == 0).
        let got = sads_topk_row(&[3.0; 16], 4, &cfg, &mut ops);
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn sads_returns_descending_order_and_exact_count() {
        let cfg = SadsConfig::paper_default();
        let mut ops = OpCounts::new();
        let row: Vec<f32> = (0..64).map(|i| ((i * 37) % 64) as f32).collect();
        let got = sads_topk_row(&row, 16, &cfg, &mut ops);
        assert_eq!(got.len(), 16);
        for w in got.windows(2) {
            assert!(row[w[0]] >= row[w[1]], "must be sorted descending");
        }
    }

    #[test]
    fn sads_recall_is_high_on_realistic_distributions() {
        // Fig. 9: for Type-I and Type-II rows SADS captures the dominant values.
        let w = ScoreWorkload::generate(&ScoreDistribution::bert_like(), 64, 512, 21);
        let k = 512 / 5;
        let cfg = SadsConfig::paper_default();
        let mut total = 0.0;
        for i in 0..w.queries() {
            let mut ops = OpCounts::new();
            let got = sads_topk_row(w.scores.row(i), k, &cfg, &mut ops);
            let mut ops2 = OpCounts::new();
            let exact = topk_row_exact(w.scores.row(i), k, &mut ops2);
            total += recall(&got, &exact);
        }
        let avg = total / w.queries() as f64;
        assert!(avg > 0.80, "SADS recall vs exact top-k too low: {avg}");
    }

    #[test]
    fn sads_captures_type1_dominant_values_regardless_of_segment() {
        // Scenario 1 of Fig. 9: Type-I rows — the few dominant values must
        // always be selected.
        let mut rng = seeded_rng(5);
        let dist = ScoreDistribution::gpt_like();
        let cfg = SadsConfig::paper_default();
        for _ in 0..20 {
            let row = dist.generate_row_of_type(256, DistributionType::TypeI, &mut rng);
            let mut ops = OpCounts::new();
            let got = sads_topk_row(&row, 32, &cfg, &mut ops);
            let mut ops2 = OpCounts::new();
            let exact_top4 = topk_row_exact(&row, 4, &mut ops2);
            let got_set: std::collections::HashSet<usize> = got.into_iter().collect();
            // The single strongest value must always be captured.
            assert!(got_set.contains(&exact_top4[0]), "argmax must be selected");
        }
    }

    #[test]
    fn sads_uses_fewer_comparisons_than_full_sort() {
        let w = ScoreWorkload::generate(&ScoreDistribution::llama_like(), 16, 2048, 31);
        let k = 2048 / 5;
        let cfg = SadsConfig::new(16, 0.5, 2).unwrap();
        let (_, sads_ops) = sads_topk(&w.scores, k, &cfg);
        let mut exact_ops = OpCounts::new();
        let _ = topk_exact(&w.scores, k, &mut exact_ops);
        assert!(
            sads_ops.cmp < exact_ops.cmp,
            "SADS comparisons {} should be below full sort {}",
            sads_ops.cmp,
            exact_ops.cmp
        );
    }

    #[test]
    fn more_segments_cost_fewer_comparisons() {
        let w = ScoreWorkload::generate(&ScoreDistribution::bert_like(), 8, 1024, 77);
        let k = 128;
        let few = SadsConfig::new(2, 0.5, 2).unwrap();
        let many = SadsConfig::new(32, 0.5, 2).unwrap();
        let (_, ops_few) = sads_topk(&w.scores, k, &few);
        let (_, ops_many) = sads_topk(&w.scores, k, &many);
        assert!(
            ops_many.cmp < ops_few.cmp,
            "32 segments ({}) should compare less than 2 segments ({})",
            ops_many.cmp,
            ops_few.cmp
        );
    }

    #[test]
    fn refinement_improves_recall() {
        let w = ScoreWorkload::generate(&ScoreDistribution::vit_like(), 32, 512, 13);
        let k = 64;
        let no_refine = SadsConfig::new(8, 0.4, 0).unwrap();
        let refine = SadsConfig::new(8, 0.4, 4).unwrap();
        let mut r0 = 0.0;
        let mut r4 = 0.0;
        for i in 0..w.queries() {
            let mut ops = OpCounts::new();
            let exact = topk_row_exact(w.scores.row(i), k, &mut ops);
            let g0 = sads_topk_row(w.scores.row(i), k, &no_refine, &mut OpCounts::new());
            let g4 = sads_topk_row(w.scores.row(i), k, &refine, &mut OpCounts::new());
            r0 += recall(&g0, &exact);
            r4 += recall(&g4, &exact);
        }
        assert!(
            r4 >= r0,
            "refinement should not reduce recall ({r4} vs {r0})"
        );
    }

    #[test]
    fn mask_from_sads_has_requested_k() {
        let w = ScoreWorkload::generate(&ScoreDistribution::bert_like(), 4, 256, 3);
        let (mask, _) = sads_topk(&w.scores, 32, &SadsConfig::paper_default());
        assert_eq!(mask.queries(), 4);
        for r in mask.iter() {
            assert_eq!(r.len(), 32);
        }
    }
}
