//! FlashAttention-1/2 references and the un-tiled vanilla attention, all with
//! operation accounting (paper §II-B, Fig. 5).
//!
//! FlashAttention removes the off-chip round trip of the S×S score matrix by
//! tiling the keys/values and maintaining an *online* softmax (running maximum
//! `m`, running denominator `l`, running output `O`). The price is extra
//! non-linear work: every tile refreshes the running maximum, adds a
//! correction exponentiation and rescales the accumulator. SOFA's SU-FA (see
//! [`crate::sufa`]) removes exactly this overhead by consuming the sorting
//! information from the top-k stage.

use crate::ops::{OpCounts, OpKind};
use sofa_tensor::Matrix;

/// Which FlashAttention formulation to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashVersion {
    /// FlashAttention-1: the accumulator is renormalised by `l` on every tile.
    V1,
    /// FlashAttention-2: the division by `l` is deferred to the very end.
    V2,
}

/// Tiling configuration for the FlashAttention references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashConfig {
    /// Key/value tile size `Bc`.
    pub tile_size: usize,
    /// Formulation to model.
    pub version: FlashVersion,
}

impl FlashConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `tile_size == 0`.
    pub fn new(tile_size: usize, version: FlashVersion) -> Self {
        assert!(tile_size > 0, "tile size must be positive");
        FlashConfig { tile_size, version }
    }
}

/// Un-tiled ("vanilla") exact attention with operation accounting: the whole
/// score row is materialised, soft-maxed once and multiplied with V.
pub fn vanilla_attention_counted(q: &Matrix, k: &Matrix, v: &Matrix, ops: &mut OpCounts) -> Matrix {
    assert_eq!(q.cols(), k.cols(), "Q and K head dims must match");
    assert_eq!(k.rows(), v.rows(), "K and V lengths must match");
    let d = q.cols();
    let s = k.rows();
    let scale = 1.0 / (d as f32).sqrt();
    let mut out = Matrix::zeros(q.rows(), v.cols());

    for i in 0..q.rows() {
        let qrow = q.row(i);
        // Scores.
        let mut scores = vec![0.0f32; s];
        for (j, sc) in scores.iter_mut().enumerate() {
            let krow = k.row(j);
            let mut acc = 0.0;
            for (a, b) in qrow.iter().zip(krow.iter()) {
                acc += a * b;
            }
            *sc = acc * scale;
        }
        ops.record(OpKind::Mul, (s * d) as u64);
        ops.record(OpKind::Add, (s * d) as u64);

        // Row max.
        let mut m = f32::NEG_INFINITY;
        for &sc in &scores {
            if sc > m {
                m = sc;
            }
        }
        ops.record(OpKind::Cmp, s as u64);

        // Softmax.
        let mut l = 0.0f32;
        let mut probs = vec![0.0f32; s];
        for (p, &sc) in probs.iter_mut().zip(scores.iter()) {
            *p = (sc - m).exp();
            l += *p;
        }
        ops.record(OpKind::Exp, s as u64);
        ops.record(OpKind::Add, s as u64);
        for p in probs.iter_mut() {
            *p /= l;
        }
        ops.record(OpKind::Div, s as u64);

        // Probabilities × V.
        let orow = out.row_mut(i);
        for (j, &p) in probs.iter().enumerate() {
            let vrow = v.row(j);
            for (o, &vv) in orow.iter_mut().zip(vrow.iter()) {
                *o += p * vv;
            }
        }
        ops.record(OpKind::Mul, (s * d) as u64);
        ops.record(OpKind::Add, (s * d) as u64);
    }
    out
}

/// Tiled FlashAttention (v1 or v2) with operation accounting. Numerically
/// equivalent to dense attention.
pub fn flash_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    cfg: &FlashConfig,
    ops: &mut OpCounts,
) -> Matrix {
    assert_eq!(q.cols(), k.cols(), "Q and K head dims must match");
    assert_eq!(k.rows(), v.rows(), "K and V lengths must match");
    let d = q.cols();
    let s = k.rows();
    let dv = v.cols();
    let bc = cfg.tile_size.min(s.max(1));
    let scale = 1.0 / (d as f32).sqrt();
    let mut out = Matrix::zeros(q.rows(), dv);

    for i in 0..q.rows() {
        let qrow = q.row(i);
        let mut m = f32::NEG_INFINITY;
        let mut l = 0.0f32;
        let mut acc = vec![0.0f32; dv];

        let mut start = 0;
        while start < s {
            let end = (start + bc).min(s);
            let tile = end - start;

            // Tile scores.
            let mut scores = vec![0.0f32; tile];
            for (t, sc) in scores.iter_mut().enumerate() {
                let krow = k.row(start + t);
                let mut a = 0.0;
                for (x, y) in qrow.iter().zip(krow.iter()) {
                    a += x * y;
                }
                *sc = a * scale;
            }
            ops.record(OpKind::Mul, (tile * d) as u64);
            ops.record(OpKind::Add, (tile * d) as u64);

            // Tile row max and running-max refresh.
            let mut tile_max = f32::NEG_INFINITY;
            for &sc in &scores {
                if sc > tile_max {
                    tile_max = sc;
                }
            }
            ops.record(OpKind::Cmp, tile as u64);
            let new_m = if tile_max > m { tile_max } else { m };
            ops.record(OpKind::Cmp, 1);

            // Correction factor for the previous accumulator.
            let corr = if m == f32::NEG_INFINITY {
                0.0
            } else {
                (m - new_m).exp()
            };
            ops.record(OpKind::Exp, 1);

            // Probabilities of the tile.
            let mut tile_sum = 0.0f32;
            let mut probs = vec![0.0f32; tile];
            for (p, &sc) in probs.iter_mut().zip(scores.iter()) {
                *p = (sc - new_m).exp();
                tile_sum += *p;
            }
            ops.record(OpKind::Exp, tile as u64);
            ops.record(OpKind::Add, tile as u64);

            // l and O updates.
            l = l * corr + tile_sum;
            ops.record(OpKind::Mul, 1);
            ops.record(OpKind::Add, 1);
            for a in acc.iter_mut() {
                *a *= corr;
            }
            ops.record(OpKind::Mul, dv as u64);
            for (t, &p) in probs.iter().enumerate() {
                let vrow = v.row(start + t);
                for (a, &vv) in acc.iter_mut().zip(vrow.iter()) {
                    *a += p * vv;
                }
            }
            ops.record(OpKind::Mul, (tile * dv) as u64);
            ops.record(OpKind::Add, (tile * dv) as u64);

            if cfg.version == FlashVersion::V1 {
                // FA-1 renormalises the accumulator by l on every tile (and
                // undoes it on the next), costing an extra divide + multiply
                // per output element per tile.
                ops.record(OpKind::Div, dv as u64);
                ops.record(OpKind::Mul, dv as u64);
            }

            m = new_m;
            start = end;
        }

        // Final normalisation by l.
        let orow = out.row_mut(i);
        for (o, a) in orow.iter_mut().zip(acc.iter()) {
            *o = a / l;
        }
        ops.record(OpKind::Div, dv as u64);
    }
    out
}

/// Analytical extra-operation model of FA-2 relative to vanilla attention for
/// `t` query rows, sequence length `s` and tile size `bc`: returns
/// `(extra_exp, extra_cmp)`. Used to regenerate Fig. 5(b) at sequence lengths
/// too large to execute.
pub fn fa2_extra_ops(t: usize, s: usize, bc: usize) -> (u64, u64) {
    let tiles = s.div_ceil(bc.max(1)) as u64;
    let t = t as u64;
    // One correction exponentiation and one running-max comparison per tile
    // per row beyond what the single-pass softmax needs.
    (t * tiles, t * tiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofa_model::{AttentionWorkload, ScoreDistribution};
    use sofa_tensor::attention::dense_attention;
    use sofa_tensor::stats::max_abs_diff;

    fn workload(queries: usize, s: usize) -> (Matrix, Matrix, Matrix) {
        let w = AttentionWorkload::generate(&ScoreDistribution::bert_like(), queries, s, 32, 16, 5);
        (w.q.clone(), w.keys(), w.values())
    }

    #[test]
    fn vanilla_counted_matches_dense() {
        let (q, k, v) = workload(6, 64);
        let mut ops = OpCounts::new();
        let got = vanilla_attention_counted(&q, &k, &v, &mut ops);
        let want = dense_attention(&q, &k, &v);
        assert!(max_abs_diff(&got, &want) < 1e-4);
        assert!(ops.exp > 0 && ops.div > 0);
    }

    #[test]
    fn flash_v2_matches_dense_for_various_tiles() {
        let (q, k, v) = workload(4, 100);
        let want = dense_attention(&q, &k, &v);
        for bc in [1usize, 4, 16, 33, 100, 128] {
            let mut ops = OpCounts::new();
            let cfg = FlashConfig::new(bc, FlashVersion::V2);
            let got = flash_attention(&q, &k, &v, &cfg, &mut ops);
            assert!(
                max_abs_diff(&got, &want) < 1e-3,
                "tile size {bc} diverges from dense"
            );
        }
    }

    #[test]
    fn flash_v1_matches_dense() {
        let (q, k, v) = workload(3, 48);
        let want = dense_attention(&q, &k, &v);
        let mut ops = OpCounts::new();
        let got = flash_attention(&q, &k, &v, &FlashConfig::new(8, FlashVersion::V1), &mut ops);
        assert!(max_abs_diff(&got, &want) < 1e-3);
    }

    #[test]
    fn fa2_costs_more_exp_and_cmp_than_vanilla() {
        // Fig. 5(b): tiling increases exponential and comparison counts.
        let (q, k, v) = workload(8, 256);
        let mut vanilla = OpCounts::new();
        let _ = vanilla_attention_counted(&q, &k, &v, &mut vanilla);
        let mut fa2 = OpCounts::new();
        let _ = flash_attention(
            &q,
            &k,
            &v,
            &FlashConfig::new(16, FlashVersion::V2),
            &mut fa2,
        );
        assert!(fa2.exp > vanilla.exp);
        assert!(fa2.cmp > vanilla.cmp);
    }

    #[test]
    fn smaller_tiles_increase_fa2_overhead() {
        // Fig. 5(c): the overhead scales with the number of tiles Tc.
        let (q, k, v) = workload(4, 256);
        let mut small = OpCounts::new();
        let _ = flash_attention(
            &q,
            &k,
            &v,
            &FlashConfig::new(4, FlashVersion::V2),
            &mut small,
        );
        let mut large = OpCounts::new();
        let _ = flash_attention(
            &q,
            &k,
            &v,
            &FlashConfig::new(64, FlashVersion::V2),
            &mut large,
        );
        assert!(small.exp > large.exp);
        assert!(small.normalized_complexity() > large.normalized_complexity());
    }

    #[test]
    fn fa1_costs_more_than_fa2() {
        let (q, k, v) = workload(4, 128);
        let mut v1 = OpCounts::new();
        let _ = flash_attention(&q, &k, &v, &FlashConfig::new(16, FlashVersion::V1), &mut v1);
        let mut v2 = OpCounts::new();
        let _ = flash_attention(&q, &k, &v, &FlashConfig::new(16, FlashVersion::V2), &mut v2);
        assert!(v1.normalized_complexity() > v2.normalized_complexity());
    }

    #[test]
    fn analytical_extra_ops_scale_with_tiles_and_rows() {
        let (e1, c1) = fa2_extra_ops(128, 2048, 16);
        let (e2, c2) = fa2_extra_ops(128, 2048, 4);
        assert_eq!(e1, 128 * 128);
        assert_eq!(c1, e1);
        assert!(e2 > e1 && c2 > c1);
        let (e3, _) = fa2_extra_ops(256, 2048, 16);
        assert_eq!(e3, 2 * e1);
    }

    #[test]
    #[should_panic(expected = "tile size")]
    fn zero_tile_size_panics() {
        let _ = FlashConfig::new(0, FlashVersion::V2);
    }
}
