//! The SOFA algorithms — the paper's primary contribution.
//!
//! SOFA accelerates dynamic-sparsity Transformer attention for large-scale
//! token parallel processing (LTPP) with three cross-stage-coordinated
//! mechanisms:
//!
//! * [`dlzs`] — **D**ifferential **L**eading **Z**ero **S**ummation: a
//!   multiplier-free, log-domain prediction of the attention matrix used to
//!   find the vital Q-K pairs cheaply (paper §III-A).
//! * [`sads`] — **S**phere-search **A**ided **D**istributed **S**orting: the
//!   top-k stage is split into independent sub-segment sorts exploiting the
//!   Distributed Cluster Effect, enabling tiled execution (paper §III-B).
//! * [`sufa`] — **S**orted-**U**pdating **F**lash**A**ttention: a tiled
//!   formal-compute stage that consumes the sorting information so the softmax
//!   running maximum never needs to be re-derived (paper §III-C).
//!
//! Supporting modules: [`lze`] (leading-zero encoding), [`topk`] (exact
//! baselines and masks), [`flash`] (FlashAttention-1/2 references), [`ops`]
//! (operation accounting with the arithmetic-complexity model), [`pipeline`]
//! (the end-to-end cross-stage tiled dataflow) and [`accuracy`]
//! (accuracy-proxy evaluation). The design-space exploration of tile sizes
//! and top-k (paper §III-D) lives in the `sofa-dse` crate, which closes the
//! search loop against the hardware models and the cycle simulator.
//!
//! # Example
//!
//! ```
//! use sofa_core::pipeline::{SofaPipeline, PipelineConfig};
//! use sofa_model::{ScoreDistribution, AttentionWorkload};
//!
//! let dist = ScoreDistribution::bert_like();
//! let w = AttentionWorkload::generate(&dist, 8, 128, 64, 32, 1);
//! let cfg = PipelineConfig::new(0.25, 16).unwrap();
//! let result = SofaPipeline::new(cfg).run(&w);
//! assert_eq!(result.output.shape(), (8, 32));
//! ```

pub mod accuracy;
pub mod cache;
pub mod dlzs;
pub mod flash;
pub mod lze;
pub mod ops;
pub mod pipeline;
pub mod sads;
pub mod sufa;
pub mod tiling;
pub mod topk;

pub use cache::{CacheStats, LoweringCache, ShapeKey};
pub use dlzs::DlzsPredictor;
pub use ops::{OpCounts, OpKind};
pub use sads::SadsConfig;
pub use sufa::{sorted_updating_attention, SuFaOrder};
pub use tiling::TileSelectionStats;
pub use topk::TopKMask;

/// Errors produced by the SOFA algorithm layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SofaError {
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Name of the parameter.
        param: &'static str,
        /// Explanation of the constraint that was violated.
        reason: String,
    },
    /// Input shapes were inconsistent with the configuration.
    ShapeMismatch {
        /// Description of the mismatch.
        detail: String,
    },
}

impl std::fmt::Display for SofaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SofaError::InvalidConfig { param, reason } => {
                write!(f, "invalid configuration for `{param}`: {reason}")
            }
            SofaError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
        }
    }
}

impl std::error::Error for SofaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SofaError::InvalidConfig {
            param: "keep_ratio",
            reason: "must be in (0, 1]".to_string(),
        };
        assert!(e.to_string().contains("keep_ratio"));
        let e = SofaError::ShapeMismatch {
            detail: "Q vs K".to_string(),
        };
        assert!(e.to_string().contains("Q vs K"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SofaError>();
    }
}
