//! Leading-zero encoding (LZE) — the log-domain representation behind DLZS.
//!
//! An integer `x` is approximated by its sign and the position of its most
//! significant set bit: `|x| ≈ 2^(e-1)` where `e = W − LZ(x)` (`W` = bit
//! width, `LZ` = leading-zero count). The paper calls `e` the leading-zero
//! code; weights are pre-converted to this 4-bit code offline so the
//! pre-compute stage never multiplies — it only shifts the full-precision
//! operand by `e − 1`.
//!
//! Two multiplication approximations are provided:
//!
//! * [`approx_mul_dlzs`] — *differential*: one operand keeps full precision,
//!   the other contributes only its exponent (one shift). This is SOFA's
//!   scheme: `24 × 6 ≈ 24 << 2 = 96` (exact 144).
//! * [`approx_mul_vanilla`] — both operands are reduced to powers of two:
//!   `24 × 6 ≈ 16 × 4 = 64`. Twice the converters and roughly twice the error
//!   (paper Fig. 7(b)/(c)).

/// A leading-zero code: sign plus MSB position (`0` encodes the value zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LzCode {
    /// `true` if the encoded value was negative.
    pub negative: bool,
    /// MSB position `e = W − LZ(|x|)`; `0` means the value was zero.
    /// For 8-bit inputs `e ∈ 0..=8` (4-bit code), for 16-bit inputs
    /// `e ∈ 0..=16` (5-bit code).
    pub exponent: u8,
}

impl LzCode {
    /// The code for zero.
    pub const ZERO: LzCode = LzCode {
        negative: false,
        exponent: 0,
    };

    /// Returns `true` if this code represents zero.
    pub fn is_zero(&self) -> bool {
        self.exponent == 0
    }

    /// The approximate magnitude `2^(e-1)` this code stands for (0 for zero).
    pub fn magnitude(&self) -> i64 {
        if self.exponent == 0 {
            0
        } else {
            1i64 << (self.exponent - 1)
        }
    }

    /// The approximate signed value.
    pub fn value(&self) -> i64 {
        if self.negative {
            -self.magnitude()
        } else {
            self.magnitude()
        }
    }

    /// Number of storage bits of this code for a `width`-bit source operand:
    /// `ceil(log2(width+1))` exponent bits plus one sign bit.
    pub fn storage_bits(width: u32) -> u32 {
        let mut bits = 0;
        while (1u32 << bits) < width + 1 {
            bits += 1;
        }
        bits + 1
    }
}

/// Encodes an integer that is known to fit in `width` bits (signed).
///
/// # Panics
///
/// Panics if `width` is not 8 or 16, or if `value` does not fit in `width`
/// signed bits.
pub fn encode(value: i32, width: u32) -> LzCode {
    assert!(width == 8 || width == 16, "only 8- and 16-bit modes exist");
    let limit = 1i32 << (width - 1);
    assert!(
        value >= -limit && value < limit || value == limit - 1 || value == -limit,
        "value {value} does not fit in {width} signed bits"
    );
    let mag = value.unsigned_abs();
    if mag == 0 {
        return LzCode::ZERO;
    }
    let e = 32 - mag.leading_zeros();
    LzCode {
        negative: value < 0,
        exponent: e as u8,
    }
}

/// Encodes an 8-bit value (the weight/token path of the DLZS engine).
pub fn encode_i8(value: i8) -> LzCode {
    encode(value as i32, 8)
}

/// Encodes a 16-bit value (the Q path of the attention-prediction phase).
pub fn encode_i16(value: i16) -> LzCode {
    encode(value as i32, 16)
}

/// The hardware-style configurable leading-zero encoder: two 8-bit leading
/// zero counters that work independently in 8-bit mode or are chained in
/// 16-bit mode (paper Fig. 12, left).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigurableLze {
    /// Operating width: 8 or 16 bits.
    pub width: u32,
}

impl ConfigurableLze {
    /// Creates an encoder in the given mode.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 8 or 16.
    pub fn new(width: u32) -> Self {
        assert!(width == 8 || width == 16, "only 8- and 16-bit modes exist");
        ConfigurableLze { width }
    }

    /// Encodes one value in the configured mode.
    pub fn encode(&self, value: i32) -> LzCode {
        encode(value, self.width)
    }

    /// Encodes a slice of values, returning the codes.
    pub fn encode_all(&self, values: &[i32]) -> Vec<LzCode> {
        values.iter().map(|&v| self.encode(v)).collect()
    }
}

/// DLZS multiplication: the full-precision operand is shifted by the code's
/// exponent. `x · y ≈ sign · |x| << (e(y) − 1)`.
pub fn approx_mul_dlzs(full: i32, code: LzCode) -> i64 {
    if code.is_zero() || full == 0 {
        return 0;
    }
    let mag = (full.unsigned_abs() as i64) << (code.exponent - 1);
    let negative = (full < 0) ^ code.negative;
    if negative {
        -mag
    } else {
        mag
    }
}

/// Vanilla leading-zero multiplication: both operands reduced to their leading
/// one. `x · y ≈ sign · 2^(e(x)−1+e(y)−1)`.
pub fn approx_mul_vanilla(a: LzCode, b: LzCode) -> i64 {
    if a.is_zero() || b.is_zero() {
        return 0;
    }
    let mag = 1i64 << ((a.exponent - 1) + (b.exponent - 1));
    if a.negative ^ b.negative {
        -mag
    } else {
        mag
    }
}

/// Mean absolute relative error of an approximate-product function over all
/// pairs of the provided operand sets (exact zero products are skipped).
pub fn mean_relative_error<F>(lhs: &[i32], rhs: &[i32], mut approx: F) -> f64
where
    F: FnMut(i32, i32) -> i64,
{
    let mut total = 0.0;
    let mut n = 0u64;
    for &a in lhs {
        for &b in rhs {
            let exact = a as i64 * b as i64;
            if exact == 0 {
                continue;
            }
            let got = approx(a, b);
            total += ((exact - got).abs() as f64) / (exact.abs() as f64);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_zero_and_powers() {
        assert_eq!(encode_i8(0), LzCode::ZERO);
        assert!(encode_i8(0).is_zero());
        assert_eq!(encode_i8(1).exponent, 1);
        assert_eq!(encode_i8(2).exponent, 2);
        assert_eq!(encode_i8(64).exponent, 7);
        assert_eq!(encode_i8(127).exponent, 7);
        assert_eq!(encode_i8(-128).exponent, 8);
        assert!(encode_i8(-3).negative);
    }

    #[test]
    fn encode_i16_wide_values() {
        assert_eq!(encode_i16(255).exponent, 8);
        assert_eq!(encode_i16(256).exponent, 9);
        assert_eq!(encode_i16(i16::MAX).exponent, 15);
        assert_eq!(encode_i16(i16::MIN).exponent, 16);
    }

    #[test]
    fn code_magnitude_and_value() {
        let c = encode_i8(-24);
        assert_eq!(c.exponent, 5);
        assert_eq!(c.magnitude(), 16);
        assert_eq!(c.value(), -16);
        assert_eq!(LzCode::ZERO.value(), 0);
    }

    #[test]
    fn storage_bits_are_compact() {
        // 8-bit operands need a 4-bit exponent (0..=8) + sign.
        assert_eq!(LzCode::storage_bits(8), 5);
        // 16-bit operands need a 5-bit exponent (0..=16) + sign.
        assert_eq!(LzCode::storage_bits(16), 6);
    }

    #[test]
    fn paper_worked_example() {
        // 24 × 6 = 144. DLZS: 24 << (e(6)-1) = 24 << 2 = 96.
        // Vanilla: 16 × 4 = 64.
        let six = encode_i8(6);
        assert_eq!(approx_mul_dlzs(24, six), 96);
        assert_eq!(approx_mul_vanilla(encode_i8(24), six), 64);
        let exact = 144i64;
        assert!((exact - 96).abs() < (exact - 64).abs(), "DLZS is closer");
    }

    #[test]
    fn dlzs_sign_handling() {
        let c = encode_i8(-6);
        assert_eq!(approx_mul_dlzs(24, c), -96);
        assert_eq!(approx_mul_dlzs(-24, c), 96);
        assert_eq!(approx_mul_dlzs(0, c), 0);
        assert_eq!(approx_mul_dlzs(24, LzCode::ZERO), 0);
    }

    #[test]
    fn vanilla_sign_and_zero() {
        assert_eq!(approx_mul_vanilla(encode_i8(-8), encode_i8(8)), -64);
        assert_eq!(approx_mul_vanilla(LzCode::ZERO, encode_i8(5)), 0);
    }

    #[test]
    fn dlzs_error_is_lower_than_vanilla() {
        let xs: Vec<i32> = (-127..=127).step_by(3).collect();
        let ys: Vec<i32> = (-127..=127).step_by(7).collect();
        let dlzs_err = mean_relative_error(&xs, &ys, |a, b| approx_mul_dlzs(a, encode(b, 8)));
        let vanilla_err = mean_relative_error(&xs, &ys, |a, b| {
            approx_mul_vanilla(encode(a, 8), encode(b, 8))
        });
        assert!(
            dlzs_err < vanilla_err,
            "DLZS error {dlzs_err} must beat vanilla {vanilla_err}"
        );
        // The paper claims roughly half the error.
        assert!(dlzs_err < 0.75 * vanilla_err);
    }

    #[test]
    fn configurable_lze_modes() {
        let lze8 = ConfigurableLze::new(8);
        let lze16 = ConfigurableLze::new(16);
        assert_eq!(lze8.encode(100).exponent, 7);
        assert_eq!(lze16.encode(1000).exponent, 10);
        assert_eq!(lze8.encode_all(&[1, 2, 4]).len(), 3);
    }

    #[test]
    #[should_panic(expected = "8- and 16-bit")]
    fn invalid_width_panics() {
        let _ = ConfigurableLze::new(12);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn out_of_range_value_panics() {
        let _ = encode(300, 8);
    }

    #[test]
    fn dlzs_never_overestimates_by_more_than_2x() {
        // |x|·2^(e(y)-1) ≤ |x·y| < |x|·2^(e(y)), so the approximation is
        // within [0.5, 1] of the exact magnitude.
        for a in [-113i32, -5, 3, 77, 127] {
            for b in [-128i32, -9, 1, 6, 100] {
                let exact = (a as i64 * b as i64).abs();
                let approx = approx_mul_dlzs(a, encode(b, 8)).abs();
                assert!(approx <= exact, "{a}*{b}: {approx} > {exact}");
                assert!(2 * approx >= exact, "{a}*{b}: {approx} < half of {exact}");
            }
        }
    }
}
