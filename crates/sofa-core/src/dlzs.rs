//! Cross-phase DLZS sparsity prediction (paper §III-A, Fig. 7).
//!
//! The pre-compute stage of dynamic sparsity has to estimate the attention
//! matrix  just to decide which Q-K pairs matter, and at LTPP scale a naïve
//! low-precision matrix multiply already costs more power than the formal
//! computation it is trying to save. SOFA replaces every multiplication in
//! the prediction path with a shift:
//!
//! 1. **Offline** — the key projection weights `W_k` are quantised to 8 bits
//!    and converted once into 4-bit leading-zero codes ([`LzCode`]).
//! 2. **Key-prediction phase** — `K̂ = X ⊙ W_k` where `⊙` shifts the 8-bit
//!    token value by the weight's exponent and accumulates (no multiplier, no
//!    on-line converter).
//! 3. **Attention-prediction phase** — `Q` is converted to 5-bit codes by the
//!    configurable LZE (to avoid compounding the error, the *other* operand
//!    `K̂` keeps its 16-bit value) and `Â = K̂ ⊙ Q` is again a shift-add.
//!
//! Two baselines are provided for the ablation experiments: a 4-bit
//! multiplication predictor (what prior accelerators do) and the vanilla
//! leading-one scheme that converts *both* operands.

use crate::lze::{approx_mul_dlzs, approx_mul_vanilla, encode, LzCode};
use crate::ops::{OpCounts, OpKind};
use sofa_tensor::fixed::{packed_bytes, Quantized};
use sofa_tensor::Matrix;

/// Operation and traffic statistics of one prediction pass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PredictionStats {
    /// Primitive operations executed.
    pub ops: OpCounts,
    /// Bytes of weight data that must be streamed from DRAM.
    pub weight_bytes: u64,
    /// Bytes of token/query activations streamed from DRAM.
    pub activation_bytes: u64,
}

impl PredictionStats {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes + self.activation_bytes
    }
}

/// The DLZS predictor with pre-converted `W_k` codes.
#[derive(Debug, Clone)]
pub struct DlzsPredictor {
    /// Leading-zero codes of the quantised `W_k`, shape `(input_dim, head_dim)`.
    wk_codes: Vec<LzCode>,
    input_dim: usize,
    head_dim: usize,
    /// Scale of the quantised weights (kept to report a consistently scaled K̂).
    wk_scale: f32,
}

impl DlzsPredictor {
    /// Pre-deployment preparation: quantises `wk` to 8 bits and converts it to
    /// leading-zero codes (paper Fig. 16, "Preprocess: Convert Wk in LZ
    /// format and store").
    pub fn prepare(wk: &Matrix) -> Self {
        let q = Quantized::from_matrix(8, wk);
        let codes = q
            .codes()
            .iter()
            .map(|&c| encode(c, 8))
            .collect::<Vec<LzCode>>();
        DlzsPredictor {
            wk_codes: codes,
            input_dim: wk.rows(),
            head_dim: wk.cols(),
            wk_scale: q.params.scale,
        }
    }

    /// Head dimension of the prepared weights.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Input (embedding) dimension of the prepared weights.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Bytes of DRAM the pre-converted weights occupy (4-bit exponent + sign
    /// packed into 5 bits per weight, as in the paper's storage analysis).
    pub fn weight_storage_bytes(&self) -> u64 {
        packed_bytes(self.wk_codes.len(), LzCode::storage_bits(8)) as u64
    }

    /// Phase 1.1 — predicts `K̂ = X · W_k` with shift-add only.
    ///
    /// `x` has shape `(seq_len, input_dim)`; the result has shape
    /// `(seq_len, head_dim)` and is returned on the same scale as an exact
    /// `X·W_k` product (so it can be compared against the true keys).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim`.
    pub fn predict_keys(&self, x: &Matrix, stats: &mut PredictionStats) -> Matrix {
        assert_eq!(x.cols(), self.input_dim, "token width mismatch");
        let xq = Quantized::from_matrix(8, x);
        let out_scale = xq.params.scale * self.wk_scale;
        // Token rows are independent: fan out across cores, tally one
        // OpCounts per row and sum them in row order afterwards, so both
        // K̂ and the counters are bit-identical to the sequential loop.
        let rows = sofa_par::par_map_index(x.rows(), |i| {
            let xrow = xq.row(i);
            let mut ops = OpCounts::new();
            let mut vals = vec![0.0f32; self.head_dim];
            for (j, slot) in vals.iter_mut().enumerate() {
                let mut acc: i64 = 0;
                for (n, &xv) in xrow.iter().enumerate() {
                    let code = self.wk_codes[n * self.head_dim + j];
                    if xv == 0 || code.is_zero() {
                        // The zero-eliminator removes these lanes in hardware.
                        continue;
                    }
                    acc += approx_mul_dlzs(xv, code);
                    ops.record(OpKind::Shift, 1);
                    ops.record(OpKind::Add, 1);
                }
                // Truncated to 16 bits in hardware before the next phase.
                let acc = acc.clamp(i16::MIN as i64, i16::MAX as i64);
                *slot = acc as f32 * out_scale;
            }
            (vals, ops)
        });
        let mut out = Matrix::zeros(x.rows(), self.head_dim);
        for (i, (vals, ops)) in rows.into_iter().enumerate() {
            out.row_mut(i).copy_from_slice(&vals);
            stats.ops += ops;
        }
        stats.weight_bytes += self.weight_storage_bytes();
        stats.activation_bytes += (x.rows() * x.cols()) as u64; // 8-bit tokens
        out
    }

    /// Phase 1.2 — predicts `Â = Q · K̂ᵀ` with `Q` converted to the log domain.
    ///
    /// `q` has shape `(queries, head_dim)`, `k_hat` has shape
    /// `(seq_len, head_dim)`; the result is `(queries, seq_len)`.
    ///
    /// # Panics
    ///
    /// Panics if the head dimensions disagree.
    pub fn predict_scores(
        &self,
        q: &Matrix,
        k_hat: &Matrix,
        stats: &mut PredictionStats,
    ) -> Matrix {
        assert_eq!(q.cols(), k_hat.cols(), "head dimension mismatch");
        let qq = Quantized::from_matrix(16, q);
        let kq = Quantized::from_matrix(16, k_hat);
        let out_scale = qq.params.scale * kq.params.scale;
        // Convert Q once per element (configurable 16-bit LZE).
        let q_codes: Vec<LzCode> = qq.codes().iter().map(|&c| encode(c, 16)).collect();
        stats.ops.record(OpKind::LzEncode, q_codes.len() as u64);

        // Query rows are independent — same fan-out/ordered-merge scheme as
        // the key-prediction phase (bit-identical at any thread count).
        let rows = sofa_par::par_map_index(q.rows(), |i| {
            let qrow = &q_codes[i * q.cols()..(i + 1) * q.cols()];
            let mut ops = OpCounts::new();
            let mut vals = vec![0.0f32; k_hat.rows()];
            for (j, slot) in vals.iter_mut().enumerate() {
                let krow = kq.row(j);
                let mut acc: i64 = 0;
                for (d, &code) in qrow.iter().enumerate() {
                    let kv = krow[d];
                    if kv == 0 || code.is_zero() {
                        continue;
                    }
                    acc += approx_mul_dlzs(kv, code);
                    ops.record(OpKind::Shift, 1);
                    ops.record(OpKind::Add, 1);
                }
                *slot = acc as f32 * out_scale;
            }
            (vals, ops)
        });
        let mut out = Matrix::zeros(q.rows(), k_hat.rows());
        for (i, (vals, ops)) in rows.into_iter().enumerate() {
            out.row_mut(i).copy_from_slice(&vals);
            stats.ops += ops;
        }
        stats.activation_bytes += (q.rows() * q.cols() * 2) as u64; // 16-bit Q
        out
    }

    /// Runs both phases: predicts `K̂` from the tokens, then `Â` from `Q` and
    /// `K̂`. Returns the predicted score matrix together with the statistics.
    pub fn predict(&self, x: &Matrix, q: &Matrix) -> (Matrix, PredictionStats) {
        let mut stats = PredictionStats::default();
        let k_hat = self.predict_keys(x, &mut stats);
        let scores = self.predict_scores(q, &k_hat, &mut stats);
        (scores, stats)
    }
}

/// Baseline: 4-bit integer multiplication prediction of `Q·Kᵀ` (what prior
/// dynamic-sparsity accelerators use in their pre-compute stage). The keys are
/// assumed to have been produced by an exact 8-bit `X·W_k`, whose cost is also
/// counted.
pub fn predict_scores_int4(
    x: &Matrix,
    wk: &Matrix,
    q: &Matrix,
    stats: &mut PredictionStats,
) -> Matrix {
    assert_eq!(x.cols(), wk.rows(), "token width mismatch");
    assert_eq!(q.cols(), wk.cols(), "head dimension mismatch");
    // K generation with 8-bit multiplications.
    let k = x.matmul(wk).expect("shapes checked");
    let macs_k = (x.rows() * x.cols() * wk.cols()) as u64;
    stats.ops.record(OpKind::Mul, macs_k);
    stats.ops.record(OpKind::Add, macs_k);

    // Score prediction with 4-bit multiplications.
    let q4 = Quantized::from_matrix(4, q);
    let k4 = Quantized::from_matrix(4, &k);
    let out_scale = q4.params.scale * k4.params.scale;
    let mut out = Matrix::zeros(q.rows(), k.rows());
    for i in 0..q.rows() {
        let qrow = q4.row(i);
        for j in 0..k.rows() {
            let krow = k4.row(j);
            let mut acc: i64 = 0;
            for (d, &qv) in qrow.iter().enumerate() {
                acc += qv as i64 * krow[d] as i64;
            }
            stats.ops.record(OpKind::Mul, qrow.len() as u64);
            stats.ops.record(OpKind::Add, qrow.len() as u64);
            out.set(i, j, acc as f32 * out_scale);
        }
    }
    stats.weight_bytes += (wk.rows() * wk.cols()) as u64; // 8-bit weights
    stats.activation_bytes += (x.rows() * x.cols()) as u64 + (q.rows() * q.cols()) as u64 / 2;
    out
}

/// Baseline: the vanilla leading-one/zero scheme that converts *both*
/// operands of every multiplication on the fly (paper Fig. 7(b) top).
pub fn predict_scores_vanilla_lz(
    x: &Matrix,
    wk: &Matrix,
    q: &Matrix,
    stats: &mut PredictionStats,
) -> Matrix {
    assert_eq!(x.cols(), wk.rows(), "token width mismatch");
    assert_eq!(q.cols(), wk.cols(), "head dimension mismatch");
    let xq = Quantized::from_matrix(8, x);
    let wq = Quantized::from_matrix(8, wk);
    let k_scale = xq.params.scale * wq.params.scale;

    // K prediction: both operands converted (2 LZEs per MAC operand pair).
    let mut k_hat = Matrix::zeros(x.rows(), wk.cols());
    for i in 0..x.rows() {
        for j in 0..wk.cols() {
            let mut acc: i64 = 0;
            for n in 0..x.cols() {
                let a = xq.code(i, n);
                let b = wq.code(n, j);
                if a == 0 || b == 0 {
                    continue;
                }
                acc += approx_mul_vanilla(encode(a, 8), encode(b, 8));
                stats.ops.record(OpKind::LzEncode, 2);
                stats.ops.record(OpKind::Shift, 1);
                stats.ops.record(OpKind::Add, 1);
            }
            let acc = acc.clamp(i16::MIN as i64, i16::MAX as i64);
            k_hat.set(i, j, acc as f32 * k_scale);
        }
    }

    // Â prediction, again converting both operands.
    let qq = Quantized::from_matrix(16, q);
    let kq = Quantized::from_matrix(16, &k_hat);
    let out_scale = qq.params.scale * kq.params.scale;
    let mut out = Matrix::zeros(q.rows(), k_hat.rows());
    for i in 0..q.rows() {
        for j in 0..k_hat.rows() {
            let mut acc: i64 = 0;
            for d in 0..q.cols() {
                let a = qq.code(i, d);
                let b = kq.code(j, d);
                if a == 0 || b == 0 {
                    continue;
                }
                acc += approx_mul_vanilla(encode(a, 16), encode(b, 16));
                stats.ops.record(OpKind::LzEncode, 2);
                stats.ops.record(OpKind::Shift, 1);
                stats.ops.record(OpKind::Add, 1);
            }
            out.set(i, j, acc as f32 * out_scale);
        }
    }
    // The vanilla scheme keeps full 8-bit weights/tokens in DRAM.
    stats.weight_bytes += (wk.rows() * wk.cols()) as u64;
    stats.activation_bytes += (x.rows() * x.cols()) as u64 + (q.rows() * q.cols() * 2) as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofa_model::{AttentionWorkload, ScoreDistribution};
    use sofa_tensor::stats::recall;

    fn top_indices(row: &[f32], k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap());
        idx.truncate(k);
        idx
    }

    fn mean_topk_recall(pred: &Matrix, exact: &Matrix, k: usize) -> f64 {
        let mut acc = 0.0;
        for i in 0..pred.rows() {
            let p = top_indices(pred.row(i), k);
            let e = top_indices(exact.row(i), k);
            acc += recall(&p, &e);
        }
        acc / pred.rows() as f64
    }

    fn workload() -> AttentionWorkload {
        AttentionWorkload::generate(&ScoreDistribution::bert_like(), 8, 96, 48, 32, 99)
    }

    #[test]
    fn dlzs_prediction_finds_vital_pairs() {
        let w = workload();
        let pred = DlzsPredictor::prepare(&w.wk);
        let (scores, stats) = pred.predict(&w.x, &w.q);
        assert_eq!(scores.shape(), (8, 96));
        let exact = w.exact_scores();
        let r = mean_topk_recall(&scores, &exact, 96 / 4);
        assert!(r > 0.7, "top-25% recall of DLZS prediction too low: {r}");
        assert_eq!(stats.ops.mul, 0, "DLZS must be multiplier-free");
        assert!(stats.ops.shift > 0);
    }

    #[test]
    fn dlzs_key_prediction_tracks_exact_keys() {
        let w = workload();
        let pred = DlzsPredictor::prepare(&w.wk);
        let mut stats = PredictionStats::default();
        let k_hat = pred.predict_keys(&w.x, &mut stats);
        let k = w.keys();
        // The log-domain approximation underestimates magnitudes by at most
        // 2x, so the correlation with the exact keys should still be strong.
        let cos = sofa_tensor::stats::mean_row_cosine(&k_hat, &k);
        assert!(cos > 0.8, "K̂ should correlate with K, cosine = {cos}");
    }

    #[test]
    fn dlzs_is_cheaper_than_int4_baseline() {
        let w = workload();
        let pred = DlzsPredictor::prepare(&w.wk);
        let (_, dlzs_stats) = pred.predict(&w.x, &w.q);
        let mut int4_stats = PredictionStats::default();
        let _ = predict_scores_int4(&w.x, &w.wk, &w.q, &mut int4_stats);
        assert!(
            dlzs_stats.ops.normalized_complexity() < int4_stats.ops.normalized_complexity(),
            "DLZS {} should beat 4-bit mul {}",
            dlzs_stats.ops.normalized_complexity(),
            int4_stats.ops.normalized_complexity()
        );
    }

    #[test]
    fn dlzs_uses_fewer_converters_and_bytes_than_vanilla() {
        let w = workload();
        let pred = DlzsPredictor::prepare(&w.wk);
        let (_, dlzs_stats) = pred.predict(&w.x, &w.q);
        let mut vanilla_stats = PredictionStats::default();
        let _ = predict_scores_vanilla_lz(&w.x, &w.wk, &w.q, &mut vanilla_stats);
        assert!(dlzs_stats.ops.lz_encode < vanilla_stats.ops.lz_encode / 2);
        assert!(dlzs_stats.weight_bytes < vanilla_stats.weight_bytes);
    }

    #[test]
    fn dlzs_is_more_accurate_than_vanilla() {
        let w = workload();
        let exact = w.exact_scores();
        let k = 96 / 5;

        let pred = DlzsPredictor::prepare(&w.wk);
        let (dlzs_scores, _) = pred.predict(&w.x, &w.q);
        let mut s = PredictionStats::default();
        let vanilla_scores = predict_scores_vanilla_lz(&w.x, &w.wk, &w.q, &mut s);

        let r_dlzs = mean_topk_recall(&dlzs_scores, &exact, k);
        let r_vanilla = mean_topk_recall(&vanilla_scores, &exact, k);
        assert!(
            r_dlzs >= r_vanilla,
            "DLZS recall {r_dlzs} should be at least vanilla {r_vanilla}"
        );
    }

    #[test]
    fn weight_storage_is_roughly_5_bits_per_weight() {
        let wk = Matrix::from_fn(64, 32, |i, j| ((i * j) % 13) as f32 / 13.0 - 0.4);
        let p = DlzsPredictor::prepare(&wk);
        let bytes = p.weight_storage_bytes();
        assert_eq!(bytes, (64 * 32 * 5u64).div_ceil(8));
        assert_eq!(p.input_dim(), 64);
        assert_eq!(p.head_dim(), 32);
    }

    #[test]
    #[should_panic(expected = "token width")]
    fn mismatched_tokens_panic() {
        let wk = Matrix::zeros(8, 4);
        let p = DlzsPredictor::prepare(&wk);
        let mut s = PredictionStats::default();
        let _ = p.predict_keys(&Matrix::zeros(3, 9), &mut s);
    }

    #[test]
    fn int4_baseline_shapes_and_ops() {
        let w = workload();
        let mut stats = PredictionStats::default();
        let scores = predict_scores_int4(&w.x, &w.wk, &w.q, &mut stats);
        assert_eq!(scores.shape(), (8, 96));
        assert!(stats.ops.mul > 0);
        assert!(stats.total_bytes() > 0);
    }
}
