//! The one golden-snapshot implementation: byte-compare against a stored
//! file, or rewrite it when regeneration is requested (`UPDATE_GOLDEN=1` in
//! the environment, or `harness run --update-golden`). Shared by the
//! `golden_match` spec predicate and the workspace golden tests
//! (`tests/golden_reports.rs`, `tests/observability.rs`), which used to
//! carry duplicate copies of this logic.

use std::path::Path;

/// The outcome of one golden comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldenStatus {
    /// `got` equals the snapshot byte for byte.
    Matches,
    /// Regeneration was requested and the snapshot was rewritten.
    Updated,
    /// The snapshot file is missing or unreadable (an artifact problem,
    /// not a regression).
    Missing(String),
    /// `got` differs from the snapshot (a regression — or an intentional
    /// change that needs regeneration).
    Differs,
}

/// True when the environment requests golden regeneration
/// (`UPDATE_GOLDEN` set to anything).
pub fn update_requested() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some()
}

/// Compares `got` against the snapshot at `path`; when `update` is true,
/// rewrites the snapshot (creating parent directories) instead.
pub fn compare_or_update(path: &Path, got: &str, update: bool) -> GoldenStatus {
    if update {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    return GoldenStatus::Missing(format!("cannot create {}: {e}", dir.display()));
                }
            }
        }
        return match std::fs::write(path, got) {
            Ok(()) => GoldenStatus::Updated,
            Err(e) => GoldenStatus::Missing(format!("cannot write {}: {e}", path.display())),
        };
    }
    match std::fs::read_to_string(path) {
        Err(e) => GoldenStatus::Missing(format!("{}: {e}", path.display())),
        Ok(want) if want == got => GoldenStatus::Matches,
        Ok(_) => GoldenStatus::Differs,
    }
}

/// Test-harness entry point: compares (or regenerates under
/// `UPDATE_GOLDEN=1`) and panics with a regeneration hint on mismatch —
/// the behaviour the workspace golden tests share.
///
/// # Panics
///
/// Panics when the snapshot is missing or differs (unless regenerating).
pub fn assert_matches(path: &Path, got: &str, regen_hint: &str) {
    match compare_or_update(path, got, update_requested()) {
        GoldenStatus::Matches | GoldenStatus::Updated => {}
        GoldenStatus::Missing(e) => {
            panic!("missing golden snapshot ({e}); generate it with `{regen_hint}`")
        }
        GoldenStatus::Differs => {
            let want = std::fs::read_to_string(path).expect("snapshot was readable above");
            assert_eq!(
                got,
                want,
                "{} drifted from its golden snapshot; if the change is \
                 intentional, regenerate with `{regen_hint}` and review the diff",
                path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sofa-harness-golden-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn update_then_match_then_differ() {
        let path = tmp("roundtrip.json");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            compare_or_update(&path, "x", false),
            GoldenStatus::Missing(_)
        ));
        assert_eq!(compare_or_update(&path, "x", true), GoldenStatus::Updated);
        assert_eq!(compare_or_update(&path, "x", false), GoldenStatus::Matches);
        assert_eq!(compare_or_update(&path, "y", false), GoldenStatus::Differs);
    }
}
