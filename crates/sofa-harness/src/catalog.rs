//! `docs/EXPERIMENTS.md` generation. The document is derived entirely from
//! [`sofa_bench::registry`] plus the loaded spec files, so it can never
//! drift from the code: `harness list --markdown > docs/EXPERIMENTS.md`
//! regenerates it, and a workspace test asserts the committed file equals
//! the emitted markdown.

use crate::spec::{Predicate, Spec};
use sofa_bench::registry;

fn predicate_summary(pred: &Predicate) -> String {
    match pred {
        Predicate::Tolerance { metric, max } => format!("`tolerance({metric} <= {max})`"),
        Predicate::Dominance {
            subject,
            reference,
            strict,
            reference_scale,
        } => {
            let op = if *strict { "<" } else { "<=" };
            let scale = if *reference_scale == 1.0 {
                String::new()
            } else {
                format!(" x {reference_scale}")
            };
            format!(
                "`dominance({} {op} {}{scale})`",
                subject.join(","),
                reference.join(","),
            )
        }
        Predicate::NonEmpty { metric: Some(m) } => format!("`non_empty({m})`"),
        Predicate::NonEmpty { metric: None } => "`non_empty`".to_string(),
        Predicate::TwoRunDeterminism => "`two_run_determinism`".to_string(),
        Predicate::ThreadByteIdentity { threads } => {
            let t: Vec<String> = threads.iter().map(|t| t.to_string()).collect();
            format!("`thread_byte_identity({})`", t.join(","))
        }
        Predicate::GoldenMatch { .. } => "`golden_match`".to_string(),
        Predicate::TraceValid { text, .. } => format!("`trace_valid({text})`"),
        Predicate::CountEquality { left, right } => format!("`count_equality({left} == {right})`"),
        Predicate::WallTimeBudget {
            metric,
            budget_seconds,
            advisory,
        } => format!(
            "`wall_time_budget({metric} <= {budget_seconds}s{})`",
            if *advisory { ", advisory" } else { "" }
        ),
    }
}

fn golden_of(spec: &Spec) -> String {
    let goldens: Vec<&str> = spec
        .predicates
        .iter()
        .filter_map(|p| match p {
            Predicate::GoldenMatch { golden, .. } => Some(golden.as_str()),
            _ => None,
        })
        .collect();
    if goldens.is_empty() {
        "-".to_string()
    } else {
        goldens
            .iter()
            .map(|g| format!("`{g}`"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Renders the full `docs/EXPERIMENTS.md` from the registry and `specs`.
pub fn experiments_markdown(specs: &[Spec]) -> String {
    let entries = registry::registry();
    let mut out = String::new();
    out.push_str("# Experiment catalog\n\n");
    out.push_str(
        "This file is generated from the typed experiment registry \
         (`sofa_bench::registry`) and the spec files under `specs/`:\n\n\
         ```\ncargo run --release -p sofa-harness --bin harness -- list --markdown > docs/EXPERIMENTS.md\n```\n\n\
         Do not edit it by hand — a workspace test compares it against the\n\
         registry and fails on drift.\n\n",
    );

    out.push_str("## Paper artefacts\n\n");
    out.push_str(
        "Each binary regenerates one figure or table from the paper. All of\n\
         them run inside `all_experiments`, accept `--json <path>` to write\n\
         the table as a JSON artifact, and are deterministic at any\n\
         `SOFA_THREADS` setting.\n\n",
    );
    out.push_str("| Binary | Reproduces |\n|---|---|\n");
    for e in entries.iter().filter(|e| e.paper) {
        let bin = e.bin.expect("paper entries have binaries");
        out.push_str(&format!("| `{bin}` | {} |\n", e.about));
    }
    out.push_str(
        "| `all_experiments` | every experiment above plus the studies below, in one run |\n",
    );

    out.push_str("\n## Studies\n\n");
    out.push_str(
        "Beyond the paper's own artefacts, these experiments exercise the\n\
         simulator, the design-space explorer and the serving stack. Entries\n\
         without a binary are harness-only (they exist to be gated, not\n\
         browsed); `serve_fleet` also accepts `--requests/--rate/--nodes/\
         --instances-per-node/--disaggregate` for scaled runs.\n\n",
    );
    out.push_str("| Experiment | Binary | What it measures |\n|---|---|---|\n");
    for e in entries.iter().filter(|e| !e.paper) {
        let bin = e.bin.map_or("-".to_string(), |b| format!("`{b}`"));
        out.push_str(&format!("| `{}` | {bin} | {} |\n", e.name, e.about));
    }

    out.push_str("\n## Gated specs\n\n");
    out.push_str(
        "`harness run --all` executes every spec below (alphabetical by\n\
         file name), writes the declared artifacts under `bench-reports/`,\n\
         and evaluates the gate predicates. Exit code `0` means every\n\
         predicate passed, `1` means a gate tripped (a genuine regression),\n\
         `2` means an artifact was missing or unparseable (an\n\
         infrastructure problem). `harness run --update-golden` (or\n\
         `UPDATE_GOLDEN=1`) rewrites golden snapshots instead of comparing.\n\n",
    );
    out.push_str("| Spec | Experiment | Gate | Artifacts | Golden | Predicates |\n|---|---|---|---|---|---|\n");
    for s in specs {
        let artifacts = if s.artifacts.is_empty() {
            "-".to_string()
        } else {
            s.artifacts
                .iter()
                .map(|a| format!("`{}`", a.path()))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let preds = s
            .predicates
            .iter()
            .map(predicate_summary)
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "| `{}` | `{}` | {} | {artifacts} | {} | {preds} |\n",
            s.name,
            s.experiment,
            s.gate.as_deref().unwrap_or("-"),
            golden_of(s),
        ));
    }

    out.push_str(
        "\n## Benchmarks\n\n\
         `cargo bench` runs the criterion-shim microbenchmarks in\n\
         `benches/` (kernel-level: sparse GEMM, top-k, FlashAttention\n\
         tiles). They are not gated — the gates above track end-to-end\n\
         metrics, which is what the paper claims are about.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ArtifactSpec;

    #[test]
    fn markdown_covers_registry_and_specs() {
        let spec = Spec {
            name: "demo".into(),
            about: "demo spec".into(),
            experiment: "serve_routed".into(),
            gate: Some("routing".into()),
            artifacts: vec![ArtifactSpec::Tables {
                path: "bench-reports/demo.json".into(),
            }],
            predicates: vec![
                Predicate::Dominance {
                    subject: vec!["routed_p95".into()],
                    reference: vec!["default_p95".into()],
                    strict: true,
                    reference_scale: 1.0,
                },
                Predicate::TwoRunDeterminism,
            ],
        };
        let md = experiments_markdown(&[spec]);
        for e in registry::registry() {
            assert!(md.contains(e.name), "registry entry {} missing", e.name);
        }
        assert!(md.contains("| `demo` | `serve_routed` | routing |"));
        assert!(md.contains("`dominance(routed_p95 < default_p95)`"));
        assert!(md.contains("`two_run_determinism`"));
    }
}
