//! Declarative experiment + gate harness.
//!
//! Every CI-relevant experiment is a JSON *spec file* under `specs/` naming
//! an experiment from the typed [`sofa_bench::registry`], the artifacts it
//! writes, the golden snapshot it must match, and a list of gate
//! *predicates* drawn from a small algebra ([`spec::Predicate`]):
//! `tolerance`, `dominance`, `non_empty`, `two_run_determinism`,
//! `thread_byte_identity`, `golden_match`, `trace_valid` and
//! `count_equality`. One binary (`harness`) executes them:
//!
//! ```text
//! harness run  [--all | --spec NAME]... [--json PATH] [--update-golden] [--specs DIR]
//! harness check [--specs DIR]           # lint every spec without running it
//! harness list [--markdown] [--specs DIR]
//! ```
//!
//! `harness run` keeps the regression-gate exit-code contract the old
//! `check_regression` binary established: `0` all predicates passed, `1` a
//! gate tripped (a genuine regression), `2` an artifact was missing,
//! unwritable or unparseable (an infrastructure problem — fix the
//! pipeline, not the code). Adding a scenario or a gate is a spec-file
//! diff, not a new binary + golden wiring + CI step + gate clause.

pub mod catalog;
pub mod golden;
pub mod predicate;
pub mod runner;
pub mod spec;

pub use runner::{run_specs, RunOptions, RunSummary, SpecResult, SpecStatus};
pub use spec::{ArtifactSpec, Predicate, Spec, TraceFormat};
