//! The spec-file schema and its parser (built on `sofa_obs::json` — no new
//! dependencies).
//!
//! A spec is one JSON object:
//!
//! ```json
//! {
//!   "name": "serve_routed",
//!   "about": "routed serving must dominate the paper default",
//!   "experiment": "serve_routed",
//!   "gate": "routing",
//!   "artifacts": [ {"kind": "tables", "path": "bench-reports/serve_routed.json"} ],
//!   "predicates": [
//!     {"kind": "dominance",
//!      "subject": ["routed_p95", "routed_energy_pj_per_req"],
//!      "reference": ["default_p95", "default_energy_pj_per_req"],
//!      "strict": true}
//!   ]
//! }
//! ```
//!
//! Parsing is strict: unknown top-level keys, artifact kinds, predicate
//! kinds or predicate fields are errors, so `harness check` catches typos
//! at PR time instead of silently skipping a gate.

use sofa_obs::json::{self, Json};

/// One declarative experiment + gate scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// Spec name (what `harness run --spec` selects; unique across `specs/`).
    pub name: String,
    /// One-line description for the catalogue and run output.
    pub about: String,
    /// Registry key of the experiment to run (`sofa_bench::registry`).
    pub experiment: String,
    /// Gate label used on failure lines (`[gate routing] …`); specs without
    /// one are artifact/smoke scenarios.
    pub gate: Option<String>,
    /// Artifacts to write after the run.
    pub artifacts: Vec<ArtifactSpec>,
    /// Gate predicates, evaluated in order.
    pub predicates: Vec<Predicate>,
}

/// One artifact a spec writes.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactSpec {
    /// The experiment's tables as one JSON array (the `--json <path>`
    /// convention of the experiment binaries).
    Tables { path: String },
    /// One named text from the experiment output (the Chrome trace, the
    /// metrics snapshot), written verbatim.
    Text { text: String, path: String },
}

impl ArtifactSpec {
    /// The destination path.
    pub fn path(&self) -> &str {
        match self {
            ArtifactSpec::Tables { path } | ArtifactSpec::Text { path, .. } => path,
        }
    }
}

/// Which validator `trace_valid` applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// `sofa_obs::validate_chrome_trace`: schema, per-track timestamp
    /// monotonicity, balanced begin/end pairs.
    ChromeTrace,
    /// A metrics-registry snapshot: valid JSON with `counters`, `gauges`
    /// and `histograms` sections.
    MetricsSnapshot,
}

/// The gate-predicate algebra. Every predicate evaluates against one
/// experiment's [`sofa_bench::ExperimentOutput`] (re-running it where the
/// predicate demands).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Every value of `metric` satisfies `|v| <= max`.
    Tolerance { metric: String, max: f64 },
    /// Pointwise comparison: `subject[i] < reference[i] * reference_scale`
    /// for all `i` (`<=` when `strict` is false).
    Dominance {
        subject: Vec<String>,
        reference: Vec<String>,
        strict: bool,
        reference_scale: f64,
    },
    /// With a metric: the series is non-empty (a scalar must be `> 0`).
    /// Without: every table of the output has at least one row.
    NonEmpty { metric: Option<String> },
    /// Running the experiment a second time reproduces the output exactly
    /// (tables, metrics and texts).
    TwoRunDeterminism,
    /// Re-running under `sofa_par::with_threads(t)` for every listed `t`
    /// reproduces the output exactly — the `SOFA_THREADS` byte-identity
    /// guarantee as a spec.
    ThreadByteIdentity { threads: Vec<usize> },
    /// A table (by index) or text (by name) matches the golden snapshot
    /// byte for byte; `--update-golden` / `UPDATE_GOLDEN=1` rewrites it.
    GoldenMatch {
        golden: String,
        table: Option<usize>,
        text: Option<String>,
    },
    /// The named text parses and passes the format's validity checker.
    TraceValid { text: String, format: TraceFormat },
    /// Two scalar metrics are exactly equal (served-request counts).
    CountEquality { left: String, right: String },
    /// A wall-clock scalar stays under a budget. Budgets protect the perf
    /// trajectory from order-of-magnitude regressions, so they should be
    /// generous — wall time is host-dependent and must never be held to the
    /// byte-identity standard of the other gates. With `advisory` the
    /// predicate reports an overrun but still passes (for scenarios where
    /// even a generous budget could flake on a loaded CI machine).
    WallTimeBudget {
        /// Scalar metric holding the measured seconds (default
        /// `wall_seconds`, the perf experiments' convention).
        metric: String,
        /// Upper bound in seconds.
        budget_seconds: f64,
        /// Report overruns without failing the gate.
        advisory: bool,
    },
}

/// Parses one spec file.
pub fn parse_spec(text: &str) -> Result<Spec, String> {
    let doc = json::parse(text)?;
    spec_from_json(&doc)
}

fn obj<'j>(
    v: &'j Json,
    what: &str,
    allowed: &[&str],
) -> Result<&'j std::collections::BTreeMap<String, Json>, String> {
    let o = v
        .as_obj()
        .ok_or_else(|| format!("{what} must be an object"))?;
    for key in o.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("{what} has unknown field {key:?}"));
        }
    }
    Ok(o)
}

fn str_field(
    o: &std::collections::BTreeMap<String, Json>,
    what: &str,
    key: &str,
) -> Result<String, String> {
    o.get(key)
        .ok_or_else(|| format!("{what} is missing field {key:?}"))?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{what} field {key:?} must be a string"))
}

fn num_field(
    o: &std::collections::BTreeMap<String, Json>,
    what: &str,
    key: &str,
) -> Result<f64, String> {
    o.get(key)
        .ok_or_else(|| format!("{what} is missing field {key:?}"))?
        .as_num()
        .ok_or_else(|| format!("{what} field {key:?} must be a number"))
}

fn str_list(v: &Json, what: &str) -> Result<Vec<String>, String> {
    v.as_arr()
        .ok_or_else(|| format!("{what} must be an array of strings"))?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{what} must contain only strings"))
        })
        .collect()
}

fn spec_from_json(doc: &Json) -> Result<Spec, String> {
    let o = obj(
        doc,
        "spec",
        &[
            "name",
            "about",
            "experiment",
            "gate",
            "artifacts",
            "predicates",
        ],
    )?;
    let name = str_field(o, "spec", "name")?;
    let about = str_field(o, "spec", "about")?;
    let experiment = str_field(o, "spec", "experiment")?;
    let gate = match o.get("gate") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| "spec field \"gate\" must be a string".to_string())?,
        ),
    };
    let mut artifacts = Vec::new();
    if let Some(v) = o.get("artifacts") {
        for (i, a) in v
            .as_arr()
            .ok_or_else(|| "spec field \"artifacts\" must be an array".to_string())?
            .iter()
            .enumerate()
        {
            artifacts.push(artifact_from_json(a, i)?);
        }
    }
    let mut predicates = Vec::new();
    if let Some(v) = o.get("predicates") {
        for (i, p) in v
            .as_arr()
            .ok_or_else(|| "spec field \"predicates\" must be an array".to_string())?
            .iter()
            .enumerate()
        {
            predicates.push(predicate_from_json(p, i)?);
        }
    }
    Ok(Spec {
        name,
        about,
        experiment,
        gate,
        artifacts,
        predicates,
    })
}

fn artifact_from_json(v: &Json, index: usize) -> Result<ArtifactSpec, String> {
    let what = format!("artifact #{index}");
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what} is missing a string \"kind\""))?
        .to_string();
    match kind.as_str() {
        "tables" => {
            let o = obj(v, &what, &["kind", "path"])?;
            Ok(ArtifactSpec::Tables {
                path: str_field(o, &what, "path")?,
            })
        }
        "text" => {
            let o = obj(v, &what, &["kind", "text", "path"])?;
            Ok(ArtifactSpec::Text {
                text: str_field(o, &what, "text")?,
                path: str_field(o, &what, "path")?,
            })
        }
        other => Err(format!("{what} has unknown kind {other:?}")),
    }
}

fn predicate_from_json(v: &Json, index: usize) -> Result<Predicate, String> {
    let what = format!("predicate #{index}");
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what} is missing a string \"kind\""))?
        .to_string();
    match kind.as_str() {
        "tolerance" => {
            let o = obj(v, &what, &["kind", "metric", "max"])?;
            Ok(Predicate::Tolerance {
                metric: str_field(o, &what, "metric")?,
                max: num_field(o, &what, "max")?,
            })
        }
        "dominance" => {
            let o = obj(
                v,
                &what,
                &["kind", "subject", "reference", "strict", "reference_scale"],
            )?;
            let subject = str_list(
                o.get("subject")
                    .ok_or_else(|| format!("{what} is missing field \"subject\""))?,
                &format!("{what} field \"subject\""),
            )?;
            let reference = str_list(
                o.get("reference")
                    .ok_or_else(|| format!("{what} is missing field \"reference\""))?,
                &format!("{what} field \"reference\""),
            )?;
            if subject.is_empty() || subject.len() != reference.len() {
                return Err(format!(
                    "{what}: subject and reference must be non-empty and the same length"
                ));
            }
            let strict = match o.get("strict") {
                None => false,
                Some(Json::Bool(b)) => *b,
                Some(_) => return Err(format!("{what} field \"strict\" must be a boolean")),
            };
            let reference_scale = match o.get("reference_scale") {
                None => 1.0,
                Some(v) => v
                    .as_num()
                    .ok_or_else(|| format!("{what} field \"reference_scale\" must be a number"))?,
            };
            Ok(Predicate::Dominance {
                subject,
                reference,
                strict,
                reference_scale,
            })
        }
        "non_empty" => {
            let o = obj(v, &what, &["kind", "metric"])?;
            let metric = match o.get("metric") {
                None => None,
                Some(m) => Some(
                    m.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("{what} field \"metric\" must be a string"))?,
                ),
            };
            Ok(Predicate::NonEmpty { metric })
        }
        "two_run_determinism" => {
            obj(v, &what, &["kind"])?;
            Ok(Predicate::TwoRunDeterminism)
        }
        "thread_byte_identity" => {
            let o = obj(v, &what, &["kind", "threads"])?;
            let threads: Vec<usize> = o
                .get("threads")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("{what} is missing an array field \"threads\""))?
                .iter()
                .map(|t| {
                    t.as_num()
                        .filter(|n| n.fract() == 0.0 && *n >= 1.0)
                        .map(|n| n as usize)
                        .ok_or_else(|| format!("{what} threads must be positive integers"))
                })
                .collect::<Result<_, _>>()?;
            if threads.is_empty() {
                return Err(format!("{what}: threads must be non-empty"));
            }
            Ok(Predicate::ThreadByteIdentity { threads })
        }
        "golden_match" => {
            let o = obj(v, &what, &["kind", "golden", "table", "text"])?;
            let golden = str_field(o, &what, "golden")?;
            let table = match o.get("table") {
                None => None,
                Some(t) => Some(
                    t.as_num()
                        .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                        .map(|n| n as usize)
                        .ok_or_else(|| format!("{what} field \"table\" must be an integer"))?,
                ),
            };
            let text = match o.get("text") {
                None => None,
                Some(t) => Some(
                    t.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("{what} field \"text\" must be a string"))?,
                ),
            };
            if table.is_some() == text.is_some() {
                return Err(format!(
                    "{what}: exactly one of \"table\" and \"text\" must be given"
                ));
            }
            Ok(Predicate::GoldenMatch {
                golden,
                table,
                text,
            })
        }
        "trace_valid" => {
            let o = obj(v, &what, &["kind", "text", "format"])?;
            let format = match str_field(o, &what, "format")?.as_str() {
                "chrome_trace" => TraceFormat::ChromeTrace,
                "metrics_snapshot" => TraceFormat::MetricsSnapshot,
                other => {
                    return Err(format!(
                        "{what} has unknown format {other:?} \
                         (expected \"chrome_trace\" or \"metrics_snapshot\")"
                    ))
                }
            };
            Ok(Predicate::TraceValid {
                text: str_field(o, &what, "text")?,
                format,
            })
        }
        "count_equality" => {
            let o = obj(v, &what, &["kind", "left", "right"])?;
            Ok(Predicate::CountEquality {
                left: str_field(o, &what, "left")?,
                right: str_field(o, &what, "right")?,
            })
        }
        "wall_time_budget" => {
            let o = obj(v, &what, &["kind", "metric", "budget_seconds", "advisory"])?;
            let metric = match o.get("metric") {
                None => "wall_seconds".to_string(),
                Some(m) => m
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("{what} field \"metric\" must be a string"))?,
            };
            let budget_seconds = num_field(o, &what, "budget_seconds")?;
            if budget_seconds <= 0.0 || budget_seconds.is_nan() {
                return Err(format!("{what}: budget_seconds must be positive"));
            }
            let advisory = match o.get("advisory") {
                None => false,
                Some(Json::Bool(b)) => *b,
                Some(_) => return Err(format!("{what} field \"advisory\" must be a boolean")),
            };
            Ok(Predicate::WallTimeBudget {
                metric,
                budget_seconds,
                advisory,
            })
        }
        other => Err(format!("{what} has unknown kind {other:?}")),
    }
}

impl Predicate {
    /// The spec-file kind string (for run output and the catalogue).
    pub fn kind(&self) -> &'static str {
        match self {
            Predicate::Tolerance { .. } => "tolerance",
            Predicate::Dominance { .. } => "dominance",
            Predicate::NonEmpty { .. } => "non_empty",
            Predicate::TwoRunDeterminism => "two_run_determinism",
            Predicate::ThreadByteIdentity { .. } => "thread_byte_identity",
            Predicate::GoldenMatch { .. } => "golden_match",
            Predicate::TraceValid { .. } => "trace_valid",
            Predicate::CountEquality { .. } => "count_equality",
            Predicate::WallTimeBudget { .. } => "wall_time_budget",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_spec() {
        let spec = parse_spec(
            r#"{
              "name": "demo", "about": "d", "experiment": "serve_routed",
              "gate": "routing",
              "artifacts": [{"kind": "tables", "path": "out/demo.json"},
                            {"kind": "text", "text": "trace", "path": "out/t.json"}],
              "predicates": [
                {"kind": "tolerance", "metric": "err", "max": 0.25},
                {"kind": "dominance", "subject": ["a"], "reference": ["b"],
                 "strict": true, "reference_scale": 1.05},
                {"kind": "non_empty"},
                {"kind": "non_empty", "metric": "pareto_points"},
                {"kind": "two_run_determinism"},
                {"kind": "thread_byte_identity", "threads": [1, 2, 8]},
                {"kind": "golden_match", "golden": "tests/golden/demo.json", "table": 0},
                {"kind": "trace_valid", "text": "trace", "format": "chrome_trace"},
                {"kind": "count_equality", "left": "x", "right": "y"}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.gate.as_deref(), Some("routing"));
        assert_eq!(spec.artifacts.len(), 2);
        assert_eq!(spec.predicates.len(), 9);
        assert_eq!(
            spec.predicates[1],
            Predicate::Dominance {
                subject: vec!["a".into()],
                reference: vec!["b".into()],
                strict: true,
                reference_scale: 1.05,
            }
        );
        assert_eq!(
            spec.predicates[5],
            Predicate::ThreadByteIdentity {
                threads: vec![1, 2, 8]
            }
        );
    }

    #[test]
    fn defaults_strict_false_and_scale_one() {
        let spec = parse_spec(
            r#"{"name": "d", "about": "d", "experiment": "e",
                "predicates": [{"kind": "dominance", "subject": ["a"], "reference": ["b"]}]}"#,
        )
        .unwrap();
        assert_eq!(
            spec.predicates[0],
            Predicate::Dominance {
                subject: vec!["a".into()],
                reference: vec!["b".into()],
                strict: false,
                reference_scale: 1.0,
            }
        );
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse_spec("{\"name\": ").is_err());
    }

    #[test]
    fn rejects_missing_required_fields() {
        let err = parse_spec(r#"{"name": "d", "about": "d"}"#).unwrap_err();
        assert!(err.contains("experiment"), "{err}");
    }

    #[test]
    fn rejects_unknown_predicate_kind() {
        let err = parse_spec(
            r#"{"name": "d", "about": "d", "experiment": "e",
                "predicates": [{"kind": "fancier_than_thou"}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown kind"), "{err}");
    }

    #[test]
    fn rejects_unknown_fields() {
        let err = parse_spec(r#"{"name": "d", "about": "d", "experiment": "e", "surprise": 1}"#)
            .unwrap_err();
        assert!(err.contains("unknown field"), "{err}");
        let err = parse_spec(
            r#"{"name": "d", "about": "d", "experiment": "e",
                "predicates": [{"kind": "tolerance", "metric": "m", "max": 1, "mox": 2}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown field"), "{err}");
    }

    #[test]
    fn rejects_mismatched_dominance_axes() {
        let err = parse_spec(
            r#"{"name": "d", "about": "d", "experiment": "e",
                "predicates": [{"kind": "dominance", "subject": ["a"], "reference": []}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("same length"), "{err}");
    }

    #[test]
    fn rejects_golden_match_with_both_selectors() {
        let err = parse_spec(
            r#"{"name": "d", "about": "d", "experiment": "e",
                "predicates": [{"kind": "golden_match", "golden": "g",
                                "table": 0, "text": "trace"}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("exactly one"), "{err}");
    }

    #[test]
    fn wall_time_budget_defaults_and_bounds() {
        let spec = parse_spec(
            r#"{"name": "d", "about": "d", "experiment": "e",
                "predicates": [
                  {"kind": "wall_time_budget", "budget_seconds": 60},
                  {"kind": "wall_time_budget", "metric": "fleet_wall",
                   "budget_seconds": 300, "advisory": true}
                ]}"#,
        )
        .unwrap();
        assert_eq!(
            spec.predicates[0],
            Predicate::WallTimeBudget {
                metric: "wall_seconds".into(),
                budget_seconds: 60.0,
                advisory: false,
            }
        );
        assert_eq!(
            spec.predicates[1],
            Predicate::WallTimeBudget {
                metric: "fleet_wall".into(),
                budget_seconds: 300.0,
                advisory: true,
            }
        );
        for bad in [
            r#"{"kind": "wall_time_budget"}"#,
            r#"{"kind": "wall_time_budget", "budget_seconds": 0}"#,
            r#"{"kind": "wall_time_budget", "budget_seconds": -5}"#,
            r#"{"kind": "wall_time_budget", "budget_seconds": 60, "advisory": "yes"}"#,
        ] {
            let err = parse_spec(&format!(
                r#"{{"name": "d", "about": "d", "experiment": "e", "predicates": [{bad}]}}"#
            ))
            .unwrap_err();
            assert!(
                err.contains("budget_seconds") || err.contains("advisory"),
                "predicate {bad} gave unrelated error {err}"
            );
        }
    }

    #[test]
    fn rejects_bad_threads() {
        for threads in ["[]", "[0]", "[1.5]"] {
            let err = parse_spec(&format!(
                r#"{{"name": "d", "about": "d", "experiment": "e",
                    "predicates": [{{"kind": "thread_byte_identity", "threads": {threads}}}]}}"#
            ))
            .unwrap_err();
            assert!(
                err.contains("threads"),
                "threads={threads} gave unrelated error {err}"
            );
        }
    }
}
